"""IRBuilder: positioned instruction factory, mirroring llvm::IRBuilder."""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .basicblock import BasicBlock
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
    UnreachableInst,
)
from .metadata import DebugLoc, ScopedAliasMD, TBAANode
from .types import FloatType, IntType, Type, I1, I32, I64, F64
from .values import ConstantFloat, ConstantInt, Value


class IRBuilder:
    """Appends instructions to a block, attaching ambient metadata.

    ``default_dbg`` and ``default_tbaa`` (when set) are stamped onto each
    created instruction, the way clang's CodeGen threads the current
    source location and access type through IRGen.
    """

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self.default_dbg: Optional[DebugLoc] = None
        self.default_tbaa: Optional[TBAANode] = None
        self.default_scoped: Optional[ScopedAliasMD] = None

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self):
        return self.block.parent if self.block else None

    # -- internals ---------------------------------------------------------
    def _insert(self, inst: Instruction, tbaa: Optional[TBAANode] = None,
                dbg: Optional[DebugLoc] = None) -> Instruction:
        assert self.block is not None, "builder not positioned"
        assert self.block.terminator is None, (
            f"appending after terminator in {self.block.name}")
        inst.tbaa = tbaa if tbaa is not None else self.default_tbaa
        inst.dbg = dbg if dbg is not None else self.default_dbg
        inst.scoped = self.default_scoped
        self.block.append(inst)
        return inst

    def _name(self, hint: str) -> str:
        fn = self.function
        return fn.unique_name(hint) if fn is not None else hint

    # -- constants -----------------------------------------------------------
    def i64(self, v: int) -> ConstantInt:
        return ConstantInt(I64, v)

    def i32(self, v: int) -> ConstantInt:
        return ConstantInt(I32, v)

    def i1(self, v: bool) -> ConstantInt:
        return ConstantInt(I1, int(v))

    def f64(self, v: float) -> ConstantFloat:
        return ConstantFloat(F64, v)

    # -- memory ----------------------------------------------------------------
    def alloca(self, ty: Type, count: int = 1, name: str = "") -> AllocaInst:
        return self._insert(AllocaInst(ty, count, name or self._name("a")))

    def load(self, pointer: Value, name: str = "",
             tbaa: Optional[TBAANode] = None,
             dbg: Optional[DebugLoc] = None,
             volatile: bool = False) -> LoadInst:
        return self._insert(
            LoadInst(pointer, name or self._name("ld"), volatile), tbaa, dbg)

    def store(self, value: Value, pointer: Value,
              tbaa: Optional[TBAANode] = None,
              dbg: Optional[DebugLoc] = None,
              volatile: bool = False) -> StoreInst:
        return self._insert(StoreInst(value, pointer, volatile), tbaa, dbg)

    def gep(self, pointer: Value, indices: Sequence[Union[Value, int]],
            name: str = "", inbounds: bool = True,
            dbg: Optional[DebugLoc] = None) -> GEPInst:
        idx = [self.i64(i) if isinstance(i, int) else i for i in indices]
        return self._insert(
            GEPInst(pointer, idx, inbounds, name or self._name("gep")),
            dbg=dbg)

    def memcpy(self, dst: Value, src: Value, size: Union[Value, int]) -> MemCpyInst:
        sz = self.i64(size) if isinstance(size, int) else size
        return self._insert(MemCpyInst(dst, src, sz))

    def memset(self, dst: Value, byte: Union[Value, int],
               size: Union[Value, int]) -> MemSetInst:
        b = self.i32(byte) if isinstance(byte, int) else byte
        sz = self.i64(size) if isinstance(size, int) else size
        return self._insert(MemSetInst(dst, b, sz))

    # -- arithmetic ---------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinaryInst:
        return self._insert(BinaryInst(op, lhs, rhs, name or self._name(op)))

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def sdiv(self, a, b, name=""):
        return self.binop("sdiv", a, b, name)

    def srem(self, a, b, name=""):
        return self.binop("srem", a, b, name)

    def fadd(self, a, b, name=""):
        return self.binop("fadd", a, b, name)

    def fsub(self, a, b, name=""):
        return self.binop("fsub", a, b, name)

    def fmul(self, a, b, name=""):
        return self.binop("fmul", a, b, name)

    def fdiv(self, a, b, name=""):
        return self.binop("fdiv", a, b, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> ICmpInst:
        return self._insert(ICmpInst(pred, lhs, rhs, name or self._name("cmp")))

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> FCmpInst:
        return self._insert(FCmpInst(pred, lhs, rhs, name or self._name("fcmp")))

    def cast(self, op: str, value: Value, to_type: Type, name: str = "") -> CastInst:
        return self._insert(CastInst(op, value, to_type, name or self._name(op)))

    def sitofp(self, v: Value, to_type: Type = F64, name: str = "") -> CastInst:
        return self.cast("sitofp", v, to_type, name)

    def fptosi(self, v: Value, to_type: Type = I64, name: str = "") -> CastInst:
        return self.cast("fptosi", v, to_type, name)

    def select(self, cond: Value, t: Value, f: Value, name: str = "") -> SelectInst:
        return self._insert(SelectInst(cond, t, f, name or self._name("sel")))

    # -- vectors -----------------------------------------------------------
    def splat(self, scalar: Value, lanes: int, name: str = "") -> ShuffleSplatInst:
        return self._insert(ShuffleSplatInst(scalar, lanes, name or self._name("splat")))

    def extractelement(self, vec: Value, index: Union[Value, int],
                       name: str = "") -> ExtractElementInst:
        i = self.i32(index) if isinstance(index, int) else index
        return self._insert(ExtractElementInst(vec, i, name or self._name("ee")))

    def insertelement(self, vec: Value, elem: Value, index: Union[Value, int],
                      name: str = "") -> InsertElementInst:
        i = self.i32(index) if isinstance(index, int) else index
        return self._insert(InsertElementInst(vec, elem, i, name or self._name("ie")))

    # -- control flow ---------------------------------------------------------
    def br(self, dest: BasicBlock) -> BranchInst:
        return self._insert(BranchInst([dest]))

    def cond_br(self, cond: Value, then: BasicBlock, other: BasicBlock) -> BranchInst:
        return self._insert(BranchInst([then, other], cond))

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self._insert(ReturnInst(value))

    def unreachable(self) -> UnreachableInst:
        return self._insert(UnreachableInst())

    def phi(self, ty: Type, name: str = "") -> PhiInst:
        p = PhiInst(ty, name or self._name("phi"))
        p.dbg = self.default_dbg
        # phis always go to the front of the block
        assert self.block is not None
        p.parent = self.block
        self.block.instructions.insert(len(self.block.phis()), p)
        return p

    def call(self, callee, args: Sequence[Value], type: Optional[Type] = None,
             name: str = "") -> CallInst:
        from .function import Function
        if type is None:
            assert isinstance(callee, Function)
            type = callee.return_type
        nm = "" if type.is_void else (name or self._name("call"))
        return self._insert(CallInst(callee, args, type, nm))
