"""Functions: argument lists, block lists, attributes, and target tags."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, PointerType, Type
from .values import Argument, Value

_name_counter = itertools.count()


class Function(Value):
    """An IR function.

    ``target`` tags which architecture the function is compiled for
    ("host" by default, e.g. "nvptx" for device kernels); ORAQL's
    ``-opt-aa-target`` filter matches against it (paper §IV-E).
    ``attrs`` carries LLVM-style function attributes such as
    ``readnone`` / ``readonly`` / ``noinline`` / ``kernel``.
    """

    __slots__ = ("ftype", "args", "blocks", "attrs", "parent", "target",
                 "is_declaration", "source_file", "_next_names")

    def __init__(self, ftype: FunctionType, name: str, module=None,
                 arg_names: Optional[Sequence[str]] = None,
                 target: str = "host"):
        super().__init__(PointerType(ftype), name)
        self.ftype = ftype
        self.parent = module
        self.target = target
        self.attrs: Set[str] = set()
        self.blocks: List[BasicBlock] = []
        self.is_declaration = False
        self.source_file: Optional[str] = None
        # plain int, not itertools.count: the incremental compiler
        # snapshots and restores it (clone_function_into copies it), so
        # resumed pipelines generate the same fresh names a full
        # compile would
        self._next_names = 0
        names = list(arg_names or [])
        while len(names) < len(ftype.params):
            names.append(f"arg{len(names)}")
        self.args: List[Argument] = [
            Argument(t, n, self, i)
            for i, (t, n) in enumerate(zip(ftype.params, names))
        ]

    # -- structure ----------------------------------------------------------
    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def _fresh(self) -> int:
        n = self._next_names
        self._next_names += 1
        return n

    def add_block(self, name: str = "", after: Optional[BasicBlock] = None) -> BasicBlock:
        bb = BasicBlock(name or f"bb{self._fresh()}", self)
        if after is None:
            self.blocks.append(bb)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, bb)
        return bb

    def instructions(self) -> Iterator[Instruction]:
        for bb in self.blocks:
            yield from bb.instructions

    def num_instructions(self) -> int:
        return sum(len(bb) for bb in self.blocks)

    def unique_name(self, hint: str = "t") -> str:
        return f"{hint}{self._fresh()}"

    def short(self) -> str:
        return f"@{self.name}"

    @property
    def is_kernel(self) -> bool:
        return "kernel" in self.attrs

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Function @{self.name} ({len(self.blocks)} blocks)>"
