"""Deterministic use-list: an insertion-ordered set.

``Value.users`` must iterate in a reproducible order — Python sets order
by object address, which made phi-insertion order (and therefore the
printed module, and therefore the driver's executable hash) vary between
identical compilations.
"""

from __future__ import annotations

from typing import Dict, Iterator


class UseList:
    """Set semantics with insertion-ordered iteration (dict-backed)."""

    __slots__ = ("_d",)

    def __init__(self):
        self._d: Dict[object, None] = {}

    def add(self, item) -> None:
        self._d[item] = None

    def discard(self, item) -> None:
        self._d.pop(item, None)

    def clear(self) -> None:
        self._d.clear()

    def __contains__(self, item) -> bool:
        return item in self._d

    def __iter__(self) -> Iterator:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UseList({list(self._d)!r})"
