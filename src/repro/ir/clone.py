"""Structural function cloning across modules.

The incremental compiler splices a baseline's *optimized* function
bodies into a freshly parsed module instead of re-optimizing them.  The
baseline modules stay live (they key the probing driver's baseline
cache), so splicing must copy, never move: a clone is a structurally
identical function whose blocks, instructions and operand references
all live in the target module, leaving the original untouched.

The clone is print-identical to the original: ``print_function`` names
values per-function from structure order, which the clone preserves
exactly, so ``function_hash(clone) == function_hash(original)``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .basicblock import BasicBlock
from .function import Function
from .instructions import BranchInst, CallInst, PhiInst
from .module import Module
from .values import GlobalVariable, Value


def clone_function_into(fn: Function, module: Module,
                        value_map: Optional[Dict[int, Value]] = None
                        ) -> Function:
    """Deep-copy ``fn`` into ``module`` (structure, names, metadata).

    Operand references are remapped: arguments and instructions to their
    clones, globals and functions to the target module's same-named
    entities (left pointing at the originals when the target has no
    entity of that name — callers splicing many functions fix those up
    afterwards via :func:`repoint_functions`).  The clone is *not*
    registered in ``module.functions``; the caller owns placement.

    ``value_map``, when given, is populated with the source-id → clone
    mapping for every argument and instruction.  The incremental
    compiler keeps it so a query key recorded against the original
    body can be translated into the clone's value space (snapshot
    capture and restore compose two of these maps).
    """
    new = Function(fn.ftype, fn.name, module=module,
                   arg_names=[a.name for a in fn.args], target=fn.target)
    new.attrs = set(fn.attrs)
    new.is_declaration = fn.is_declaration
    new.source_file = fn.source_file
    # carry the fresh-name counter: a restored snapshot must hand out
    # the same block/value names the original would have next
    new._next_names = fn._next_names
    if fn.is_declaration:
        return new

    vmap: Dict[int, Value] = value_map if value_map is not None else {}
    for a, na in zip(fn.args, new.args):
        vmap[a.id] = na
    block_map: Dict[int, BasicBlock] = {}
    for bb in fn.blocks:
        # construct directly (not add_block) so anonymous blocks stay
        # anonymous — the printed text must match byte for byte
        nb = BasicBlock(bb.name, new)
        new.blocks.append(nb)
        block_map[bb.id] = nb

    # first pass: clone every instruction, building the value map
    for bb in fn.blocks:
        nb = block_map[bb.id]
        for inst in bb.instructions:
            c = inst.clone()
            vmap[inst.id] = c
            nb.append(c)
            if isinstance(c, BranchInst):
                c.targets = [block_map[t.id] for t in inst.targets]
            elif isinstance(c, PhiInst):
                c.incoming_blocks = [block_map[b.id]
                                     for b in inst.incoming_blocks]

    # second pass: remap operands (covers phi back-edges) and callees
    for bb in fn.blocks:
        nb = block_map[bb.id]
        for c in nb.instructions:
            for i, op in enumerate(list(c.operands)):
                repl = vmap.get(op.id)
                if repl is None:
                    if isinstance(op, GlobalVariable):
                        repl = module.globals.get(op.name)
                    elif isinstance(op, Function):
                        repl = module.functions.get(op.name)
                if repl is not None and repl is not op:
                    c.set_operand(i, repl)
            if isinstance(c, CallInst) and isinstance(c.callee, Function):
                target = module.functions.get(c.callee.name)
                if target is not None:
                    c.callee = target
    return new


def detach_uses(fn: Function) -> None:
    """Remove ``fn``'s instructions from every operand's use-list.

    A snapshot clone is a frozen document — nothing ever consults *its*
    use-lists — but cloning registered its instructions as users of live
    module values (globals, functions, shared constants), which perturbs
    every pass that counts uses (global DCE, address-taken reasoning)
    and silently changes what the live pipeline produces.  Detaching
    makes the snapshot invisible to the module it was captured from.
    Restoring later is unaffected: ``set_operand`` tolerates an absent
    old use, and the restore clone re-registers its own uses.
    """
    for inst in fn.instructions():
        for op in inst.operands:
            op.users.discard(inst)


def mirror_use_order(src: Function,
                     value_map: Dict[int, Value]) -> None:
    """Rebuild the clones' *internal* use-lists in ``src``'s order.

    Structural cloning registers uses in structure-traversal order, but
    a live function's use-lists carry *creation* order — the cumulative
    history of parses and transformations — and several passes iterate
    ``users`` (mem2reg's phi placement, machine-sink, vectorizer
    legality scans), so the order is behavior-bearing.  Resuming a
    pipeline from a restored snapshot is only bit-faithful if the
    restored body's use-lists iterate exactly as the original's did at
    the capture point; this replays that order through ``value_map``
    (source-id → clone).  Only function-local values (arguments,
    instructions) are touched: SSA confines their users to the same
    function, while module-level values' use-lists are consulted purely
    as predicates.
    """
    values = list(src.args)
    for bb in src.blocks:
        values.extend(bb.instructions)
    for v in values:
        c = value_map.get(v.id)
        if c is None:
            continue
        c.users.clear()
        for u in v.users:
            cu = value_map.get(u.id)
            if cu is not None:
                c.users.add(cu)


def repoint_functions(module: Module) -> None:
    """Repoint every direct-call callee and Function-valued operand in
    ``module`` at the module's canonical same-named function.

    After splicing, calls inside clones may still reference functions
    that were subsequently replaced (and re-optimized functions may call
    pre-splice bodies); one sweep after all replacements fixes both
    directions.  Extends :meth:`Module._fixup_callees` to cover
    function-pointer operands as well.
    """
    for fn in module.defined_functions():
        for inst in fn.instructions():
            for i, op in enumerate(list(inst.operands)):
                if isinstance(op, Function):
                    canonical = module.functions.get(op.name)
                    if canonical is not None and canonical is not op:
                        inst.set_operand(i, canonical)
            if isinstance(inst, CallInst) and isinstance(
                    inst.callee, Function):
                canonical = module.functions.get(inst.callee.name)
                if canonical is not None and canonical is not inst.callee:
                    inst.callee = canonical
