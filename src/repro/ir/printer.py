"""Textual IR printer.

The printed form serves three purposes: human inspection, ORAQL's query
dumps (which quote instructions, Fig. 3), and the driver's executable-hash
cache (two compilations producing identical text are "bit-identical
executables" in the paper's sense).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .values import (
    Argument,
    ConstantData,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
    Value,
)


class _Namer:
    """Assigns stable %N names to anonymous values within a function and
    per-print metadata numbers (so printed text — and the executable
    hash derived from it — is deterministic across compilations)."""

    def __init__(self):
        self.names: Dict[int, str] = {}
        self.counter = 0
        self.used: Dict[str, int] = {}
        self.md: Dict[int, int] = {}

    def md_of(self, node) -> int:
        key = node._id
        if key not in self.md:
            self.md[key] = len(self.md) + 1
        return self.md[key]

    def of(self, v: Value) -> str:
        if isinstance(v, ConstantInt):
            return str(v.value)
        if isinstance(v, ConstantFloat):
            return f"{v.value!r}"
        if isinstance(v, ConstantNull):
            return "null"
        if isinstance(v, UndefValue):
            return "undef"
        if isinstance(v, ConstantData):
            return v.short()
        if isinstance(v, (GlobalVariable, Function)):
            return f"@{v.name}"
        key = v.id
        if key not in self.names:
            if v.name:
                n = self.used.get(v.name, 0)
                self.used[v.name] = n + 1
                self.names[key] = f"%{v.name}" if n == 0 else f"%{v.name}.{n}"
            else:
                self.names[key] = f"%{self.counter}"
                self.counter += 1
        return self.names[key]

    def typed(self, v: Value) -> str:
        return f"{v.type} {self.of(v)}"


def format_instruction(inst: Instruction, namer: _Namer = None) -> str:
    n = namer or _Namer()
    o = n.of
    suffix = ""
    if inst.tbaa is not None:
        suffix += f", !tbaa !{n.md_of(inst.tbaa)}"
    if inst.dbg is not None:
        suffix += f", !dbg !{inst.dbg.line}"

    if isinstance(inst, AllocaInst):
        cnt = f", {inst.count}" if inst.count != 1 else ""
        return f"{o(inst)} = alloca {inst.allocated_type}{cnt}"
    if isinstance(inst, LoadInst):
        vol = "volatile " if inst.is_volatile else ""
        return (f"{o(inst)} = load {vol}{inst.type}, "
                f"{n.typed(inst.pointer)}, align {inst.type.align()}{suffix}")
    if isinstance(inst, StoreInst):
        vol = "volatile " if inst.is_volatile else ""
        return (f"store {vol}{n.typed(inst.value)}, {n.typed(inst.pointer)}, "
                f"align {inst.value.type.align()}{suffix}")
    if isinstance(inst, GEPInst):
        ib = "inbounds " if inst.inbounds else ""
        idx = ", ".join(n.typed(i) for i in inst.indices)
        return (f"{o(inst)} = getelementptr {ib}{inst.pointer.type.pointee}, "
                f"{n.typed(inst.pointer)}, {idx}{suffix}")
    if isinstance(inst, BinaryInst):
        return f"{o(inst)} = {inst.op} {n.typed(inst.lhs)}, {o(inst.rhs)}"
    if isinstance(inst, ICmpInst):
        return f"{o(inst)} = icmp {inst.pred} {n.typed(inst.operands[0])}, {o(inst.operands[1])}"
    if isinstance(inst, FCmpInst):
        return f"{o(inst)} = fcmp {inst.pred} {n.typed(inst.operands[0])}, {o(inst.operands[1])}"
    if isinstance(inst, CastInst):
        return f"{o(inst)} = {inst.op} {n.typed(inst.value)} to {inst.type}"
    if isinstance(inst, SelectInst):
        c, t, f = inst.operands
        return f"{o(inst)} = select {n.typed(c)}, {n.typed(t)}, {n.typed(f)}"
    if isinstance(inst, PhiInst):
        inc = ", ".join(f"[ {o(v)}, {o(b)} ]" for v, b in inst.incoming)
        return f"{o(inst)} = phi {inst.type} {inc}"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            t, f = inst.targets
            return f"br {n.typed(inst.condition)}, label {o(t)}, label {o(f)}"
        return f"br label {o(inst.targets[0])}"
    if isinstance(inst, ReturnInst):
        return f"ret {n.typed(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, CallInst):
        args = ", ".join(n.typed(a) for a in inst.args)
        callee = inst.callee if isinstance(inst.callee, str) else f"@{inst.callee.name}"
        if inst.type.is_void:
            return f"call void {callee}({args})"
        return f"{o(inst)} = call {inst.type} {callee}({args})"
    if isinstance(inst, MemCpyInst):
        return (f"call void @llvm.memcpy({n.typed(inst.dst)}, "
                f"{n.typed(inst.src)}, {n.typed(inst.size)})")
    if isinstance(inst, MemSetInst):
        return (f"call void @llvm.memset({n.typed(inst.dst)}, "
                f"{n.typed(inst.byte)}, {n.typed(inst.size)})")
    if isinstance(inst, ShuffleSplatInst):
        return f"{o(inst)} = splat {n.typed(inst.operands[0])} x {inst.lanes}"
    if isinstance(inst, ExtractElementInst):
        v, i = inst.operands
        return f"{o(inst)} = extractelement {n.typed(v)}, {n.typed(i)}"
    if isinstance(inst, InsertElementInst):
        v, e, i = inst.operands
        return f"{o(inst)} = insertelement {n.typed(v)}, {n.typed(e)}, {n.typed(i)}"
    return f"{o(inst)} = {inst.opcode} " + ", ".join(o(x) for x in inst.operands)


def print_function(fn: Function) -> str:
    namer = _Namer()
    params = ", ".join(
        f"{a.type} {' '.join(sorted(a.attrs)) + ' ' if a.attrs else ''}{namer.of(a)}"
        for a in fn.args
    )
    attrs = (" " + " ".join(sorted(fn.attrs))) if fn.attrs else ""
    tgt = f' target "{fn.target}"' if fn.target != "host" else ""
    if fn.is_declaration:
        return f"declare {fn.return_type} @{fn.name}({params})\n"
    lines = [f"define {fn.return_type} @{fn.name}({params}){attrs}{tgt} {{"]
    for bb in fn.blocks:
        label = namer.of(bb)[1:]
        preds = ""
        lines.append(f"{label}:{preds}")
        for inst in bb.instructions:
            lines.append(f"  {format_instruction(inst, namer)}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _header_parts(mod: Module) -> List[str]:
    parts: List[str] = [f"; ModuleID = '{mod.name}'\n"]
    for name, st in sorted(mod.struct_types.items()):
        fields = ", ".join(str(f) for f in st.fields)
        parts.append(f"%struct.{name} = type {{ {fields} }}\n")
    for name, gv in mod.globals.items():
        const = "constant" if gv.is_constant else "global"
        init = gv.initializer.short() if gv.initializer is not None else "zeroinitializer"
        parts.append(f"@{name} = {const} {gv.value_type} {init}\n")
    return parts


def print_module_header(mod: Module) -> str:
    """The module's printed form minus the function bodies: ModuleID,
    struct types, globals.  Together with per-function hashes this lets
    the incremental compiler assemble an executable hash without
    re-rendering unchanged functions."""
    return "\n".join(_header_parts(mod))


def print_module(mod: Module) -> str:
    parts = _header_parts(mod)
    for fn in mod.functions.values():
        parts.append(print_function(fn))
    return "\n".join(parts)


def module_hash(mod: Module) -> str:
    """Content hash of the module's printed form (the driver's
    "bit-identical executable" test, paper §IV-B)."""
    return hashlib.sha256(print_module(mod).encode()).hexdigest()


def function_hash(fn: Function) -> str:
    """Content hash of one function's printed form.  ``print_function``
    uses a fresh namer per function, so the text — and therefore this
    hash — is self-contained: two structurally identical bodies hash
    equal regardless of the surrounding module."""
    return hashlib.sha256(print_function(fn).encode()).hexdigest()
