"""IR verifier: structural and SSA-dominance well-formedness checks.

Run after the frontend and after every transformation pass in debug
pipelines; a pass that produces ill-formed IR is a bug in the pass, not a
miscompile to be attributed to ORAQL's optimism.
"""

from __future__ import annotations

from typing import List, Set

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BranchInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    StoreInst,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, Value


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def _check(cond: bool, msg: str) -> None:
    if not cond:
        raise VerificationError(msg)


def verify_function(fn: Function, dt=None) -> None:
    """Check ``fn``'s structural and SSA invariants.

    ``dt`` may supply an up-to-date DominatorTree (e.g. the pass
    manager's cached analysis) to avoid a throwaway rebuild; when None,
    one is constructed locally.
    """
    from ..analysis.dominators import DominatorTree

    _check(bool(fn.blocks), f"@{fn.name}: function has no blocks")
    block_set: Set[BasicBlock] = set(fn.blocks)

    for bb in fn.blocks:
        _check(bb.parent is fn, f"@{fn.name}/{bb.name}: wrong parent")
        term = bb.terminator
        _check(term is not None, f"@{fn.name}/{bb.name}: missing terminator")
        for i, inst in enumerate(bb.instructions):
            _check(inst.parent is bb,
                   f"@{fn.name}/{bb.name}: instruction parent mismatch")
            if inst.is_terminator:
                _check(i == len(bb.instructions) - 1,
                       f"@{fn.name}/{bb.name}: terminator not last")
            if isinstance(inst, PhiInst):
                _check(i < len(bb.phis()),
                       f"@{fn.name}/{bb.name}: phi not at block head")
            if isinstance(inst, BranchInst):
                for t in inst.targets:
                    _check(t in block_set,
                           f"@{fn.name}/{bb.name}: branch to foreign block")
            if isinstance(inst, ReturnInst):
                if fn.return_type.is_void:
                    _check(inst.value is None,
                           f"@{fn.name}: returning value from void function")
                else:
                    _check(inst.value is not None,
                           f"@{fn.name}: missing return value")
            if isinstance(inst, LoadInst):
                _check(inst.pointer.type.is_pointer, f"@{fn.name}: load from non-pointer")
                _check(inst.pointer.type.pointee == inst.type,
                       f"@{fn.name}: load type mismatch")
            if isinstance(inst, StoreInst):
                _check(inst.pointer.type.pointee == inst.value.type,
                       f"@{fn.name}: store type mismatch "
                       f"({inst.value.type} into {inst.pointer.type})")

    # phi incoming blocks must exactly match predecessors
    preds = {bb: [] for bb in fn.blocks}
    for bb in fn.blocks:
        for s in bb.successors:
            preds[s].append(bb)
    for bb in fn.blocks:
        for phi in bb.phis():
            inc = set(id(b) for b in phi.incoming_blocks)
            actual = set(id(b) for b in preds[bb])
            _check(inc == actual,
                   f"@{fn.name}/{bb.name}: phi incoming blocks {sorted(inc)} "
                   f"!= predecessors {sorted(actual)}")

    # SSA dominance: every use is dominated by its def
    if dt is None:
        dt = DominatorTree(fn)
    position = {}
    for bb in fn.blocks:
        for i, inst in enumerate(bb.instructions):
            position[inst] = (bb, i)
    for bb in fn.blocks:
        if not dt.is_reachable(bb):
            continue
        for i, inst in enumerate(bb.instructions):
            operands = inst.operands
            for oi, op in enumerate(operands):
                if not isinstance(op, Instruction):
                    continue
                if op not in position:
                    raise VerificationError(
                        f"@{fn.name}: use of erased instruction "
                        f"{op.opcode} in {format_safe(inst)}")
                dbb, di = position[op]
                if isinstance(inst, PhiInst):
                    # value must dominate the incoming edge's terminator
                    pred = inst.incoming_blocks[oi]
                    ok = dt.dominates_block(dbb, pred) if dbb is not pred else True
                    _check(ok, f"@{fn.name}: phi operand does not dominate edge")
                else:
                    if dbb is bb:
                        _check(di < i,
                               f"@{fn.name}/{bb.name}: use before def of "
                               f"{format_safe(op)}")
                    else:
                        _check(dt.dominates_block(dbb, bb),
                               f"@{fn.name}: def in {dbb.name} does not "
                               f"dominate use in {bb.name}")


def format_safe(inst: Instruction) -> str:
    try:
        from .printer import format_instruction
        return format_instruction(inst)
    except Exception:  # pragma: no cover - printing must not mask errors
        return repr(inst)


def verify_module(mod: Module) -> None:
    for fn in mod.defined_functions():
        verify_function(fn)
