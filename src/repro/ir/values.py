"""SSA values: constants, arguments, globals, and the use-list machinery."""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Set, Tuple

from .types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
)

_value_ids = itertools.count()


class Value:
    """Base class of everything that can appear as an operand.

    Each value tracks its users so transformation passes can rewrite uses
    (``replace_all_uses_with``).  Identity (not structural equality) is
    what SSA cares about, so values hash by id.
    """

    __slots__ = ("type", "name", "users", "id", "__weakref__")

    def __init__(self, type: Type, name: str = ""):
        from .uselist import UseList

        self.type = type
        self.name = name
        self.users: UseList = UseList()
        self.id = next(_value_ids)

    # -- use bookkeeping ------------------------------------------------
    def replace_all_uses_with(self, new: "Value") -> None:
        if new is self:
            return
        for user in list(self.users):
            user._replace_operand(self, new)  # type: ignore[attr-defined]

    def _replace_operand(self, old: "Value", new: "Value") -> None:
        raise TypeError(f"{self.__class__.__name__} has no operands")

    # -- display --------------------------------------------------------
    def short(self) -> str:
        """Operand-position rendering (``%name`` / literal)."""
        return f"%{self.name or self.id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.short()}: {self.type}>"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other) -> bool:
        return self is other


class Constant(Value):
    """Base class of constants; constants have no defining instruction."""

    __slots__ = ()


class ConstantInt(Constant):
    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int):
        super().__init__(type)
        mask = (1 << type.bits) - 1
        self.value = value & mask
        # store signed canonical form
        if self.value >= (1 << (type.bits - 1)) and type.bits > 1:
            self.value -= 1 << type.bits

    def short(self) -> str:
        return str(self.value)


class ConstantFloat(Constant):
    __slots__ = ("value",)

    def __init__(self, type: FloatType, value: float):
        super().__init__(type)
        self.value = float(value)

    def short(self) -> str:
        return repr(self.value)


class ConstantNull(Constant):
    """Null pointer constant."""

    __slots__ = ()

    def __init__(self, type: PointerType):
        super().__init__(type)

    def short(self) -> str:
        return "null"


class UndefValue(Constant):
    __slots__ = ()

    def short(self) -> str:
        return "undef"


class ConstantData(Constant):
    """Flat initializer data for globals (arrays/structs of scalars)."""

    __slots__ = ("values",)

    def __init__(self, type: Type, values: Tuple):
        super().__init__(type)
        self.values = tuple(values)

    def short(self) -> str:
        return f"[{', '.join(map(str, self.values[:4]))}{', ...' if len(self.values) > 4 else ''}]"


class Argument(Value):
    """A formal function argument, with LLVM-style parameter attributes."""

    __slots__ = ("function", "index", "attrs")

    def __init__(self, type: Type, name: str, function, index: int,
                 attrs: Optional[Set[str]] = None):
        super().__init__(type, name)
        self.function = function
        self.index = index
        #: e.g. {"noalias", "readonly", "nocapture", "byval"}
        self.attrs: Set[str] = set(attrs or ())

    @property
    def is_noalias(self) -> bool:
        return "noalias" in self.attrs


class GlobalVariable(Value):
    """A module-level variable.  Its value *is* the address (a pointer)."""

    __slots__ = ("value_type", "initializer", "is_constant", "linkage")

    def __init__(self, value_type: Type, name: str,
                 initializer: Optional[Constant] = None,
                 is_constant: bool = False, linkage: str = "internal"):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant
        self.linkage = linkage

    def short(self) -> str:
        return f"@{self.name}"


# -- convenience constructors -------------------------------------------------

def const_int(value: int, type: IntType = None) -> ConstantInt:
    from .types import I64
    return ConstantInt(type or I64, value)


def const_float(value: float, type: FloatType = None) -> ConstantFloat:
    from .types import F64
    return ConstantFloat(type or F64, value)


def is_constant_value(v: Value) -> bool:
    return isinstance(v, Constant)
