"""Basic blocks: straight-line instruction lists ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import BranchInst, Instruction, PhiInst
from .types import LABEL
from .values import Value


class BasicBlock(Value):
    """A label-valued container of instructions inside a function."""

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str = "", parent=None):
        super().__init__(LABEL, name)
        self.instructions: List[Instruction] = []
        self.parent = parent  # Function

    # -- structure --------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        assert inst.parent is None, "instruction already inserted"
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before(self, inst: Instruction, before: Instruction) -> Instruction:
        assert inst.parent is None
        idx = self.instructions.index(before)
        inst.parent = self
        self.instructions.insert(idx, inst)
        return inst

    def insert_at_front(self, inst: Instruction) -> Instruction:
        assert inst.parent is None
        inst.parent = self
        # phis stay first
        idx = 0
        while idx < len(self.instructions) and isinstance(
                self.instructions[idx], PhiInst):
            idx += 1
        self.instructions.insert(idx, inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def phis(self) -> List[PhiInst]:
        out = []
        for i in self.instructions:
            if not isinstance(i, PhiInst):
                break
            out.append(i)
        return out

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiInst)]

    # -- CFG --------------------------------------------------------------
    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, BranchInst):
            return list(term.targets)
        return []

    @property
    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for bb in self.parent.blocks:
            if self in bb.successors:
                preds.append(bb)
        return preds

    def erase_from_parent(self) -> None:
        """Remove the block; callers must have fixed up uses/phis first."""
        for inst in list(self.instructions):
            inst.erase_from_parent()
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def short(self) -> str:
        return f"%{self.name or self.id}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock {self.name or self.id} ({len(self.instructions)} insts)>"
