"""repro.ir — the typed SSA intermediate representation.

A compact LLVM-like IR: modules of functions of basic blocks of
instructions, with TBAA / alias-scope / debug metadata, an IRBuilder, a
printer (also used for executable hashing) and a verifier.
"""

from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
    VoidType,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    I8PTR,
    LABEL,
    VOID,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantData,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
    Value,
    const_float,
    const_int,
)
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
    UnreachableInst,
    BINOPS,
    COMMUTATIVE_BINOPS,
    PURE_INTRINSICS,
)
from .basicblock import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .metadata import AliasScope, DebugLoc, ScopedAliasMD, TBAAForest, TBAANode, tbaa_alias
from .printer import (
    format_instruction,
    function_hash,
    module_hash,
    print_function,
    print_module,
    print_module_header,
)
from .clone import (clone_function_into, detach_uses, mirror_use_order,
                    repoint_functions)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [name for name in dir() if not name.startswith("_")]
