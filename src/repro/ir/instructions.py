"""Instruction classes for the repro IR.

The set mirrors the LLVM subset that matters for alias analysis and the
optimizations ORAQL perturbs: stack allocation, loads/stores (scalar and
vector), GEP address arithmetic, integer/float arithmetic, comparisons,
casts, phis, branches, calls, and the memory intrinsics ``memcpy`` /
``memset``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .metadata import DebugLoc, ScopedAliasMD, TBAANode
from .types import (
    ArrayType,
    FloatType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VectorType,
    VoidType,
    I1,
    I64,
    VOID,
    ptr,
)
from .values import Constant, Value

# Binary opcodes grouped by domain.
INT_BINOPS = {"add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
              "and", "or", "xor", "shl", "ashr", "lshr"}
FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv", "frem"}
BINOPS = INT_BINOPS | FLOAT_BINOPS
COMMUTATIVE_BINOPS = {"add", "mul", "and", "or", "xor", "fadd", "fmul"}

ICMP_PREDS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
FCMP_PREDS = {"oeq", "one", "olt", "ole", "ogt", "oge"}

CAST_OPS = {"trunc", "zext", "sext", "fptosi", "sitofp", "fpext", "fptrunc",
            "bitcast", "ptrtoint", "inttoptr"}

#: intrinsics with no memory effects at all (pure math)
PURE_INTRINSICS = {
    "sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "floor", "ceil",
    "fmin", "fmax", "llvm.vector.reduce.fadd", "llvm.vector.reduce.add",
}


class Instruction(Value):
    """Base instruction: an SSA value with operands, a parent block, and
    the metadata families consumed by the AA stack and by ORAQL dumps."""

    __slots__ = ("operands", "parent", "tbaa", "scoped", "dbg")

    opcode: str = "?"

    def __init__(self, type: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.operands: List[Value] = []
        self.parent = None  # BasicBlock, set on insertion
        self.tbaa: Optional[TBAANode] = None
        self.scoped: Optional[ScopedAliasMD] = None
        self.dbg: Optional[DebugLoc] = None
        for op in operands:
            self._add_operand(op)

    # -- operand plumbing -------------------------------------------------
    def _add_operand(self, v: Value) -> None:
        assert isinstance(v, Value), f"non-value operand {v!r}"
        self.operands.append(v)
        v.users.add(self)

    def set_operand(self, index: int, v: Value) -> None:
        old = self.operands[index]
        self.operands[index] = v
        if old not in self.operands:
            old.users.discard(self)
        v.users.add(self)

    def _replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                new.users.add(self)
        old.users.discard(self)

    def drop_all_references(self) -> None:
        for op in set(self.operands):
            op.users.discard(self)
        self.operands.clear()

    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_all_references()

    @property
    def function(self):
        return self.parent.parent if self.parent is not None else None

    @property
    def module(self):
        fn = self.function
        return fn.parent if fn is not None else None

    # -- behaviour classification -----------------------------------------
    @property
    def is_terminator(self) -> bool:
        return False

    def may_read_memory(self) -> bool:
        return False

    def may_write_memory(self) -> bool:
        return False

    def has_side_effects(self) -> bool:
        """True if the instruction must not be removed even when unused."""
        return self.may_write_memory()

    def clone(self) -> "Instruction":
        """Shallow clone with the same operands, not inserted anywhere."""
        import copy
        new = copy.copy(self)
        # Re-run value bookkeeping: fresh id, fresh (empty) user set.
        Value.__init__(new, self.type, self.name)
        new.operands = []
        new.parent = None
        for op in self.operands:
            new._add_operand(op)
        new.tbaa = self.tbaa
        new.scoped = self.scoped
        new.dbg = self.dbg
        return new

    def __repr__(self) -> str:  # pragma: no cover
        ops = ", ".join(o.short() for o in self.operands)
        return f"<{self.opcode} {self.short()} [{ops}]>"


class AllocaInst(Instruction):
    """Stack allocation of ``count`` elements of ``allocated_type``."""

    __slots__ = ("allocated_type", "count")
    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        super().__init__(ptr(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    def size_bytes(self) -> int:
        return self.allocated_type.size() * self.count


class LoadInst(Instruction):
    __slots__ = ("is_volatile",)
    opcode = "load"

    def __init__(self, pointer: Value, name: str = "", volatile: bool = False):
        assert pointer.type.is_pointer, f"load from non-pointer {pointer!r}"
        super().__init__(pointer.type.pointee, [pointer], name)
        self.is_volatile = volatile

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def may_read_memory(self) -> bool:
        return True

    def has_side_effects(self) -> bool:
        return self.is_volatile


class StoreInst(Instruction):
    __slots__ = ("is_volatile",)
    opcode = "store"

    def __init__(self, value: Value, pointer: Value, volatile: bool = False):
        assert pointer.type.is_pointer
        super().__init__(VOID, [value, pointer])
        self.is_volatile = volatile

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def may_write_memory(self) -> bool:
        return True


class GEPInst(Instruction):
    """``getelementptr``: typed address arithmetic.

    The first index scales by the size of the pointee; later indices step
    into arrays (dynamic) or struct fields (constant).
    """

    __slots__ = ("inbounds",)
    opcode = "getelementptr"

    def __init__(self, pointer: Value, indices: Sequence[Value],
                 inbounds: bool = True, name: str = ""):
        assert pointer.type.is_pointer
        result = self.result_type(pointer.type, indices)
        super().__init__(result, [pointer, *indices], name)
        self.inbounds = inbounds

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    @staticmethod
    def result_type(ptr_type: PointerType, indices: Sequence[Value]) -> PointerType:
        from .values import ConstantInt

        ty: Type = ptr_type.pointee
        for idx in list(indices)[1:]:
            if isinstance(ty, ArrayType):
                ty = ty.element
            elif isinstance(ty, VectorType):
                ty = ty.element
            elif isinstance(ty, StructType):
                if not isinstance(idx, ConstantInt):
                    raise TypeError("struct GEP index must be constant")
                ty = ty.fields[idx.value]
            else:
                raise TypeError(f"cannot index into {ty}")
        return ptr(ty)

    def constant_offset(self) -> Optional[int]:
        """Byte offset if all indices are constants, else None."""
        from .values import ConstantInt

        offset = 0
        ty: Type = self.pointer.type.pointee
        for i, idx in enumerate(self.indices):
            if not isinstance(idx, ConstantInt):
                return None
            if i == 0:
                offset += idx.value * ty.size()
            elif isinstance(ty, (ArrayType, VectorType)):
                ty = ty.element
                offset += idx.value * ty.size()
            elif isinstance(ty, StructType):
                offset += ty.field_offset(idx.value)
                ty = ty.fields[idx.value]
            else:  # pragma: no cover - verifier rejects
                return None
        return offset

    def decomposed(self) -> Tuple[Value, Optional[int], List[Tuple[Value, int]]]:
        """Decompose into (base, const_offset_or_None, [(var_index, scale)]).

        const part accumulates all constant indices; var part records each
        non-constant index with its byte scale.  Used by BasicAA.
        """
        from .values import ConstantInt

        const_off = 0
        var_parts: List[Tuple[Value, int]] = []
        ty: Type = self.pointer.type.pointee
        for i, idx in enumerate(self.indices):
            if i == 0:
                scale = ty.size()
            elif isinstance(ty, (ArrayType, VectorType)):
                ty = ty.element
                scale = ty.size()
            elif isinstance(ty, StructType):
                if isinstance(idx, ConstantInt):
                    const_off += ty.field_offset(idx.value)
                    ty = ty.fields[idx.value]
                    continue
                raise TypeError("struct GEP index must be constant")
            else:  # pragma: no cover
                raise TypeError(f"cannot index into {ty}")
            if isinstance(idx, ConstantInt):
                const_off += idx.value * scale
            else:
                var_parts.append((idx, scale))
        return self.pointer, const_off, var_parts


class BinaryInst(Instruction):
    __slots__ = ("op",)
    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        assert op in BINOPS, f"unknown binop {op}"
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmpInst(Instruction):
    __slots__ = ("pred",)
    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        assert pred in ICMP_PREDS, pred
        result: Type = I1
        if isinstance(lhs.type, VectorType):
            result = VectorType(I1, lhs.type.count)
        super().__init__(result, [lhs, rhs], name)
        self.pred = pred


class FCmpInst(Instruction):
    __slots__ = ("pred",)
    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        assert pred in FCMP_PREDS, pred
        result: Type = I1
        if isinstance(lhs.type, VectorType):
            result = VectorType(I1, lhs.type.count)
        super().__init__(result, [lhs, rhs], name)
        self.pred = pred


class CastInst(Instruction):
    __slots__ = ("op",)
    opcode = "cast"

    def __init__(self, op: str, value: Value, to_type: Type, name: str = ""):
        assert op in CAST_OPS, op
        super().__init__(to_type, [value], name)
        self.op = op

    @property
    def value(self) -> Value:
        return self.operands[0]


class SelectInst(Instruction):
    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = ""):
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]


class PhiInst(Instruction):
    """SSA phi node.  Incoming blocks are stored alongside operands."""

    __slots__ = ("incoming_blocks",)
    opcode = "phi"

    def __init__(self, type: Type, name: str = ""):
        super().__init__(type, [], name)
        self.incoming_blocks: List = []

    def add_incoming(self, value: Value, block) -> None:
        self._add_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for_block(self, block) -> Optional[Value]:
        for v, b in zip(self.operands, self.incoming_blocks):
            if b is block:
                return v
        return None

    def remove_incoming(self, block) -> None:
        for i, b in enumerate(self.incoming_blocks):
            if b is block:
                old = self.operands.pop(i)
                self.incoming_blocks.pop(i)
                if old not in self.operands:
                    old.users.discard(self)
                return


class BranchInst(Instruction):
    """Unconditional (1 target) or conditional (cond + 2 targets) branch."""

    __slots__ = ("targets",)
    opcode = "br"

    def __init__(self, targets: Sequence, cond: Optional[Value] = None):
        super().__init__(VOID, [cond] if cond is not None else [])
        self.targets = list(targets)
        assert (cond is None and len(self.targets) == 1) or (
            cond is not None and len(self.targets) == 2
        )

    @property
    def is_conditional(self) -> bool:
        return bool(self.operands)

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def is_terminator(self) -> bool:
        return True

    def has_side_effects(self) -> bool:
        return True


class ReturnInst(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def is_terminator(self) -> bool:
        return True

    def has_side_effects(self) -> bool:
        return True


class UnreachableInst(Instruction):
    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, [])

    @property
    def is_terminator(self) -> bool:
        return True

    def has_side_effects(self) -> bool:
        return True


class CallInst(Instruction):
    """Direct call to a Function, or to a named intrinsic/runtime shim."""

    __slots__ = ("callee",)
    opcode = "call"

    def __init__(self, callee, args: Sequence[Value], type: Type, name: str = ""):
        super().__init__(type, list(args), name)
        self.callee = callee  # Function | str

    @property
    def callee_name(self) -> str:
        return self.callee if isinstance(self.callee, str) else self.callee.name

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    def is_intrinsic(self) -> bool:
        return isinstance(self.callee, str)

    def is_pure(self) -> bool:
        if self.is_intrinsic():
            return self.callee in PURE_INTRINSICS
        return "readnone" in getattr(self.callee, "attrs", set())

    def only_reads_memory(self) -> bool:
        if self.is_pure():
            return True
        return not self.is_intrinsic() and "readonly" in getattr(
            self.callee, "attrs", set())

    def may_read_memory(self) -> bool:
        return not self.is_pure()

    def may_write_memory(self) -> bool:
        return not self.is_pure() and not self.only_reads_memory()

    def has_side_effects(self) -> bool:
        return not self.is_pure()


class MemCpyInst(Instruction):
    """memcpy(dst, src, nbytes); dst and src must not overlap."""

    opcode = "memcpy"

    def __init__(self, dst: Value, src: Value, size: Value):
        super().__init__(VOID, [dst, src, size])

    @property
    def dst(self) -> Value:
        return self.operands[0]

    @property
    def src(self) -> Value:
        return self.operands[1]

    @property
    def size(self) -> Value:
        return self.operands[2]

    def may_read_memory(self) -> bool:
        return True

    def may_write_memory(self) -> bool:
        return True


class MemSetInst(Instruction):
    """memset(dst, byte, nbytes)."""

    opcode = "memset"

    def __init__(self, dst: Value, byte: Value, size: Value):
        super().__init__(VOID, [dst, byte, size])

    @property
    def dst(self) -> Value:
        return self.operands[0]

    @property
    def byte(self) -> Value:
        return self.operands[1]

    @property
    def size(self) -> Value:
        return self.operands[2]

    def may_write_memory(self) -> bool:
        return True


class ExtractElementInst(Instruction):
    opcode = "extractelement"

    def __init__(self, vector: Value, index: Value, name: str = ""):
        assert isinstance(vector.type, VectorType)
        super().__init__(vector.type.element, [vector, index], name)


class InsertElementInst(Instruction):
    opcode = "insertelement"

    def __init__(self, vector: Value, element: Value, index: Value, name: str = ""):
        assert isinstance(vector.type, VectorType)
        super().__init__(vector.type, [vector, element, index], name)


class ShuffleSplatInst(Instruction):
    """Broadcast a scalar into all lanes of a vector (splat shuffle)."""

    __slots__ = ("lanes",)
    opcode = "splat"

    def __init__(self, scalar: Value, lanes: int, name: str = ""):
        super().__init__(VectorType(scalar.type, lanes), [scalar], name)
        self.lanes = lanes


MemoryInst = (LoadInst, StoreInst, MemCpyInst, MemSetInst)
