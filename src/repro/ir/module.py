"""Modules: the top-level IR container (functions, globals, TBAA forest)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .function import Function
from .metadata import TBAAForest
from .types import FunctionType, StructType, Type
from .values import Constant, GlobalVariable


class Module:
    """A translation unit: functions, globals, named struct types, TBAA."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.struct_types: Dict[str, StructType] = {}
        self.tbaa = TBAAForest()
        self.source_filename: Optional[str] = None

    # -- functions ----------------------------------------------------------
    def add_function(self, ftype: FunctionType, name: str,
                     arg_names: Optional[Sequence[str]] = None,
                     target: str = "host") -> Function:
        if name in self.functions:
            raise KeyError(f"duplicate function @{name}")
        fn = Function(ftype, name, self, arg_names, target)
        self.functions[name] = fn
        return fn

    def declare_function(self, ftype: FunctionType, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            fn = self.add_function(ftype, name)
            fn.is_declaration = True
        return fn

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # -- globals --------------------------------------------------------------
    def add_global(self, value_type: Type, name: str,
                   initializer: Optional[Constant] = None,
                   is_constant: bool = False) -> GlobalVariable:
        if name in self.globals:
            raise KeyError(f"duplicate global @{name}")
        gv = GlobalVariable(value_type, name, initializer, is_constant)
        self.globals[name] = gv
        return gv

    _str_count = 0

    def add_string(self, text: str, name: Optional[str] = None) -> GlobalVariable:
        """Intern a NUL-terminated string constant (printf formats etc.)."""
        from .types import ArrayType, I8
        from .values import ConstantData

        payload = text.encode() + b"\x00"
        if name is None:
            name = f".str.{self._str_count}"
            self._str_count += 1
        init = ConstantData(ArrayType(I8, len(payload)), tuple(payload))
        return self.add_global(ArrayType(I8, len(payload)), name, init,
                               is_constant=True)

    # -- types ----------------------------------------------------------------
    def add_struct_type(self, name: str, fields: Sequence[Type],
                        field_names: Optional[Sequence[str]] = None) -> StructType:
        if name in self.struct_types:
            raise KeyError(f"duplicate struct %{name}")
        st = StructType(name, fields, field_names)
        self.struct_types[name] = st
        return st

    def link(self, other: "Module") -> None:
        """Link ``other`` into this module (manual LTO, paper §V-A-d).

        Declarations are resolved against definitions; duplicate
        definitions are an error, duplicate declarations merge.
        """
        for name, st in other.struct_types.items():
            if name not in self.struct_types:
                self.struct_types[name] = st
        for name, gv in other.globals.items():
            if name in self.globals:
                mine = self.globals[name]
                if mine.initializer is None:
                    self.globals[name] = gv
                elif gv.initializer is not None:
                    raise KeyError(f"duplicate global definition @{name}")
            else:
                self.globals[name] = gv
        for name, fn in other.functions.items():
            mine = self.functions.get(name)
            if mine is None:
                self.functions[name] = fn
                fn.parent = self
            elif mine.is_declaration and not fn.is_declaration:
                fn.parent = self
                mine.replace_all_uses_with(fn)
                self.functions[name] = fn
            elif not mine.is_declaration and not fn.is_declaration:
                raise KeyError(f"duplicate function definition @{name}")
            else:
                fn.replace_all_uses_with(mine)
        self._fixup_callees()

    def _fixup_callees(self) -> None:
        """Point every direct call at the canonical (linked) function.
        The callee is an attribute, not an operand, so RAUW misses it."""
        from .instructions import CallInst

        for fn in self.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, CallInst) and isinstance(
                        inst.callee, Function):
                    canonical = self.functions.get(inst.callee.name)
                    if canonical is not None and canonical is not inst.callee:
                        inst.callee = canonical

    def num_instructions(self) -> int:
        return sum(f.num_instructions() for f in self.defined_functions())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Module {self.name}: {len(self.functions)} functions>"
