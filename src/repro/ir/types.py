"""Type system for the repro IR.

The IR is typed in the style of LLVM: first-class integer/float scalars,
pointers, fixed-size arrays, named structs, vectors, and function types.
Types are immutable and interned where cheap so identity comparisons work
for scalars; aggregate equality is structural.

Sizes and alignments follow a conventional LP64 data layout: pointers are
8 bytes, ``double`` is 8, ``float`` is 4, ``iN`` is ``N/8`` rounded up.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple


class Type:
    """Base class of all IR types."""

    #: subclasses override
    def size(self) -> int:
        """Size in bytes when stored in memory."""
        raise NotImplementedError

    def align(self) -> int:
        """ABI alignment in bytes."""
        return max(1, min(self.size(), 8))

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self}>"


class VoidType(Type):
    def size(self) -> int:
        raise TypeError("void has no size")

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class LabelType(Type):
    """The type of basic-block labels (only used by branch operands)."""

    def size(self) -> int:
        raise TypeError("label has no size")

    def __str__(self) -> str:
        return "label"

    def __eq__(self, other) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")


class IntType(Type):
    """Arbitrary-width two's-complement integer type ``iN``."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits <= 0 or bits > 128:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return max(1, (self.bits + 7) // 8)

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("i", self.bits))


class FloatType(Type):
    """IEEE binary floating point: 32 (``float``) or 64 (``double``)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    def size(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"

    def __eq__(self, other) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("f", self.bits))


class PointerType(Type):
    """Pointer to ``pointee``.  All pointers are 8 bytes."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """Fixed-length homogeneous array ``[N x T]``."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("negative array length")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def align(self) -> int:
        return self.element.align()

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.count == self.count
            and other.element == self.element
        )

    def __hash__(self) -> int:
        return hash(("arr", self.element, self.count))


class VectorType(Type):
    """SIMD vector ``<N x T>`` of scalar elements."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if not (element.is_integer or element.is_float or element.is_pointer):
            raise ValueError("vector elements must be scalar")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VectorType)
            and other.count == self.count
            and other.element == self.element
        )

    def __hash__(self) -> int:
        return hash(("vec", self.element, self.count))


def _align_up(offset: int, align: int) -> int:
    return (offset + align - 1) & ~(align - 1)


class StructType(Type):
    """A named struct with ordered fields.

    Field offsets follow natural alignment (no packing).  Structs are
    compared by name when named (nominal typing, like LLVM's identified
    structs) and structurally when anonymous.
    """

    __slots__ = ("name", "fields", "field_names", "_ptr")

    def __init__(
        self,
        name: str,
        fields: Sequence[Type],
        field_names: Optional[Sequence[str]] = None,
    ):
        self.name = name
        self.fields: Tuple[Type, ...] = tuple(fields)
        if field_names is None:
            field_names = tuple(f"f{i}" for i in range(len(self.fields)))
        if len(field_names) != len(self.fields):
            raise ValueError("field name count mismatch")
        self.field_names: Tuple[str, ...] = tuple(field_names)

    def field_offset(self, index: int) -> int:
        offset = 0
        for i, f in enumerate(self.fields):
            offset = _align_up(offset, f.align())
            if i == index:
                return offset
            offset += f.size()
        raise IndexError(index)

    def field_index(self, name: str) -> int:
        try:
            return self.field_names.index(name)
        except ValueError:
            raise KeyError(f"struct {self.name} has no field {name!r}") from None

    def size(self) -> int:
        offset = 0
        for f in self.fields:
            offset = _align_up(offset, f.align())
            offset += f.size()
        return _align_up(offset, self.align())

    def align(self) -> int:
        return max([1] + [f.align() for f in self.fields])

    def __str__(self) -> str:
        if self.name:
            return f"%struct.{self.name}"
        inner = ", ".join(str(f) for f in self.fields)
        return f"{{ {inner} }}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, StructType):
            return False
        if self.name or other.name:
            return self.name == other.name
        return self.fields == other.fields

    def __hash__(self) -> int:
        if self.name:
            return hash(("struct", self.name))
        return hash(("struct",) + self.fields)


class FunctionType(Type):
    """Function signature ``ret(params...)``; optionally variadic."""

    __slots__ = ("ret", "params", "vararg")

    def __init__(self, ret: Type, params: Iterable[Type], vararg: bool = False):
        self.ret = ret
        self.params: Tuple[Type, ...] = tuple(params)
        self.vararg = vararg

    def size(self) -> int:
        raise TypeError("function type has no size")

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.vararg:
            ps = ps + ", ..." if ps else "..."
        return f"{self.ret} ({ps})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params, self.vararg))


# Interned common types -------------------------------------------------------

VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


@lru_cache(maxsize=None)
def _ptr_interned(pointee: Type) -> PointerType:
    return PointerType(pointee)


def ptr(pointee: Type) -> PointerType:
    """Interned pointer-type constructor.

    Named structs intern *by identity*, not by structural equality: two
    modules may define distinct structs with the same name (e.g. the
    OpenMP outliner's context structs), and a name-keyed cache would
    hand out a pointer to the wrong one.
    """
    if isinstance(pointee, StructType):
        cached = getattr(pointee, "_ptr", None)
        if cached is None:
            cached = PointerType(pointee)
            pointee._ptr = cached
        return cached
    if _embeds_struct(pointee):
        # named structs compare by name, so equality-keyed interning
        # could hand back a pointer into a *different* module's struct
        return PointerType(pointee)
    return _ptr_interned(pointee)


def _embeds_struct(ty: Type) -> bool:
    if isinstance(ty, StructType):
        return True
    if isinstance(ty, PointerType):
        return _embeds_struct(ty.pointee)
    if isinstance(ty, (ArrayType, VectorType)):
        return _embeds_struct(ty.element)
    return False


I8PTR = ptr(I8)
