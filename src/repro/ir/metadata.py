"""IR metadata: TBAA type trees, alias scopes, and debug locations.

These mirror the three metadata families ORAQL's surrounding AA stack
consumes in LLVM:

* ``!tbaa`` — type-based alias analysis access tags hanging off a tree of
  type descriptors rooted at "omnipotent char";
* ``!alias.scope`` / ``!noalias`` — scoped no-alias metadata emitted for
  ``restrict`` arguments after inlining;
* ``!dbg`` — source locations used by ORAQL's query dumps (Fig. 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

_ids = itertools.count()


@dataclass(frozen=True)
class DebugLoc:
    """A source location ``file:line:col`` attached to an instruction."""

    file: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"


class TBAANode:
    """A node in the TBAA type-descriptor tree.

    The root node represents "omnipotent char" (may alias anything).  A
    scalar node has a single parent; an access through a scalar type
    aliases accesses through any ancestor or descendant, and nothing else.
    Struct-path TBAA is modelled by creating one scalar node per
    (struct, field) pair with the field's scalar type as parent.
    """

    __slots__ = ("name", "parent", "is_constant", "_id")

    def __init__(self, name: str, parent: Optional["TBAANode"] = None,
                 is_constant: bool = False):
        self.name = name
        self.parent = parent
        self.is_constant = is_constant
        self._id = next(_ids)

    def ancestors(self):
        node: Optional[TBAANode] = self
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "TBAANode") -> bool:
        return any(a is self for a in other.ancestors())

    def root(self) -> "TBAANode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def __str__(self) -> str:
        return f'!tbaa("{self.name}")'

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TBAANode {self.name}>"


class TBAAForest:
    """Factory owning the TBAA tree for one module.

    Mirrors clang's default hierarchy: a root, "omnipotent char" beneath
    it, and scalar nodes (int, long, float, double, any-pointer) beneath
    the char node.
    """

    def __init__(self):
        self.root = TBAANode("Simple C/C++ TBAA")
        self.char = TBAANode("omnipotent char", self.root)
        self._scalars = {}

    def scalar(self, name: str, parent: Optional[TBAANode] = None) -> TBAANode:
        key = (name, parent._id if parent else None)
        node = self._scalars.get(key)
        if node is None:
            node = TBAANode(name, parent or self.char)
            self._scalars[key] = node
        return node

    def for_type_name(self, name: str) -> TBAANode:
        """Scalar node for a C type name (``int``, ``double``, ``any pointer`` ...)."""
        return self.scalar(name)

    def struct_field(self, struct_name: str, field_name: str,
                     scalar: TBAANode) -> TBAANode:
        """Struct-path access node for ``struct_name.field_name``."""
        return self.scalar(f"{struct_name}::{field_name}", parent=scalar)


def tbaa_alias(a: Optional[TBAANode], b: Optional[TBAANode]) -> bool:
    """TBAA verdict: may the two access tags alias?

    Missing tags, differing roots, and char-rooted tags are conservatively
    ``True``.  Two tags with a common root alias iff one is an ancestor of
    the other (including equality).
    """
    if a is None or b is None:
        return True
    if a.root() is not b.root():
        return True
    # The "omnipotent char" node (direct child of root) aliases everything.
    if a.parent is a.root() or b.parent is b.root():
        return True
    if a.parent is None or b.parent is None:
        return True
    return a.is_ancestor_of(b) or b.is_ancestor_of(a)


@dataclass(frozen=True)
class AliasScope:
    """One scope in an alias-scope domain (one per ``restrict`` pointer)."""

    name: str
    domain: str
    id: int = field(default_factory=lambda: next(_ids))

    def __str__(self) -> str:
        return f"!scope({self.domain}:{self.name})"


@dataclass(frozen=True)
class ScopedAliasMD:
    """The pair of scope lists attached to one memory instruction.

    ``alias_scopes`` — scopes this access belongs to; ``noalias_scopes`` —
    scopes this access is known not to alias.
    """

    alias_scopes: Tuple[AliasScope, ...] = ()
    noalias_scopes: Tuple[AliasScope, ...] = ()

    def merged_with(self, other: "ScopedAliasMD") -> "ScopedAliasMD":
        return ScopedAliasMD(
            tuple(dict.fromkeys(self.alias_scopes + other.alias_scopes)),
            tuple(dict.fromkeys(self.noalias_scopes + other.noalias_scopes)),
        )
