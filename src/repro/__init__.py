"""ORAQL — Optimistic Responses to Alias Queries (ICPP 2023), a
pure-Python reproduction.

The package layers, bottom-up:

* :mod:`repro.ir` — a typed SSA IR with TBAA / alias-scope / debug
  metadata (the LLVM-IR stand-in);
* :mod:`repro.analysis` — the alias-analysis chain (BasicAA, TBAA,
  ScopedNoAlias, GlobalsAA, CFL-Steens/Anders), dominators, loops,
  MemorySSA;
* :mod:`repro.passes` — the AA-consuming optimizations (EarlyCSE, GVN,
  LICM, DSE, loop deletion/load-elim, memcpyopt, vectorizers, sinking)
  under a pass manager with LLVM-style statistics;
* :mod:`repro.codegen` — machine-instruction accounting, register
  allocation, GPU kernel static properties;
* :mod:`repro.vm` — a deterministic interpreter (instruction counts,
  cycle model, OpenMP/CUDA/MPI simulation) that makes verification real;
* :mod:`repro.frontend` — the MiniC frontend (restrict, TBAA, OpenMP
  outlining, CUDA kernels);
* :mod:`repro.oraql` — **the paper's contribution**: the ORAQL alias
  analysis pass, the probing driver (chunked and frequency-space
  bisection), and the verification script;
* :mod:`repro.workloads` — the seven HPC proxy apps in all sixteen
  configurations of Fig. 4;
* :mod:`repro.experiments` — regeneration of every evaluation table and
  figure.

Quickstart::

    from repro.oraql import BenchmarkConfig, SourceFile, ProbingDriver

    cfg = BenchmarkConfig(name="demo", sources=[SourceFile("a.c", SRC)])
    report = ProbingDriver(cfg).run()
    print(report.summary())
"""

__version__ = "1.0.0"

from .oraql import (
    BenchmarkConfig,
    CompiledProgram,
    Compiler,
    DecisionSequence,
    DumpFlags,
    OraqlAAPass,
    ProbingDriver,
    ProbingReport,
    SourceFile,
    VerificationScript,
    render_report,
)

__all__ = [
    "BenchmarkConfig", "CompiledProgram", "Compiler", "DecisionSequence",
    "DumpFlags", "OraqlAAPass", "ProbingDriver", "ProbingReport",
    "SourceFile", "VerificationScript", "render_report", "__version__",
]
