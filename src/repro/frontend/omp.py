"""OpenMP ``parallel for`` outlining.

The frontend rewrites

    #pragma omp parallel for
    for (int i = lo; i < hi; i++) BODY

into an outlined function

    void <parent>.omp_outlined..N(int tid, struct ctx* __ctx,
                                  int lb, int ub)
        { for (int i = lb; i < ub; i++) BODY' }

where ``ctx`` holds the *addresses* of every captured variable and
``BODY'`` accesses captured variables through pointers loaded from the
context.  This is the same shape clang's OpenMP lowering produces, and
those context-pointer loads (``dptr``) are the source of most residual
alias queries in the paper's OpenMP configurations (§V-A, Fig. 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    ConstantInt,
    FunctionType,
    I64,
    IRBuilder,
    PointerType,
    StructType,
    Type,
    VOID,
    ptr,
)
from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Call,
    CastExpr,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    Ident,
    If,
    Index,
    Member,
    Param,
    Return,
    SizeofExpr,
    Stmt,
    Ternary,
    Unary,
    While,
)


class OmpError(Exception):
    pass


def _collect_idents(node, out: Set[str]) -> None:
    """All identifier references in an AST fragment."""
    if node is None:
        return
    if isinstance(node, Ident):
        out.add(node.name)
        return
    if isinstance(node, Call):
        for a in node.args:
            _collect_idents(a, out)
        return
    for attr in ("operand", "lhs", "rhs", "target", "value", "cond", "then",
                 "other", "base", "index", "init", "step", "body",
                 "expr"):
        child = getattr(node, attr, None)
        if isinstance(child, (Expr, Stmt)):
            _collect_idents(child, out)
    for attr in ("statements", "init_list"):
        children = getattr(node, attr, None)
        if children:
            for c in children:
                _collect_idents(c, out)


def _collect_local_decls(node, out: Set[str]) -> None:
    if node is None:
        return
    if isinstance(node, DeclStmt):
        out.add(node.name)
    for attr in ("init", "step", "body", "then", "other"):
        child = getattr(node, attr, None)
        if isinstance(child, Stmt):
            _collect_local_decls(child, out)
    for child in getattr(node, "statements", []) or []:
        _collect_local_decls(child, out)


def _loop_bounds(stmt: For) -> Tuple[str, Expr, Expr]:
    """Extract (loop var, lower, upper) from a canonical parallel for."""
    init = stmt.init
    if isinstance(init, DeclStmt) and init.init is not None:
        var, lo = init.name, init.init
    elif isinstance(init, ExprStmt) and isinstance(init.expr, Assign) \
            and isinstance(init.expr.target, Ident):
        var, lo = init.expr.target.name, init.expr.value
    else:
        raise OmpError("omp for requires 'int i = lo' init")
    cond = stmt.cond
    if not isinstance(cond, Binary) or cond.op not in ("<", "<=") \
            or not isinstance(cond.lhs, Ident) or cond.lhs.name != var:
        raise OmpError("omp for requires 'i < hi' condition")
    hi = cond.rhs
    if cond.op == "<=":
        hi = Binary(cond.line, "+", hi, IntLitOne(cond.line))
    step = stmt.step
    ok_step = False
    if isinstance(step, Unary) and step.op in ("++", "p++") \
            and isinstance(step.operand, Ident) and step.operand.name == var:
        ok_step = True
    if isinstance(step, Assign) and step.op == "+=" \
            and isinstance(step.target, Ident) and step.target.name == var:
        from .ast_nodes import IntLit
        if isinstance(step.value, IntLit) and step.value.value == 1:
            ok_step = True
    if not ok_step:
        raise OmpError("omp for requires unit-increment step")
    return var, lo, hi


def IntLitOne(line: int):
    from .ast_nodes import IntLit
    return IntLit(line, 1)


def outline_parallel_for(emitter, stmt: For) -> None:
    """Emit the outlined function + runtime call for one parallel for."""
    cg = emitter.cg
    module = cg.module
    var, lo_expr, hi_expr = _loop_bounds(stmt)

    # capture set: referenced names bound in the enclosing scope
    refs: Set[str] = set()
    _collect_idents(stmt.body, refs)
    _collect_idents(hi_expr, refs)
    body_locals: Set[str] = set()
    _collect_local_decls(stmt.body, body_locals)
    captured = sorted(
        n for n in refs
        if n in emitter.scope and n != var and n not in body_locals)

    # context struct: one pointer field per captured variable
    oid = cg.next_outline_id()
    ctx_name = f"omp.ctx.{emitter.fn.name}.{oid}"
    field_types: List[Type] = []
    field_names: List[str] = []
    for n in captured:
        slot, cty = emitter.scope[n]
        field_types.append(slot.type)  # pointer to the variable's storage
        field_names.append(n)
    ctx_ty = module.add_struct_type(ctx_name, field_types, field_names)

    outlined_name = f"{emitter.fn.name}.omp_outlined..{oid}"
    ftype = FunctionType(VOID, [I64, ptr(ctx_ty), I64, I64])
    out_fn = module.add_function(ftype, outlined_name,
                                 ["tid", "__ctx", "lb", "ub"],
                                 target=emitter.fn.target)
    out_fn.source_file = emitter.fn.source_file
    out_fn.attrs.add("omp-outlined")

    # emit the outlined body with a sub-emitter
    sub_fd = FunctionDef(CType("void"), outlined_name, [
        Param(CType("int"), "tid"),
        Param(CType(f"struct {ctx_name}", 1), "__ctx"),
        Param(CType("int"), "lb"),
        Param(CType("int"), "ub"),
    ], None, False, stmt.line)
    from .codegen import FnEmitter, _ctype_of_ir
    sub = FnEmitter(cg, sub_fd, out_fn)
    entry = out_fn.add_block("entry")
    sub.b.position_at_end(entry)
    sub.b.default_dbg = emitter.dbg(stmt.line)
    # parameter slots
    for arg, p in zip(out_fn.args, sub_fd.params):
        slot = sub.b.alloca(arg.type, name=f"{p.name}.addr")
        sub.b.store(arg, slot)
        sub.scope[p.name] = (slot, p.type)
    # load captured-variable pointers from the context (the dptr loads)
    ctx_ld = sub.b.load(sub.scope["__ctx"][0], name="ctx")
    any_ptr_tbaa = (module.tbaa.scalar("any pointer")
                    if cg.options.strict_aliasing else None)
    for i, n in enumerate(captured):
        g = sub.b.gep(ctx_ld, [0, i], name=f"dptr.{n}",
                      dbg=emitter.dbg(stmt.line))
        p = sub.b.load(g, name=f"cap.{n}", tbaa=any_ptr_tbaa,
                       dbg=emitter.dbg(stmt.line))
        _, cty = emitter.scope[n]
        # the loaded value is the *address* of the captured variable;
        # register it as the variable's storage slot
        sub.scope[n] = (p, cty)

    # for (i = lb; i < ub; i++) BODY
    from .ast_nodes import IntLit
    loop = For(
        stmt.line,
        DeclStmt(stmt.line, CType("int"), var, Ident(stmt.line, "lb")),
        Binary(stmt.line, "<", Ident(stmt.line, var), Ident(stmt.line, "ub")),
        Assign(stmt.line, "+=", Ident(stmt.line, var), IntLit(stmt.line, 1)),
        stmt.body,
    )
    sub.emit_for(loop)
    if sub.b.block.terminator is None:
        sub.b.ret()
    for bb in list(out_fn.blocks):
        if bb.terminator is None:
            sub.b.position_at_end(bb)
            sub.b.ret()

    # call site: build the context and invoke the runtime
    b = emitter.b
    ctx_slot = emitter.create_alloca(ctx_ty, f"omp.ctx.{oid}")
    for i, n in enumerate(captured):
        slot, _ = emitter.scope[n]
        g = b.gep(ctx_slot, [0, i])
        b.store(slot, g)
    lo_v, lo_cty = emitter.eval_expr(lo_expr)
    hi_v, hi_cty = emitter.eval_expr(hi_expr)
    lo_v = emitter._convert_ir(lo_v, I64)
    hi_v = emitter._convert_ir(hi_v, I64)
    b.call("omp_parallel_for", [out_fn, ctx_slot, lo_v, hi_v], type=VOID)
