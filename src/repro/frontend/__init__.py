"""repro.frontend — the MiniC frontend (lexer, parser, IR codegen).

MiniC is the C-like source language for this reproduction's benchmarks:
C's expression/statement core with ``restrict``, strict-aliasing TBAA,
``#pragma omp parallel for`` outlining, and CUDA-style ``__global__``
kernels launched via ``launch(k, grid, block, ...)``.
"""

from .ast_nodes import CType, FunctionDef, TranslationUnit
from .codegen import (
    BUILTINS,
    CodeGen,
    CodegenError,
    FnEmitter,
    FrontendOptions,
    compile_source,
)
from .lexer import LexError, Token, tokenize
from .omp import OmpError
from .parser import ParseError, Parser, parse

__all__ = [name for name in dir() if not name.startswith("_")]
