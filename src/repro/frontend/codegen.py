"""MiniC → IR code generation.

Responsibilities beyond plain lowering, all of which feed the AA stack:

* **TBAA**: every load/store of a typed lvalue carries a ``!tbaa`` access
  tag (strict aliasing, on by default as with ``-O2``);
* **restrict**: ``restrict`` pointer parameters become ``noalias``
  arguments *and* get alias-scope metadata on accesses based on them
  (the post-inlining form clang emits);
* **OpenMP**: ``#pragma omp parallel for`` outlines the loop body into a
  ``.omp_outlined..N`` function taking a context struct of captured
  variable addresses — the indirection (load the data pointer from the
  context, then access through it) is exactly the ``dptr`` pattern whose
  queries dominate the paper's OpenMP configurations (Fig. 3);
* **CUDA**: ``__global__`` functions get ``target="nvptx"`` and the
  ``kernel`` attribute; ``launch(k, grid, block, ...)`` lowers to the
  ``cuda_launch`` runtime shim.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    AliasScope,
    ArrayType,
    BasicBlock,
    ConstantData,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    DebugLoc,
    F32,
    F64,
    Function,
    FunctionType,
    GlobalVariable,
    I1,
    I8,
    I64,
    IRBuilder,
    IntType,
    FloatType,
    Module,
    PointerType,
    ScopedAliasMD,
    StructType,
    TBAANode,
    Type,
    VOID,
    Value,
    ptr,
)
from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    Index,
    IntLit,
    Member,
    Param,
    Return,
    SizeofExpr,
    Stmt,
    StrLit,
    StructDef,
    Ternary,
    TranslationUnit,
    Unary,
    While,
)
from .parser import parse

#: builtins forwarded to the runtime; name -> (ret IR type, pure)
BUILTINS: Dict[str, Tuple[Type, bool]] = {
    "printf": (I64, False),
    "sqrt": (F64, True),
    "fabs": (F64, True),
    "exp": (F64, True),
    "log": (F64, True),
    "pow": (F64, True),
    "sin": (F64, True),
    "cos": (F64, True),
    "floor": (F64, True),
    "ceil": (F64, True),
    "fmin": (F64, True),
    "fmax": (F64, True),
    "malloc": (ptr(I8), False),
    "free": (VOID, False),
    "clock_cycles": (I64, False),
    "wtime": (F64, False),
    "abort": (VOID, False),
    "exit": (VOID, False),
    "omp_get_max_threads": (I64, False),
    "omp_get_num_threads": (I64, False),
    "cuda_thread_id": (I64, False),
    "cuda_num_threads": (I64, False),
    "cuda_device_synchronize": (VOID, False),
    "mpi_comm_rank": (I64, False),
    "mpi_comm_size": (I64, False),
    "mpi_barrier": (VOID, False),
    "mpi_allreduce_sum_f64": (F64, False),
    "mpi_allreduce_max_f64": (F64, False),
    "mpi_allreduce_min_f64": (F64, False),
}


class CodegenError(Exception):
    pass


class FrontendOptions:
    """Per-compilation frontend switches (a slice of the paper's CFLAGS)."""

    def __init__(self, strict_aliasing: bool = True,
                 restrict_scopes: bool = True,
                 debug_info: bool = True):
        self.strict_aliasing = strict_aliasing
        self.restrict_scopes = restrict_scopes
        self.debug_info = debug_info


class CodeGen:
    """Module-level code generator; one instance per translation unit."""

    def __init__(self, module: Optional[Module] = None,
                 options: Optional[FrontendOptions] = None,
                 filename: str = "<minic>"):
        self.module = module or Module(filename)
        self.options = options or FrontendOptions()
        self.filename = filename
        self._outline_count = itertools.count()
        self._tbaa_cache: Dict[str, TBAANode] = {}

    # -- entry point -----------------------------------------------------
    def generate(self, tu: TranslationUnit) -> Module:
        for sd in tu.structs:
            self._declare_struct(sd)
        for gd in tu.globals:
            self._emit_global(gd)
        # declare all functions first (forward references)
        for fd in tu.functions:
            self._declare_function(fd)
        for fd in tu.functions:
            if fd.body is not None:
                FnEmitter(self, fd).emit()
        return self.module

    # -- types -----------------------------------------------------------
    def ir_type(self, cty: CType) -> Type:
        base = {
            "void": VOID, "int": I64, "long": I64, "double": F64,
            "float": F32, "char": I8,
        }.get(cty.base)
        if base is None:
            if cty.base.startswith("struct "):
                name = cty.base[len("struct "):]
                base = self.module.struct_types.get(name)
                if base is None:
                    raise CodegenError(f"unknown struct {name}")
            else:
                raise CodegenError(f"unknown type {cty.base}")
        ty: Type = base
        for dim in reversed(cty.array_dims):
            ty = ArrayType(ty, dim)
        for _ in range(cty.pointers):
            ty = ptr(ty)
        return ty

    def _declare_struct(self, sd: StructDef) -> None:
        fields = [self.ir_type(p.type) for p in sd.fields]
        self.module.add_struct_type(sd.name, fields,
                                    [p.name for p in sd.fields])

    # -- TBAA --------------------------------------------------------------
    def tbaa_for(self, cty: CType) -> Optional[TBAANode]:
        if not self.options.strict_aliasing:
            return None
        if cty.pointers or cty.array_dims and cty.pointers:
            pass
        if cty.pointers:
            name = "any pointer"
        elif cty.base in ("int", "long"):
            name = "long"
        elif cty.base == "double":
            name = "double"
        elif cty.base == "float":
            name = "float"
        elif cty.base == "char":
            return self.module.tbaa.char
        elif cty.base.startswith("struct"):
            return None  # whole-aggregate accesses are not emitted
        else:
            return None
        node = self._tbaa_cache.get(name)
        if node is None:
            node = self.module.tbaa.scalar(name)
            self._tbaa_cache[name] = node
        return node

    def tbaa_field(self, struct_name: str, field_name: str,
                   field_cty: CType) -> Optional[TBAANode]:
        if not self.options.strict_aliasing:
            return None
        scalar = self.tbaa_for(field_cty)
        if scalar is None:
            return None
        return self.module.tbaa.struct_field(struct_name, field_name, scalar)

    # -- globals -----------------------------------------------------------
    def _emit_global(self, gd: GlobalDecl) -> None:
        ty = self.ir_type(gd.type)
        init = None
        if gd.init is not None:
            init = self._const_init(gd.init, ty)
        elif gd.init_list is not None:
            values = [self._const_value(e) for e in gd.init_list]
            if isinstance(ty, ArrayType):
                while len(values) < ty.count:
                    values.append(0)
            init = ConstantData(ty, tuple(values))
        self.module.add_global(ty, gd.name, init, is_constant=gd.type.const)

    def _const_value(self, e: Expr):
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, FloatLit):
            return e.value
        if isinstance(e, Unary) and e.op == "-":
            return -self._const_value(e.operand)
        raise CodegenError(f"unsupported constant initializer at line {e.line}")

    def _const_init(self, e: Expr, ty: Type):
        v = self._const_value(e)
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(v))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(v))
        raise CodegenError("bad scalar initializer")

    # -- functions ----------------------------------------------------------
    def _declare_function(self, fd: FunctionDef) -> None:
        if fd.name in self.module.functions:
            return
        ret = self.ir_type(fd.ret)
        params = [self.ir_type(p.type) for p in fd.params]
        fn = self.module.add_function(
            FunctionType(ret, params), fd.name,
            [p.name for p in fd.params],
            target="nvptx" if fd.is_kernel else "host")
        fn.source_file = self.filename
        if fd.is_kernel:
            fn.attrs.add("kernel")
        if fd.body is None:
            fn.is_declaration = True
        for arg, p in zip(fn.args, fd.params):
            if p.type.restrict:
                arg.attrs.add("noalias")

    def next_outline_id(self) -> int:
        return next(self._outline_count)


class _LValue:
    """Address + element info for an assignable expression."""

    __slots__ = ("addr", "cty", "tbaa", "base_param")

    def __init__(self, addr: Value, cty: CType, tbaa: Optional[TBAANode],
                 base_param: Optional[str] = None):
        self.addr = addr
        self.cty = cty
        self.tbaa = tbaa
        self.base_param = base_param  # restrict-scope attribution


class FnEmitter:
    """Emits one function body (and any outlined OpenMP regions)."""

    def __init__(self, cg: CodeGen, fd: FunctionDef,
                 fn: Optional[Function] = None,
                 outer_scopes: Optional[List[AliasScope]] = None):
        self.cg = cg
        self.module = cg.module
        self.fd = fd
        self.fn = fn or self.module.get_function(fd.name)
        self.b = IRBuilder()
        #: name -> (_LValue-producing storage info)
        self.scope: Dict[str, Tuple[Value, CType]] = {}
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []
        #: restrict scopes: param name -> AliasScope
        self.restrict_scopes: Dict[str, AliasScope] = {}

    # -- helpers -----------------------------------------------------------
    def dbg(self, line: int) -> Optional[DebugLoc]:
        if not self.cg.options.debug_info or line <= 0:
            return None
        return DebugLoc(self.cg.filename, line)

    def ir_type(self, cty: CType) -> Type:
        return self.cg.ir_type(cty)

    def create_alloca(self, ty: Type, name: str):
        """Create a stack slot in the *entry* block (clang's behaviour),
        regardless of where the builder currently is, so mem2reg sees it."""
        from ..ir import AllocaInst

        entry = self.fn.entry
        inst = AllocaInst(ty, 1, name)
        idx = 0
        while idx < len(entry.instructions) and isinstance(
                entry.instructions[idx], AllocaInst):
            idx += 1
        inst.parent = entry
        entry.instructions.insert(idx, inst)
        return inst

    def scoped_for(self, base_param: Optional[str]) -> Optional[ScopedAliasMD]:
        if not self.cg.options.restrict_scopes or not self.restrict_scopes:
            return None
        if base_param is not None and base_param in self.restrict_scopes:
            own = self.restrict_scopes[base_param]
            others = tuple(s for n, s in sorted(self.restrict_scopes.items())
                           if n != base_param)
            return ScopedAliasMD((own,), others)
        # not based on any restrict pointer: cannot touch their objects
        return ScopedAliasMD((), tuple(
            s for _, s in sorted(self.restrict_scopes.items())))

    # -- entry -------------------------------------------------------------
    def emit(self) -> Function:
        fn = self.fn
        entry = fn.add_block("entry")
        self.b.position_at_end(entry)
        for p in self.fd.params:
            if p.type.restrict:
                self.restrict_scopes[p.name] = AliasScope(p.name, fn.name)
        # spill parameters to stack slots (mem2reg re-promotes)
        for arg, p in zip(fn.args, self.fd.params):
            slot = self.b.alloca(arg.type, name=f"{p.name}.addr")
            self.b.store(arg, slot)
            self.scope[p.name] = (slot, p.type)
        self.emit_block(self.fd.body)
        # implicit return
        if self.b.block.terminator is None:
            if fn.return_type.is_void:
                self.b.ret()
            elif isinstance(fn.return_type, IntType):
                self.b.ret(ConstantInt(fn.return_type, 0))
            else:
                self.b.ret(ConstantFloat(fn.return_type, 0.0))
        # drop unterminated empty joins
        for bb in list(fn.blocks):
            if bb.terminator is None:
                self.b.position_at_end(bb)
                if fn.return_type.is_void:
                    self.b.ret()
                elif isinstance(fn.return_type, IntType):
                    self.b.ret(ConstantInt(fn.return_type, 0))
                else:
                    self.b.ret(ConstantFloat(fn.return_type, 0.0))
        return fn

    # -- statements ----------------------------------------------------------
    def emit_block(self, block: Block) -> None:
        saved = dict(self.scope)
        for stmt in block.statements:
            self.emit_stmt(stmt)
            if self.b.block.terminator is not None:
                break  # unreachable code after return/break
        self.scope = saved

    def emit_stmt(self, stmt: Stmt) -> None:
        self.b.default_dbg = self.dbg(stmt.line)
        if isinstance(stmt, Block):
            self.emit_block(stmt)
        elif isinstance(stmt, DeclStmt):
            self.emit_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self.eval_expr(stmt.expr)
        elif isinstance(stmt, If):
            self.emit_if(stmt)
        elif isinstance(stmt, While):
            self.emit_while(stmt)
        elif isinstance(stmt, For):
            if stmt.omp_parallel:
                self.emit_omp_for(stmt)
            else:
                self.emit_for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is None:
                self.b.ret()
            else:
                v, cty = self.eval_expr(stmt.value)
                v = self.convert(v, cty, self._ret_ctype())
                self.b.ret(v)
        elif isinstance(stmt, Break):
            self.b.br(self.break_targets[-1])
        elif isinstance(stmt, Continue):
            self.b.br(self.continue_targets[-1])
        else:
            raise CodegenError(f"unhandled statement {stmt}")

    def _ret_ctype(self) -> CType:
        return self.fd.ret

    def emit_decl(self, stmt: DeclStmt) -> None:
        ty = self.ir_type(stmt.type)
        slot = self.create_alloca(ty, stmt.name)
        self.scope[stmt.name] = (slot, stmt.type)
        if stmt.init is not None:
            v, cty = self.eval_expr(stmt.init)
            v = self.convert(v, cty, stmt.type)
            st = self.b.store(v, slot, tbaa=self.cg.tbaa_for(stmt.type))
            st.scoped = self.scoped_for(None)
        elif stmt.init_list is not None:
            if not isinstance(ty, ArrayType):
                raise CodegenError("initializer list on non-array")
            elem_cty = CType(stmt.type.base, stmt.type.pointers)
            for i, e in enumerate(stmt.init_list):
                v, cty = self.eval_expr(e)
                v = self.convert(v, cty, elem_cty)
                g = self.b.gep(slot, [0, i])
                self.b.store(v, g, tbaa=self.cg.tbaa_for(elem_cty))
            # zero the rest
            for i in range(len(stmt.init_list), ty.count):
                g = self.b.gep(slot, [0, i])
                zero = (ConstantInt(ty.element, 0)
                        if isinstance(ty.element, IntType)
                        else ConstantFloat(ty.element, 0.0))
                self.b.store(zero, g, tbaa=self.cg.tbaa_for(elem_cty))

    def emit_if(self, stmt: If) -> None:
        cond = self.eval_condition(stmt.cond)
        then_bb = self.fn.add_block("if.then", after=self.b.block)
        else_bb = self.fn.add_block("if.else", after=then_bb) \
            if stmt.other is not None else None
        join = self.fn.add_block(
            "if.end", after=else_bb if else_bb is not None else then_bb)
        self.b.cond_br(cond, then_bb,
                       else_bb if else_bb is not None else join)
        self.b.position_at_end(then_bb)
        self.emit_stmt(stmt.then)
        if self.b.block.terminator is None:
            self.b.br(join)
        if else_bb is not None:
            self.b.position_at_end(else_bb)
            self.emit_stmt(stmt.other)
            if self.b.block.terminator is None:
                self.b.br(join)
        self.b.position_at_end(join)

    def emit_while(self, stmt: While) -> None:
        header = self.fn.add_block("while.cond", after=self.b.block)
        body = self.fn.add_block("while.body", after=header)
        exit_bb = self.fn.add_block("while.end", after=body)
        self.b.br(header)
        self.b.position_at_end(header)
        cond = self.eval_condition(stmt.cond)
        self.b.cond_br(cond, body, exit_bb)
        self.b.position_at_end(body)
        self.break_targets.append(exit_bb)
        self.continue_targets.append(header)
        self.emit_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.b.block.terminator is None:
            self.b.br(header)
        self.b.position_at_end(exit_bb)

    def emit_for(self, stmt: For) -> None:
        saved = dict(self.scope)
        if stmt.init is not None:
            self.emit_stmt(stmt.init)
        header = self.fn.add_block("for.cond", after=self.b.block)
        body = self.fn.add_block("for.body", after=header)
        latch = self.fn.add_block("for.inc", after=body)
        exit_bb = self.fn.add_block("for.end", after=latch)
        self.b.br(header)
        self.b.position_at_end(header)
        if stmt.cond is not None:
            cond = self.eval_condition(stmt.cond)
            self.b.cond_br(cond, body, exit_bb)
        else:
            self.b.br(body)
        self.b.position_at_end(body)
        self.break_targets.append(exit_bb)
        self.continue_targets.append(latch)
        self.emit_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.b.block.terminator is None:
            self.b.br(latch)
        self.b.position_at_end(latch)
        if stmt.step is not None:
            self.eval_expr(stmt.step)
        self.b.br(header)
        self.b.position_at_end(exit_bb)
        self.scope = saved

    # -- OpenMP outlining --------------------------------------------------
    def emit_omp_for(self, stmt: For) -> None:
        from .omp import outline_parallel_for
        outline_parallel_for(self, stmt)

    # -- conditions & conversions -----------------------------------------
    def eval_condition(self, e: Expr) -> Value:
        from ..ir import CastInst
        v, cty = self.eval_expr(e)
        if v.type == I1:
            return v
        if isinstance(v, CastInst) and v.op == "zext" and v.value.type == I1:
            return v.value  # comparison result widened for value context
        if isinstance(v.type, IntType):
            return self.b.icmp("ne", v, ConstantInt(v.type, 0))
        if isinstance(v.type, FloatType):
            return self.b.fcmp("one", v, ConstantFloat(v.type, 0.0))
        if v.type.is_pointer:
            return self.b.icmp("ne", self.b.cast("ptrtoint", v, I64),
                               self.b.i64(0))
        raise CodegenError(f"bad condition type {v.type}")

    def convert(self, v: Value, src: CType, dst: CType) -> Value:
        st, dt = self.ir_type(src) if src else v.type, self.ir_type(dst)
        return self._convert_ir(v, dt)

    def _convert_ir(self, v: Value, dt: Type) -> Value:
        st = v.type
        if st == dt:
            return v
        if st == I1 and isinstance(dt, IntType):
            return self.b.cast("zext", v, dt)
        if isinstance(st, IntType) and isinstance(dt, IntType):
            if dt.bits > st.bits:
                return self.b.cast("sext", v, dt)
            return self.b.cast("trunc", v, dt)
        if isinstance(st, IntType) and isinstance(dt, FloatType):
            if st == I1:
                v = self.b.cast("zext", v, I64)
            return self.b.cast("sitofp", v, dt)
        if isinstance(st, FloatType) and isinstance(dt, IntType):
            return self.b.cast("fptosi", v, dt)
        if isinstance(st, FloatType) and isinstance(dt, FloatType):
            return self.b.cast("fpext" if dt.bits > st.bits else "fptrunc",
                               v, dt)
        if st.is_pointer and dt.is_pointer:
            return self.b.cast("bitcast", v, dt)
        if st.is_pointer and isinstance(dt, IntType):
            return self.b.cast("ptrtoint", v, dt)
        if isinstance(st, IntType) and dt.is_pointer:
            return self.b.cast("inttoptr", v, dt)
        raise CodegenError(f"cannot convert {st} to {dt}")

    # -- lvalues -----------------------------------------------------------
    def eval_lvalue(self, e: Expr) -> _LValue:
        if isinstance(e, Ident):
            entry = self.scope.get(e.name)
            if entry is not None:
                slot, cty = entry
                base = e.name if cty.pointers == 0 else e.name
                return _LValue(slot, cty, self.cg.tbaa_for(cty), e.name)
            gv = self.module.globals.get(e.name)
            if gv is not None:
                gcty = self._global_ctype(e.name)
                return _LValue(gv, gcty, self.cg.tbaa_for(gcty), None)
            raise CodegenError(f"line {e.line}: unknown variable {e.name!r}")
        if isinstance(e, Index):
            return self._index_lvalue(e)
        if isinstance(e, Member):
            return self._member_lvalue(e)
        if isinstance(e, Unary) and e.op == "*":
            v, cty = self.eval_expr(e.operand)
            if cty.pointers == 0:
                raise CodegenError(f"line {e.line}: dereference of non-pointer")
            inner = CType(cty.base, cty.pointers - 1, cty.array_dims)
            return _LValue(v, inner, self.cg.tbaa_for(inner),
                           self._base_param_of(e.operand))
        raise CodegenError(f"line {e.line}: not an lvalue: {e}")

    def _global_ctype(self, name: str) -> CType:
        gv = self.module.globals[name]
        return _ctype_of_ir(gv.value_type)

    def _base_param_of(self, e: Expr) -> Optional[str]:
        """Which restrict parameter (if any) an address is based on."""
        if isinstance(e, Ident):
            return e.name if e.name in self.restrict_scopes else None
        if isinstance(e, Index):
            return self._base_param_of(e.base)
        if isinstance(e, Unary) and e.op in ("*", "&"):
            return self._base_param_of(e.operand)
        if isinstance(e, Binary) and e.op in ("+", "-"):
            return (self._base_param_of(e.lhs)
                    or self._base_param_of(e.rhs))
        if isinstance(e, Member):
            return self._base_param_of(e.base)
        if isinstance(e, CastExpr):
            return self._base_param_of(e.value)
        return None

    def _index_lvalue(self, e: Index) -> _LValue:
        base_lv_expr = e.base
        idx, icty = self.eval_expr(e.index)
        idx = self._convert_ir(idx, I64)
        # array variable (local/global) or pointer value?
        if isinstance(base_lv_expr, (Ident, Member, Index)):
            lv = self.eval_lvalue(base_lv_expr)
            if lv.cty.array_dims and lv.cty.pointers == 0:
                inner = CType(lv.cty.base, 0, lv.cty.array_dims[1:])
                g = self.b.gep(lv.addr, [0, idx], dbg=self.dbg(e.line))
                if inner.array_dims:
                    tb = None
                else:
                    tb = self.cg.tbaa_for(inner)
                return _LValue(g, inner, tb, lv.base_param)
        v, cty = self.eval_expr(base_lv_expr)
        if cty.pointers == 0:
            raise CodegenError(f"line {e.line}: indexing non-pointer")
        inner = CType(cty.base, cty.pointers - 1, cty.array_dims)
        g = self.b.gep(v, [idx], dbg=self.dbg(e.line))
        return _LValue(g, inner, self.cg.tbaa_for(inner),
                       self._base_param_of(base_lv_expr))

    def _member_lvalue(self, e: Member) -> _LValue:
        if e.arrow:
            base_v, bcty = self.eval_expr(e.base)
            if bcty.pointers != 1 or not bcty.base.startswith("struct "):
                raise CodegenError(f"line {e.line}: -> on non-struct-pointer")
            struct_name = bcty.base[len("struct "):]
            addr = base_v
        else:
            lv = self.eval_lvalue(e.base)
            if not lv.cty.base.startswith("struct ") or lv.cty.pointers:
                raise CodegenError(f"line {e.line}: . on non-struct")
            struct_name = lv.cty.base[len("struct "):]
            addr = lv.addr
        st = self.module.struct_types[struct_name]
        fi = st.field_index(e.name)
        fty_ir = st.fields[fi]
        fcty = _ctype_of_ir(fty_ir)
        g = self.b.gep(addr, [0, ConstantInt(I64, fi)], dbg=self.dbg(e.line))
        tb = self.cg.tbaa_field(struct_name, e.name, fcty)
        return _LValue(g, fcty, tb, self._base_param_of(e.base))

    # -- expressions ---------------------------------------------------------
    def eval_expr(self, e: Expr) -> Tuple[Value, CType]:
        if isinstance(e, IntLit):
            return ConstantInt(I64, e.value), CType("int")
        if isinstance(e, FloatLit):
            return ConstantFloat(F64, e.value), CType("double")
        if isinstance(e, StrLit):
            gv = self.module.add_string(e.value)
            return gv, CType("char", 1)
        if isinstance(e, Ident):
            return self._load_ident(e)
        if isinstance(e, (Index, Member)):
            lv = self.eval_lvalue(e)
            return self._load_lvalue(lv, e.line)
        if isinstance(e, Unary):
            return self._eval_unary(e)
        if isinstance(e, Binary):
            return self._eval_binary(e)
        if isinstance(e, Assign):
            return self._eval_assign(e)
        if isinstance(e, Ternary):
            return self._eval_ternary(e)
        if isinstance(e, Call):
            return self._eval_call(e)
        if isinstance(e, CastExpr):
            v, cty = self.eval_expr(e.value)
            dt = self.ir_type(e.type)
            return self._convert_ir(v, dt), e.type
        if isinstance(e, SizeofExpr):
            return ConstantInt(I64, self.ir_type(e.type).size()), CType("int")
        raise CodegenError(f"unhandled expression {e}")

    def _load_ident(self, e: Ident) -> Tuple[Value, CType]:
        entry = self.scope.get(e.name)
        if entry is not None:
            slot, cty = entry
            if cty.array_dims and cty.pointers == 0:
                # arrays decay to a pointer to their first element
                g = self.b.gep(slot, [0, 0], dbg=self.dbg(e.line))
                decayed = CType(cty.base, 1, cty.array_dims[1:])
                return g, decayed
            lv = _LValue(slot, cty, self.cg.tbaa_for(cty), e.name)
            return self._load_lvalue(lv, e.line)
        gv = self.module.globals.get(e.name)
        if gv is not None:
            cty = self._global_ctype(e.name)
            if cty.array_dims and cty.pointers == 0:
                g = self.b.gep(gv, [0, 0], dbg=self.dbg(e.line))
                return g, CType(cty.base, 1, cty.array_dims[1:])
            lv = _LValue(gv, cty, self.cg.tbaa_for(cty), None)
            return self._load_lvalue(lv, e.line)
        fn = self.module.functions.get(e.name)
        if fn is not None:
            return fn, CType("void", 1)
        raise CodegenError(f"line {e.line}: unknown identifier {e.name!r}")

    def _load_lvalue(self, lv: _LValue, line: int) -> Tuple[Value, CType]:
        if lv.cty.base.startswith("struct ") and lv.cty.pointers == 0 \
                and not lv.cty.array_dims:
            # aggregates load as their address (for member/ptr passing)
            return lv.addr, CType(lv.cty.base, 1)
        if lv.cty.array_dims and lv.cty.pointers == 0:
            g = self.b.gep(lv.addr, [0, 0], dbg=self.dbg(line))
            return g, CType(lv.cty.base, 1, lv.cty.array_dims[1:])
        ld = self.b.load(lv.addr, tbaa=lv.tbaa, dbg=self.dbg(line))
        ld.scoped = self.scoped_for(lv.base_param)
        return ld, lv.cty

    def _store_lvalue(self, lv: _LValue, v: Value, line: int) -> None:
        st = self.b.store(v, lv.addr, tbaa=lv.tbaa, dbg=self.dbg(line))
        st.scoped = self.scoped_for(lv.base_param)

    def _eval_unary(self, e: Unary) -> Tuple[Value, CType]:
        if e.op == "&":
            lv = self.eval_lvalue(e.operand)
            return lv.addr, CType(lv.cty.base, lv.cty.pointers + 1,
                                  lv.cty.array_dims)
        if e.op == "*":
            lv = self.eval_lvalue(e)
            return self._load_lvalue(lv, e.line)
        if e.op in ("++", "--", "p++", "p--"):
            lv = self.eval_lvalue(e.operand)
            old, cty = self._load_lvalue(lv, e.line)
            one = (ConstantFloat(old.type, 1.0)
                   if isinstance(old.type, FloatType)
                   else ConstantInt(old.type if isinstance(old.type, IntType)
                                    else I64, 1))
            if cty.pointers:
                new = self.b.gep(old, [self.b.i64(
                    1 if "+" in e.op else -1)], dbg=self.dbg(e.line))
            else:
                op = ("fadd" if isinstance(old.type, FloatType) else "add") \
                    if "+" in e.op else (
                        "fsub" if isinstance(old.type, FloatType) else "sub")
                new = self.b.binop(op, old, one)
            self._store_lvalue(lv, new, e.line)
            return (old if e.op.startswith("p") else new), cty
        v, cty = self.eval_expr(e.operand)
        if e.op == "-":
            if isinstance(v.type, FloatType):
                return self.b.fsub(ConstantFloat(v.type, 0.0), v), cty
            return self.b.sub(ConstantInt(v.type, 0), v), cty
        if e.op == "!":
            c = self.eval_condition(e.operand)
            inv = self.b.binop("xor", c, ConstantInt(I1, 1))
            return self.b.cast("zext", inv, I64), CType("int")
        if e.op == "~":
            return self.b.binop("xor", v, ConstantInt(v.type, -1)), cty
        raise CodegenError(f"unhandled unary {e.op}")

    def _eval_binary(self, e: Binary) -> Tuple[Value, CType]:
        if e.op in ("&&", "||"):
            return self._short_circuit(e)
        lv, lcty = self.eval_expr(e.lhs)
        rv, rcty = self.eval_expr(e.rhs)
        # pointer arithmetic
        if lcty.pointers and e.op in ("+", "-") and not rcty.pointers:
            rv = self._convert_ir(rv, I64)
            if e.op == "-":
                rv = self.b.sub(self.b.i64(0), rv)
            g = self.b.gep(lv, [rv], dbg=self.dbg(e.line))
            return g, lcty
        if lcty.pointers and rcty.pointers and e.op == "-":
            li = self.b.cast("ptrtoint", lv, I64)
            ri = self.b.cast("ptrtoint", rv, I64)
            diff = self.b.sub(li, ri)
            esz = self.ir_type(CType(lcty.base, lcty.pointers - 1)).size()
            return self.b.sdiv(diff, self.b.i64(esz)), CType("int")
        if lcty.pointers or rcty.pointers:
            if e.op in ("==", "!=", "<", "<=", ">", ">="):
                li = self._convert_ir(lv, I64)
                ri = self._convert_ir(rv, I64)
                pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                        ">": "ugt", ">=": "uge"}[e.op]
                c = self.b.icmp(pred, li, ri)
                return self.b.cast("zext", c, I64), CType("int")
        lv, rv, fty = self._usual_conversions(lv, rv)
        is_float = isinstance(lv.type, FloatType)
        if e.op in ("+", "-", "*", "/", "%"):
            op = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                  "%": "srem"}[e.op]
            if is_float:
                op = {"add": "fadd", "sub": "fsub", "mul": "fmul",
                      "sdiv": "fdiv", "srem": "frem"}[op]
            return self.b.binop(op, lv, rv, ), fty
        if e.op in ("&", "|", "^", "<<", ">>"):
            op = {"&": "and", "|": "or", "^": "xor", "<<": "shl",
                  ">>": "ashr"}[e.op]
            return self.b.binop(op, lv, rv), fty
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            if is_float:
                pred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                        ">": "ogt", ">=": "oge"}[e.op]
                c = self.b.fcmp(pred, lv, rv)
            else:
                pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                        ">": "sgt", ">=": "sge"}[e.op]
                c = self.b.icmp(pred, lv, rv)
            return self.b.cast("zext", c, I64), CType("int")
        raise CodegenError(f"unhandled binary {e.op}")

    def _usual_conversions(self, lv: Value, rv: Value
                           ) -> Tuple[Value, Value, CType]:
        lt, rt = lv.type, rv.type
        if isinstance(lt, FloatType) or isinstance(rt, FloatType):
            target = F64 if (getattr(lt, "bits", 0) == 64
                             or getattr(rt, "bits", 0) == 64
                             or isinstance(lt, IntType)
                             or isinstance(rt, IntType)) else F32
            if lt == F32 and rt == F32:
                target = F32
            lv = self._convert_ir(lv, target)
            rv = self._convert_ir(rv, target)
            return lv, rv, CType("double" if target == F64 else "float")
        lv = self._convert_ir(lv, I64)
        rv = self._convert_ir(rv, I64)
        return lv, rv, CType("int")

    def _short_circuit(self, e: Binary) -> Tuple[Value, CType]:
        lhs = self.eval_condition(e.lhs)
        rhs_bb = self.fn.add_block("sc.rhs", after=self.b.block)
        join = self.fn.add_block("sc.end", after=rhs_bb)
        from_bb = self.b.block
        if e.op == "&&":
            self.b.cond_br(lhs, rhs_bb, join)
        else:
            self.b.cond_br(lhs, join, rhs_bb)
        self.b.position_at_end(rhs_bb)
        rhs = self.eval_condition(e.rhs)
        rhs_exit = self.b.block
        self.b.br(join)
        self.b.position_at_end(join)
        phi = self.b.phi(I1)
        phi.add_incoming(ConstantInt(I1, 0 if e.op == "&&" else 1), from_bb)
        phi.add_incoming(rhs, rhs_exit)
        return self.b.cast("zext", phi, I64), CType("int")

    def _eval_ternary(self, e: Ternary) -> Tuple[Value, CType]:
        cond = self.eval_condition(e.cond)
        then_bb = self.fn.add_block("tern.then", after=self.b.block)
        else_bb = self.fn.add_block("tern.else", after=then_bb)
        join = self.fn.add_block("tern.end", after=else_bb)
        self.b.cond_br(cond, then_bb, else_bb)
        self.b.position_at_end(then_bb)
        tv, tcty = self.eval_expr(e.then)
        t_exit = self.b.block
        self.b.br(join)
        self.b.position_at_end(else_bb)
        fv, fcty = self.eval_expr(e.other)
        # unify types
        if tv.type != fv.type:
            fv = self._convert_ir(fv, tv.type)
        f_exit = self.b.block
        self.b.br(join)
        self.b.position_at_end(join)
        phi = self.b.phi(tv.type)
        phi.add_incoming(tv, t_exit)
        phi.add_incoming(fv, f_exit)
        return phi, tcty

    def _eval_assign(self, e: Assign) -> Tuple[Value, CType]:
        lv = self.eval_lvalue(e.target)
        if e.op == "=":
            v, cty = self.eval_expr(e.value)
            v = self.convert(v, cty, lv.cty)
            self._store_lvalue(lv, v, e.line)
            return v, lv.cty
        # compound assignment: load, op, store
        old, ocy = self._load_lvalue(lv, e.line)
        rv, rcty = self.eval_expr(e.value)
        binop = e.op[:-1]
        fake = Binary(e.line, binop, None, None)
        l2, r2, fty = self._usual_conversions(old, rv)
        is_float = isinstance(l2.type, FloatType)
        opmap = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                 "%": "srem", "&": "and", "|": "or", "^": "xor",
                 "<<": "shl", ">>": "ashr"}
        op = opmap[binop]
        if is_float:
            op = {"add": "fadd", "sub": "fsub", "mul": "fmul",
                  "sdiv": "fdiv", "srem": "frem"}[op]
        res = self.b.binop(op, l2, r2)
        res = self.convert(res, fty, lv.cty)
        self._store_lvalue(lv, res, e.line)
        return res, lv.cty

    # -- calls --------------------------------------------------------------
    def _eval_call(self, e: Call) -> Tuple[Value, CType]:
        name = e.callee
        if name == "launch":
            return self._eval_launch(e)
        fn = self.module.functions.get(name)
        if fn is not None and not (fn.is_declaration
                                   and name in BUILTINS):
            if len(e.args) != len(fn.ftype.params):
                raise CodegenError(
                    f"line {e.line}: {name}() expects "
                    f"{len(fn.ftype.params)} args, got {len(e.args)}")
            args = []
            for a, pty in zip(e.args, fn.ftype.params):
                v, cty = self.eval_expr(a)
                args.append(self._convert_ir(v, pty))
            call = self.b.call(fn, args)
            rcty = _ctype_of_ir(fn.return_type) if not \
                fn.return_type.is_void else CType("void")
            return call, rcty
        if name in BUILTINS:
            ret, _pure = BUILTINS[name]
            args = []
            for a in e.args:
                v, cty = self.eval_expr(a)
                if v.type == F32:
                    v = self.b.cast("fpext", v, F64)
                elif isinstance(v.type, IntType) and v.type.bits < 64:
                    v = self.b.cast("sext", v, I64)
                args.append(v)
            call = self.b.call(name, args, type=ret)
            return call, _ctype_of_ir(ret) if not ret.is_void \
                else CType("void")
        raise CodegenError(f"line {e.line}: call to unknown function {name!r}")

    def _eval_launch(self, e: Call) -> Tuple[Value, CType]:
        if len(e.args) < 3 or not isinstance(e.args[0], Ident):
            raise CodegenError(f"line {e.line}: launch(kernel, grid, block, ...)")
        kern = self.module.functions.get(e.args[0].name)
        if kern is None or "kernel" not in kern.attrs:
            raise CodegenError(
                f"line {e.line}: launch target {e.args[0].name!r} "
                "is not a __global__ kernel")
        grid, _ = self.eval_expr(e.args[1])
        block, _ = self.eval_expr(e.args[2])
        args = [kern, self._convert_ir(grid, I64),
                self._convert_ir(block, I64)]
        for a, pty in zip(e.args[3:], kern.ftype.params):
            v, _ = self.eval_expr(a)
            args.append(self._convert_ir(v, pty))
        call = self.b.call("cuda_launch", args, type=VOID)
        return call, CType("void")


def _ctype_of_ir(ty: Type) -> CType:
    """Best-effort reverse mapping for globals and return values."""
    ptrs = 0
    dims: List[int] = []
    while isinstance(ty, PointerType):
        ptrs += 1
        ty = ty.pointee
    while isinstance(ty, ArrayType):
        dims.append(ty.count)
        ty = ty.element
    if isinstance(ty, StructType):
        base = f"struct {ty.name}"
    elif ty == F64:
        base = "double"
    elif ty == F32:
        base = "float"
    elif ty == I8:
        base = "char"
    elif isinstance(ty, IntType):
        base = "int"
    elif ty.is_void:
        base = "void"
    else:
        base = "int"
    return CType(base, ptrs, tuple(dims))


def compile_source(source: str, filename: str = "<minic>",
                   module: Optional[Module] = None,
                   options: Optional[FrontendOptions] = None) -> Module:
    """Front-end entry: MiniC text → (unoptimized) IR module."""
    tu = parse(source, filename, unit_name=filename)
    cg = CodeGen(module, options, filename)
    return cg.generate(tu)
