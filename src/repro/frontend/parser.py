"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    Index,
    IntLit,
    Member,
    Param,
    Return,
    SizeofExpr,
    Stmt,
    StrLit,
    StructDef,
    Ternary,
    TranslationUnit,
    Unary,
    While,
)
from .lexer import Token, tokenize

BASE_TYPES = {"void", "int", "long", "double", "float", "char"}

_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class ParseError(Exception):
    pass


class Parser:
    def __init__(self, source: str, filename: str = "<minic>"):
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.filename = filename
        self.struct_names = set()

    # -- token plumbing ----------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, k: int = 1) -> Token:
        return self.tokens[min(self.pos + k, len(self.tokens) - 1)]

    def advance(self) -> Token:
        t = self.tok
        self.pos += 1
        return t

    def err(self, msg: str) -> ParseError:
        t = self.tok
        return ParseError(f"{self.filename}:{t.line}: {msg} (got {t.text!r})")

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        t = self.tok
        if t.kind != kind or (text is not None and t.text != text):
            raise self.err(f"expected {text or kind}")
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        t = self.tok
        if t.kind == kind and (text is None or t.text == text):
            return self.advance()
        return None

    # -- types ------------------------------------------------------------
    def at_type(self) -> bool:
        t = self.tok
        if t.kind == "kw" and (t.text in BASE_TYPES or t.text == "struct"
                               or t.text in ("const", "static", "extern")):
            return True
        return False

    def parse_type(self) -> CType:
        while self.accept("kw", "const") or self.accept("kw", "static") \
                or self.accept("kw", "extern"):
            pass
        t = self.tok
        if t.kind != "kw":
            raise self.err("expected type")
        if t.text == "struct":
            self.advance()
            name = self.expect("id").text
            base = f"struct {name}"
        elif t.text in BASE_TYPES:
            base = self.advance().text
            if base == "long" and self.tok.kind == "kw" \
                    and self.tok.text in ("long", "int"):
                self.advance()  # long long / long int
        else:
            raise self.err("expected type")
        ty = CType(base)
        while True:
            if self.accept("op", "*"):
                ty = CType(ty.base, ty.pointers + 1, ty.array_dims)
            elif self.accept("kw", "restrict"):
                ty.restrict = True
            elif self.accept("kw", "const"):
                ty.const = True
            else:
                break
        return ty

    # -- top level -----------------------------------------------------------
    def parse(self, unit_name: str = "unit") -> TranslationUnit:
        tu = TranslationUnit(unit_name)
        while self.tok.kind != "eof":
            if self.tok.kind == "pragma":
                self.advance()  # stray pragma at file scope: ignore
                continue
            if self.tok.kind == "kw" and self.tok.text == "struct" \
                    and self.peek(2).text == "{":
                tu.structs.append(self.parse_struct())
                continue
            is_kernel = bool(self.accept("kw", "__global__"))
            ty = self.parse_type()
            name = self.expect("id").text
            if self.tok.text == "(":
                tu.functions.append(self.parse_function(ty, name, is_kernel))
            else:
                tu.globals.append(self.parse_global(ty, name))
        return tu

    def parse_struct(self) -> StructDef:
        line = self.tok.line
        self.expect("kw", "struct")
        name = self.expect("id").text
        self.struct_names.add(name)
        self.expect("op", "{")
        fields: List[Param] = []
        while not self.accept("op", "}"):
            fty = self.parse_type()
            fname = self.expect("id").text
            dims = []
            while self.accept("op", "["):
                dims.append(int(self.expect("num").text, 0))
                self.expect("op", "]")
            fty = CType(fty.base, fty.pointers, tuple(dims))
            fields.append(Param(fty, fname))
            self.expect("op", ";")
        self.expect("op", ";")
        return StructDef(name, fields, line)

    def parse_global(self, ty: CType, name: str) -> GlobalDecl:
        line = self.tok.line
        dims = []
        while self.accept("op", "["):
            dims.append(int(self.expect("num").text, 0))
            self.expect("op", "]")
        ty = CType(ty.base, ty.pointers, tuple(dims), ty.restrict, ty.const)
        init = None
        init_list = None
        if self.accept("op", "="):
            if self.accept("op", "{"):
                init_list = []
                while not self.accept("op", "}"):
                    init_list.append(self.parse_assignment())
                    self.accept("op", ",")
            else:
                init = self.parse_assignment()
        self.expect("op", ";")
        return GlobalDecl(ty, name, init, init_list, line)

    def parse_function(self, ret: CType, name: str,
                       is_kernel: bool) -> FunctionDef:
        line = self.tok.line
        self.expect("op", "(")
        params: List[Param] = []
        if not self.accept("op", ")"):
            while True:
                if self.tok.kind == "kw" and self.tok.text == "void" \
                        and self.peek().text == ")":
                    self.advance()
                    break
                pty = self.parse_type()
                pname = self.expect("id").text
                dims = []
                while self.accept("op", "["):
                    # array parameters decay to pointers
                    if self.tok.kind == "num":
                        self.advance()
                    self.expect("op", "]")
                    dims.append(0)
                if dims:
                    pty = CType(pty.base, pty.pointers + len(dims), (),
                                pty.restrict)
                params.append(Param(pty, pname))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        if self.accept("op", ";"):
            return FunctionDef(ret, name, params, None, is_kernel, line)
        body = self.parse_block()
        return FunctionDef(ret, name, params, body, is_kernel, line)

    # -- statements -----------------------------------------------------------
    def parse_block(self) -> Block:
        line = self.tok.line
        self.expect("op", "{")
        stmts: List[Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return Block(line, stmts)

    def parse_statement(self) -> Stmt:
        t = self.tok
        if t.kind == "pragma":
            self.advance()
            is_omp_for = "omp" in t.text and "for" in t.text \
                and "parallel" in t.text
            stmt = self.parse_statement()
            if is_omp_for and isinstance(stmt, For):
                stmt.omp_parallel = True
            return stmt
        if t.kind == "op" and t.text == "{":
            return self.parse_block()
        if t.kind == "kw":
            if t.text == "if":
                return self.parse_if()
            if t.text == "while":
                return self.parse_while()
            if t.text == "do":
                return self.parse_do_while()
            if t.text == "for":
                return self.parse_for()
            if t.text == "return":
                self.advance()
                value = None
                if self.tok.text != ";":
                    value = self.parse_expr()
                self.expect("op", ";")
                return Return(t.line, value)
            if t.text == "break":
                self.advance()
                self.expect("op", ";")
                return Break(t.line)
            if t.text == "continue":
                self.advance()
                self.expect("op", ";")
                return Continue(t.line)
            if t.text in BASE_TYPES or t.text == "struct" \
                    or t.text in ("const", "static"):
                return self.parse_decl()
        expr = self.parse_expr()
        self.expect("op", ";")
        return ExprStmt(t.line, expr)

    def parse_decl(self) -> Stmt:
        line = self.tok.line
        ty = self.parse_type()
        name = self.expect("id").text
        dims = []
        while self.accept("op", "["):
            dims.append(int(self.expect("num").text, 0))
            self.expect("op", "]")
        ty = CType(ty.base, ty.pointers, tuple(dims), ty.restrict, ty.const)
        init = None
        init_list = None
        if self.accept("op", "="):
            if self.accept("op", "{"):
                init_list = []
                while not self.accept("op", "}"):
                    init_list.append(self.parse_assignment())
                    self.accept("op", ",")
            else:
                init = self.parse_assignment()
        self.expect("op", ";")
        return DeclStmt(line, ty, name, init, init_list)

    def parse_if(self) -> If:
        line = self.tok.line
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_statement()
        other = None
        if self.accept("kw", "else"):
            other = self.parse_statement()
        return If(line, cond, then, other)

    def parse_while(self) -> While:
        line = self.tok.line
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_statement()
        return While(line, cond, body)

    def parse_do_while(self) -> Stmt:
        line = self.tok.line
        self.expect("kw", "do")
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        # desugar: body; while (cond) body
        return Block(line, [body, While(line, cond, body)])

    def parse_for(self) -> For:
        line = self.tok.line
        self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[Stmt] = None
        if not self.accept("op", ";"):
            if self.at_type():
                init = self.parse_decl()
            else:
                init = ExprStmt(line, self.parse_expr())
                self.expect("op", ";")
        cond = None
        if self.tok.text != ";":
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if self.tok.text != ")":
            step = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_statement()
        return For(line, init, cond, step, body)

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        e = self.parse_assignment()
        while self.accept("op", ","):
            e = self.parse_assignment()  # comma: keep last (effects kept)
        return e

    def parse_assignment(self) -> Expr:
        lhs = self.parse_ternary()
        t = self.tok
        if t.kind == "op" and t.text in ("=", "+=", "-=", "*=", "/=", "%=",
                                         "&=", "|=", "^=", "<<=", ">>="):
            self.advance()
            rhs = self.parse_assignment()
            return Assign(t.line, t.text, lhs, rhs)
        return lhs

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_assignment()
            self.expect("op", ":")
            other = self.parse_assignment()
            return Ternary(cond.line, cond, then, other)
        return cond

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.tok.kind == "op" and self.tok.text in ops:
            t = self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = Binary(t.line, t.text, lhs, rhs)
        return lhs

    def parse_unary(self) -> Expr:
        t = self.tok
        if t.kind == "op" and t.text in ("-", "!", "~", "&", "*"):
            self.advance()
            return Unary(t.line, t.text, self.parse_unary())
        if t.kind == "op" and t.text in ("++", "--"):
            self.advance()
            return Unary(t.line, t.text, self.parse_unary())
        if t.kind == "op" and t.text == "(" and self._at_cast():
            self.advance()
            ty = self.parse_type()
            self.expect("op", ")")
            return CastExpr(t.line, ty, self.parse_unary())
        if t.kind == "kw" and t.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            ty = self.parse_type()
            self.expect("op", ")")
            return SizeofExpr(t.line, ty)
        return self.parse_postfix()

    def _at_cast(self) -> bool:
        nxt = self.peek()
        return nxt.kind == "kw" and (nxt.text in BASE_TYPES
                                     or nxt.text == "struct")

    def parse_postfix(self) -> Expr:
        e = self.parse_primary()
        while True:
            t = self.tok
            if t.kind == "op" and t.text == "[":
                self.advance()
                idx = self.parse_expr()
                self.expect("op", "]")
                e = Index(t.line, e, idx)
            elif t.kind == "op" and t.text == ".":
                self.advance()
                name = self.expect("id").text
                e = Member(t.line, e, name, False)
            elif t.kind == "op" and t.text == "->":
                self.advance()
                name = self.expect("id").text
                e = Member(t.line, e, name, True)
            elif t.kind == "op" and t.text in ("++", "--"):
                self.advance()
                e = Unary(t.line, "p" + t.text, e)
            else:
                return e

    def parse_primary(self) -> Expr:
        t = self.tok
        if t.kind == "num":
            self.advance()
            return IntLit(t.line, int(t.text, 0))
        if t.kind == "fnum":
            self.advance()
            return FloatLit(t.line, float(t.text))
        if t.kind == "str":
            self.advance()
            return StrLit(t.line, t.text)
        if t.kind == "id":
            self.advance()
            if self.tok.kind == "op" and self.tok.text == "(":
                self.advance()
                args: List[Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return Call(t.line, t.text, args)
            return Ident(t.line, t.text)
        if t.kind == "op" and t.text == "(":
            self.advance()
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        raise self.err("expected expression")


def parse(source: str, filename: str = "<minic>",
          unit_name: str = "unit") -> TranslationUnit:
    return Parser(source, filename).parse(unit_name)
