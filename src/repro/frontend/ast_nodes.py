"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- types (syntactic) ---------------------------------------------------------

@dataclass
class CType:
    """A MiniC type expression: base name + pointer depth + array dims."""

    base: str                       # "int" | "double" | ... | "struct X"
    pointers: int = 0
    array_dims: Tuple[int, ...] = ()
    restrict: bool = False
    const: bool = False

    def pointer_to(self) -> "CType":
        return CType(self.base, self.pointers + 1, self.array_dims)

    def __str__(self) -> str:
        s = self.base + "*" * self.pointers
        for d in self.array_dims:
            s += f"[{d}]"
        return s


# -- expressions ------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""                    # "-" "!" "~" "&" "*" "++" "--" "p++" "p--"
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="                  # "=", "+=", ...
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""
    arrow: bool = False


@dataclass
class CastExpr(Expr):
    type: Optional[CType] = None
    value: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    type: Optional[CType] = None


# -- statements -----------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class DeclStmt(Stmt):
    type: Optional[CType] = None
    name: str = ""
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None
    #: set by a preceding "#pragma omp parallel for"
    omp_parallel: bool = False


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level -----------------------------------------------------------------

@dataclass
class Param:
    type: CType
    name: str


@dataclass
class FunctionDef:
    ret: CType
    name: str
    params: List[Param]
    body: Optional[Block]           # None = declaration
    is_kernel: bool = False        # __global__
    line: int = 0


@dataclass
class GlobalDecl:
    type: CType
    name: str
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None
    line: int = 0


@dataclass
class StructDef:
    name: str
    fields: List[Param] = field(default_factory=list)
    line: int = 0


@dataclass
class TranslationUnit:
    name: str
    structs: List[StructDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
