"""MiniC lexer.

MiniC is the C-like input language of this reproduction's frontend: the
subset of C the HPC proxy kernels need, plus ``restrict``, a
``#pragma omp parallel for`` directive, and CUDA-style ``__global__``
kernels.  ``int`` is 64-bit (LP64 with I=64, documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "void", "int", "long", "double", "float", "char", "struct",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "restrict", "const", "static", "extern", "sizeof",
    "__global__",
}

MULTI_OPS = [
    "<<=", ">>=", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "&=", "|=", "^=",
]

SINGLE_OPS = "+-*/%<>=!&|^~?:;,.(){}[]"


@dataclass
class Token:
    kind: str          # "id" | "num" | "fnum" | "str" | "op" | "kw" | "pragma" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind},{self.text!r}@{self.line})"


class LexError(Exception):
    pass


def tokenize(source: str, filename: str = "<minic>") -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def err(msg: str):
        raise LexError(f"{filename}:{line}:{col}: {msg}")

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                err("unterminated comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            i = end + 2
            continue
        if c == "#":
            # only #pragma lines are meaningful; they are statements
            end = source.find("\n", i)
            if end < 0:
                end = n
            text = source[i:end].strip()
            if text.startswith("#pragma"):
                tokens.append(Token("pragma", text, line, col))
            i = end
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] in ".eExX"
                             or (source[j] in "+-" and j > i
                                 and source[j - 1] in "eE")
                             or (source[j] in "abcdefABCDEF"
                                 and source[i:i + 2].lower() == "0x")):
                if source[j] in ".eE" and source[i:i + 2].lower() != "0x":
                    is_float = True
                j += 1
            text = source[i:j]
            tokens.append(Token("fnum" if is_float else "num", text, line, col))
            col += j - i
            i = j
            continue
        if c == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    nxt = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "0": "\0",
                                "\\": "\\", '"': '"'}.get(nxt, nxt))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                err("unterminated string")
            tokens.append(Token("str", "".join(buf), line, col))
            col += j + 1 - i
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            if source[j] == "\\":
                ch = {"n": "\n", "t": "\t", "0": "\0"}.get(
                    source[j + 1], source[j + 1])
                j += 2
            else:
                ch = source[j]
                j += 1
            if source[j] != "'":
                err("unterminated char literal")
            tokens.append(Token("num", str(ord(ch)), line, col))
            i = j + 1
            continue
        matched = False
        for op in MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if c in SINGLE_OPS:
            tokens.append(Token("op", c, line, col))
            i += 1
            col += 1
            continue
        err(f"unexpected character {c!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
