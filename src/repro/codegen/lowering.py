"""Lowering: IR → machine-instruction accounting.

We do not emit real machine code; we model instruction selection closely
enough to report the codegen-facing statistics the paper uses:
``# machine instructions generated`` (asm printer) and the inputs the
register allocator needs (linearized live intervals, register classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import Argument, ConstantInt, Value


def machine_inst_count(inst: Instruction) -> int:
    """How many machine instructions this IR instruction selects to."""
    if isinstance(inst, PhiInst):
        return 0  # becomes copies counted against predecessors
    if isinstance(inst, AllocaInst):
        return 0  # folded into the frame
    if isinstance(inst, GEPInst):
        # constant-offset geps fold into addressing modes; each variable
        # index costs a lea/shift-add
        return sum(1 for i in inst.indices if not isinstance(i, ConstantInt))
    if isinstance(inst, (LoadInst, StoreInst)):
        return 1
    if isinstance(inst, BinaryInst):
        if inst.op in ("sdiv", "udiv", "srem", "urem"):
            return 2  # cdq + idiv
        return 1
    if isinstance(inst, (ICmpInst, FCmpInst)):
        return 1
    if isinstance(inst, CastInst):
        return 0 if inst.op in ("bitcast", "ptrtoint", "inttoptr") else 1
    if isinstance(inst, SelectInst):
        return 1  # cmov
    if isinstance(inst, BranchInst):
        return 2 if inst.is_conditional else 1
    if isinstance(inst, ReturnInst):
        return 1
    if isinstance(inst, CallInst):
        return 1 + len(inst.operands)  # arg setup + call
    if isinstance(inst, (MemCpyInst, MemSetInst)):
        return 4
    if isinstance(inst, ShuffleSplatInst):
        return 1
    if isinstance(inst, (ExtractElementInst, InsertElementInst)):
        return 1
    if isinstance(inst, UnreachableInst):
        return 1
    return 1


def register_class(ty: Type) -> Optional[str]:
    """"int" (GP) or "fp" (XMM/vector); None for untracked (void/label)."""
    if isinstance(ty, (IntType, PointerType)):
        return "int"
    if isinstance(ty, FloatType):
        return "fp"
    if isinstance(ty, VectorType):
        return "fp"
    return None


def gpu_register_width(ty: Type) -> int:
    """32-bit registers consumed per value on the GPU (doubles/i64 = 2,
    vectors = 2 per 64-bit lane)."""
    if isinstance(ty, (IntType,)):
        return 2 if ty.bits > 32 else 1
    if isinstance(ty, FloatType):
        return 2 if ty.bits > 32 else 1
    if isinstance(ty, PointerType):
        return 2
    if isinstance(ty, VectorType):
        return gpu_register_width(ty.element) * ty.count
    return 1


@dataclass
class LiveInterval:
    value: Value
    start: int
    end: int
    cls: str
    width: int = 1


@dataclass
class LoweredFunction:
    """Linearized machine-level view of a function."""

    function: Function
    machine_insts: int
    intervals: List[LiveInterval]
    positions: Dict[Value, int]
    frame_bytes: int
    phi_copies: int


def lower_function(fn: Function) -> LoweredFunction:
    """Linearize, count selected instructions, build live intervals."""
    positions: Dict[Value, int] = {}
    order: List[Instruction] = []
    pos = 0
    for bb in fn.blocks:
        for inst in bb.instructions:
            positions[inst] = pos
            order.append(inst)
            pos += 1

    machine = 0
    phi_copies = 0
    frame = 0
    last_use: Dict[Value, int] = {}
    first_def: Dict[Value, int] = {}

    for a in fn.args:
        first_def[a] = 0

    for inst in order:
        machine += machine_inst_count(inst)
        p = positions[inst]
        if not inst.type.is_void and not isinstance(inst.type, type(None)):
            first_def.setdefault(inst, p)
        if isinstance(inst, AllocaInst):
            frame += inst.size_bytes()
        for op in inst.operands:
            if isinstance(op, (Instruction, Argument)):
                last_use[op] = max(last_use.get(op, 0), p)
        if isinstance(inst, PhiInst):
            # each incoming edge materializes a copy in the predecessor
            phi_copies += len(inst.operands)
            for v, b in inst.incoming:
                if isinstance(v, (Instruction, Argument)):
                    # value must stay live until the end of the pred block
                    endp = positions.get(
                        b.terminator if b.terminator is not None else inst,
                        positions[inst])
                    last_use[v] = max(last_use.get(v, 0), endp)
    machine += phi_copies

    # loop-carried values: anything used by a phi via a backedge, or used
    # in a block before its definition point's block repeats, stays live
    # across the loop; approximate by extending intervals that cross
    # backwards branches
    for bb in fn.blocks:
        term = bb.terminator
        if term is None or not isinstance(term, BranchInst):
            continue
        tp = positions[term]
        for target in term.targets:
            if positions.get(target.instructions[0], tp) <= tp:
                # backedge: values live at the target that were defined
                # before it must survive the whole loop body
                for phi in target.phis():
                    for v, b in phi.incoming:
                        if b is bb and isinstance(v, (Instruction, Argument)):
                            last_use[v] = max(last_use.get(v, 0), tp)

    # addressing-mode folding: a GEP itself never occupies a register
    # (base + index*scale + imm), and an `add x, imm` whose only users
    # are GEP indices folds into the immediate.  Their *base* operands
    # stay live up to the folded consumer instead.
    folded: set = set()
    for inst in order:
        if isinstance(inst, GEPInst):
            folded.add(inst)
            endp = last_use.get(inst, positions[inst])
            for op in (inst.pointer, *inst.indices):
                if isinstance(op, (Instruction, Argument)):
                    last_use[op] = max(last_use.get(op, 0), endp)
        elif isinstance(inst, BinaryInst) and inst.op == "add" \
                and isinstance(inst.rhs, ConstantInt) and inst.users \
                and all(isinstance(u, GEPInst) for u in inst.users):
            folded.add(inst)
            endp = last_use.get(inst, positions[inst])
            if isinstance(inst.lhs, (Instruction, Argument)):
                last_use[inst.lhs] = max(last_use.get(inst.lhs, 0), endp)

    intervals: List[LiveInterval] = []
    for v, start in first_def.items():
        if v in folded:
            continue
        end = last_use.get(v, start)
        cls = register_class(v.type)
        if cls is None:
            continue
        intervals.append(LiveInterval(v, start, end, cls,
                                      gpu_register_width(v.type)))
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return LoweredFunction(fn, machine, intervals, positions, frame,
                           phi_copies)
