"""GPU codegen: per-kernel static properties (Fig. 7).

For every device-target kernel we report the number of (32-bit) registers
and the stack-frame size in bytes — the two columns of Fig. 7.  More
optimistic alias information changes both: eliminated loads shrink the
frame and can either shrink register demand (shorter live ranges) or
grow it (hoisted values live across the whole kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ir.function import Function
from ..ir.module import Module
from .lowering import lower_function
from .regalloc import gpu_pressure


@dataclass
class KernelInfo:
    """Static properties of one compiled GPU kernel."""

    name: str
    registers: int
    stack_bytes: int
    machine_insts: int

    def __str__(self) -> str:
        return (f"{self.name}: {self.registers} regs, "
                f"{self.stack_bytes} B stack")


def compile_kernel(fn: Function) -> KernelInfo:
    lowered = lower_function(fn)
    regs = gpu_pressure(lowered)
    # GPU stack frames hold allocas that survived optimization (spilling
    # to local memory only kicks in at the register ceiling)
    frame = lowered.frame_bytes
    if regs >= 255:
        frame += 64  # spill slab once the register file is exhausted
    return KernelInfo(fn.name, regs, frame, lowered.machine_insts)


def compile_device_kernels(module: Module,
                           target: str = "nvptx") -> Dict[str, KernelInfo]:
    """Compile every kernel-attributed device function."""
    out: Dict[str, KernelInfo] = {}
    for fn in module.defined_functions():
        if fn.target == target:
            out[fn.name] = compile_kernel(fn)
    return out
