"""repro.codegen — machine-level accounting: lowering, register
allocation (spills), asm printing (instruction counts), GPU kernels."""

from .asm_printer import FunctionCodegen, SPILL_OVERHEAD, codegen_function, run_codegen
from .gpu import KernelInfo, compile_device_kernels, compile_kernel
from .lowering import (
    LiveInterval,
    LoweredFunction,
    gpu_register_width,
    lower_function,
    machine_inst_count,
    register_class,
)
from .regalloc import AllocationResult, DEFAULT_REGS, gpu_pressure, linear_scan

__all__ = [name for name in dir() if not name.startswith("_")]
