"""Linear-scan register allocation (spill accounting).

Classic Poletto–Sarkar linear scan over the lowered live intervals, per
register class.  We only need the *spill count* (Fig. 6: Quicksilver
"# register spills inserted" −2.9% under ORAQL) and the resulting
machine-instruction inflation (a reload per spilled use, modelled as 2
extra instructions per spill).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .lowering import LiveInterval, LoweredFunction

#: available registers per class (x86-64-ish: 14 allocatable GPRs after
#: RSP/RBP, 16 XMM)
DEFAULT_REGS = {"int": 14, "fp": 16}


@dataclass
class AllocationResult:
    spills: int
    spill_bytes: int
    max_pressure: Dict[str, int]


def linear_scan(lowered: LoweredFunction,
                regs: Dict[str, int] = None) -> AllocationResult:
    regs = regs or DEFAULT_REGS
    spills = 0
    spill_bytes = 0
    max_pressure = {"int": 0, "fp": 0}
    for cls, k in regs.items():
        active: List[LiveInterval] = []
        for iv in lowered.intervals:
            if iv.cls != cls:
                continue
            active = [a for a in active if a.end > iv.start]
            active.append(iv)
            max_pressure[cls] = max(max_pressure[cls], len(active))
            if len(active) > k:
                # spill the interval that ends furthest away
                victim = max(active, key=lambda a: a.end)
                active.remove(victim)
                spills += 1
                spill_bytes += max(8, victim.value.type.size()
                                   if not victim.value.type.is_void else 8)
    return AllocationResult(spills, spill_bytes, max_pressure)


def gpu_pressure(lowered: LoweredFunction) -> int:
    """Maximum simultaneous 32-bit register demand on a GPU (no spilling
    below 255 registers; unified register file, width-weighted)."""
    events = []
    for iv in lowered.intervals:
        events.append((iv.start, iv.width))
        events.append((iv.end + 1, -iv.width))
    events.sort()
    cur = peak = 0
    for _, delta in events:
        cur += delta
        peak = max(peak, cur)
    # kernels always need a few fixed registers (params, special regs)
    return min(255, peak + 8)
