"""Asm printer: final machine-instruction counts per function/module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..ir.function import Function
from ..ir.module import Module
from ..passes.statistics import Statistics
from .lowering import LoweredFunction, lower_function
from .regalloc import AllocationResult, linear_scan

#: extra machine instructions materialized per spill (store + reload)
SPILL_OVERHEAD = 2


@dataclass
class FunctionCodegen:
    machine_insts: int
    spills: int
    frame_bytes: int


def codegen_function(fn: Function) -> FunctionCodegen:
    lowered = lower_function(fn)
    alloc = linear_scan(lowered)
    insts = lowered.machine_insts + SPILL_OVERHEAD * alloc.spills
    frame = lowered.frame_bytes + alloc.spill_bytes
    return FunctionCodegen(insts, alloc.spills, frame)


def run_codegen(module: Module, stats: Statistics,
                target: str = "host") -> Dict[str, FunctionCodegen]:
    """Code-generate every defined function for ``target``; report the
    asm-printer / register-allocation statistics (Fig. 6 rows)."""
    out: Dict[str, FunctionCodegen] = {}
    for fn in module.defined_functions():
        if fn.target != target:
            continue
        cg = codegen_function(fn)
        out[fn.name] = cg
        stats.add("asm printer", "# machine instructions generated",
                  cg.machine_insts)
        stats.add("register allocation", "# register spills inserted",
                  cg.spills)
    return out
