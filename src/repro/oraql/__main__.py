"""``python -m repro.oraql`` — the driver CLI without an installed
console script (CI jobs run straight from the source tree)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
