"""Report generation (paper §II: "a report identifying the
optimistically and forced pessimistically answered alias queries,
associated with source lines, where possible, and with the passes that
issued them").
"""

from __future__ import annotations

from typing import List, Optional

from .driver import ProbingReport
from .pass_ import QueryRecord
from .verify import TRIAGE_CLASSES


def render_query(rec: QueryRecord) -> str:
    return "\n".join(rec.render())


def render_pessimistic_dump(report: ProbingReport) -> str:
    """Fig. 3-style dump of every pessimistically answered unique query,
    preceded by the pass that issued it."""
    if not report.pessimistic_records and report.pessimistic_dump is not None:
        # records were detached for cross-process transport; the dump
        # was pre-rendered in the worker
        return report.pessimistic_dump
    lines: List[str] = []
    for rec in report.pessimistic_records:
        lines.append(f"Executing Pass '{rec.issuing_pass}' on Function "
                     f"'{rec.scope}'...")
        lines.extend(rec.render())
        lines.append("")
    return "\n".join(lines)


def render_report(report: ProbingReport) -> str:
    """The full human-readable driver report."""
    r = report
    out: List[str] = []
    out.append(f"== ORAQL report: {r.config_name} ==")
    if r.failed:
        out.append(f"FAILED: {r.error}")
        for err in r.worker_errors:
            if err != r.error:
                out.append(f"  worker error: {err}")
        return "\n".join(out)
    if r.fully_optimistic:
        out.append("fully optimistic: all queries can be answered no-alias")
    out.append(f"optimistic queries : {r.opt_unique} unique, "
               f"{r.opt_cached} cached")
    out.append(f"pessimistic queries: {r.pess_unique} unique, "
               f"{r.pess_cached} cached")
    out.append(f"no-alias responses : {r.no_alias_original} original -> "
               f"{r.no_alias_oraql} ORAQL "
               f"({r.no_alias_delta_percent:+.1f}%)")
    if r.budget_exhausted:
        out.append("BUDGET EXHAUSTED: partial result — the pessimistic set "
                   "below is the best known, not verified locally-maximal")
    out.append(f"probing effort     : {r.compiles} compiles, "
               f"{r.tests_run} tests run, {r.tests_cached} served from the "
               f"executable-hash cache, {r.tests_deduced} deduced")
    if r.cache_hits or r.cache_misses:
        out.append(f"verdict cache      : {r.cache_hits} hits, "
                   f"{r.cache_misses} misses")
    if r.triage_counts:
        ordered = [c for c in TRIAGE_CLASSES if r.triage_counts.get(c)]
        ordered += sorted(set(r.triage_counts) - set(TRIAGE_CLASSES))
        out.append("test triage        : " + ", ".join(
            f"{c} {r.triage_counts[c]}" for c in ordered))
    if r.retries or r.nondet_reruns:
        out.append(f"fault handling     : {r.retries} transient retries, "
                   f"{r.nondet_reruns} nondeterminism re-runs")
    if r.tests_replayed:
        out.append(f"journal resume     : {r.tests_replayed} verdicts "
                   f"replayed from the session journal")
    if r.worker_errors:
        out.append(f"worker failures    : {len(r.worker_errors)} survived")
        for err in r.worker_errors:
            out.append(f"  {err}")
    if r.tests_speculated:
        out.append(f"speculation        : {r.tests_speculated} probes "
                   f"launched ahead of need")
    if r.analysis_builds:
        built = ", ".join(f"{name} {n}" for name, n in
                          sorted(r.analysis_builds.items()))
        out.append(f"analysis rebuilds  : {built}")
        if r.analysis_preserved_hits:
            avoided = ", ".join(f"{name} {n}" for name, n in
                                sorted(r.analysis_preserved_hits.items()))
            out.append(f"rebuilds avoided   : {avoided} "
                       f"(preserved across invalidation)")
    if r.unique_by_pass:
        out.append("unique queries by issuing pass:")
        total = sum(r.unique_by_pass.values())
        for name, n in sorted(r.unique_by_pass.items(),
                              key=lambda kv: -kv[1]):
            out.append(f"  {name:<28} {n:>6} ({100.0 * n / total:.1f}%)")
    if r.remarks:
        out.append("")
        out.append("optimization remarks (final compile):")
        out.extend(f"  {line}" for line in r.remarks)
    if r.phase_timers is not None:
        from ..trace.timer import render_tree
        out.append("")
        out.append(render_tree(r.phase_timers))
    if r.pessimistic_records or r.pessimistic_dump:
        out.append("")
        out.append("pessimistic queries (true aliases):")
        out.append(render_pessimistic_dump(report))
    return "\n".join(out)
