"""Report generation (paper §II: "a report identifying the
optimistically and forced pessimistically answered alias queries,
associated with source lines, where possible, and with the passes that
issued them").
"""

from __future__ import annotations

from typing import List, Optional

from .driver import ProbingReport
from .pass_ import QueryRecord
from .verify import TRIAGE_CLASSES


def render_query(rec: QueryRecord) -> str:
    return "\n".join(rec.render())


def render_pessimistic_dump(report: ProbingReport) -> str:
    """Fig. 3-style dump of every pessimistically answered unique query,
    preceded by the pass that issued it."""
    if not report.pessimistic_records and report.pessimistic_dump is not None:
        # records were detached for cross-process transport; the dump
        # was pre-rendered in the worker
        return report.pessimistic_dump
    lines: List[str] = []
    for rec in report.pessimistic_records:
        lines.append(f"Executing Pass '{rec.issuing_pass}' on Function "
                     f"'{rec.scope}'...")
        lines.extend(rec.render())
        lines.append("")
    return "\n".join(lines)


def render_report(report: ProbingReport) -> str:
    """The full human-readable driver report."""
    r = report
    out: List[str] = []
    out.append(f"== ORAQL report: {r.config_name} ==")
    if r.failed:
        out.append(f"FAILED: {r.error}")
        for err in r.worker_errors:
            if err != r.error:
                out.append(f"  worker error: {err}")
        return "\n".join(out)
    if r.fully_optimistic:
        out.append("fully optimistic: all queries can be answered no-alias")
    out.append(f"optimistic queries : {r.opt_unique} unique, "
               f"{r.opt_cached} cached")
    out.append(f"pessimistic queries: {r.pess_unique} unique, "
               f"{r.pess_cached} cached")
    out.append(f"no-alias responses : {r.no_alias_original} original -> "
               f"{r.no_alias_oraql} ORAQL "
               f"({r.no_alias_delta_percent:+.1f}%)")
    if r.budget_exhausted:
        out.append("BUDGET EXHAUSTED: partial result — the pessimistic set "
                   "below is the best known, not verified locally-maximal")
    out.append(f"probing strategy   : {r.strategy}")
    out.append(f"probing effort     : {r.compiles} compiles, "
               f"{r.tests_run} tests run, {r.tests_cached} served from the "
               f"executable-hash cache, {r.tests_deduced} deduced")
    if r.incremental_enabled:
        out.append(f"incremental        : {r.incremental_compiles} of "
                   f"{r.compiles} compiles spliced from a baseline, "
                   f"{r.incremental_fallbacks} fell back to full")
        out.append(f"functions          : {r.functions_reoptimized} "
                   f"re-optimized ({r.functions_resumed} resumed "
                   f"mid-pipeline, {r.passes_resumed_past} pass runs "
                   f"skipped), {r.functions_spliced} spliced from "
                   f"baseline")
        out.append(f"codegen cache      : {r.codegen_cache_hits} hits, "
                   f"{r.codegen_cache_misses} misses")
        out.append(f"pass executions    : {r.pass_executions}")
    if r.cache_hits or r.cache_misses:
        out.append(f"verdict cache      : {r.cache_hits} hits, "
                   f"{r.cache_misses} misses")
    if r.triage_counts:
        ordered = [c for c in TRIAGE_CLASSES if r.triage_counts.get(c)]
        ordered += sorted(set(r.triage_counts) - set(TRIAGE_CLASSES))
        out.append("test triage        : " + ", ".join(
            f"{c} {r.triage_counts[c]}" for c in ordered))
    if r.retries or r.nondet_reruns:
        out.append(f"fault handling     : {r.retries} transient retries, "
                   f"{r.nondet_reruns} nondeterminism re-runs")
    if r.tests_replayed:
        out.append(f"journal resume     : {r.tests_replayed} verdicts "
                   f"replayed from the session journal")
    if r.worker_errors:
        out.append(f"worker failures    : {len(r.worker_errors)} survived")
        for err in r.worker_errors:
            out.append(f"  {err}")
    if r.tests_speculated:
        out.append(f"speculation        : {r.tests_speculated} probes "
                   f"launched ahead of need")
    if r.analysis_builds:
        built = ", ".join(f"{name} {n}" for name, n in
                          sorted(r.analysis_builds.items()))
        out.append(f"analysis rebuilds  : {built}")
        if r.analysis_preserved_hits:
            avoided = ", ".join(f"{name} {n}" for name, n in
                                sorted(r.analysis_preserved_hits.items()))
            out.append(f"rebuilds avoided   : {avoided} "
                       f"(preserved across invalidation)")
    if r.unique_by_pass:
        out.append("unique queries by issuing pass:")
        total = sum(r.unique_by_pass.values())
        for name, n in sorted(r.unique_by_pass.items(),
                              key=lambda kv: -kv[1]):
            out.append(f"  {name:<28} {n:>6} ({100.0 * n / total:.1f}%)")
    if r.remarks:
        out.append("")
        out.append("optimization remarks (final compile):")
        out.extend(f"  {line}" for line in r.remarks)
    if r.phase_timers is not None:
        from ..trace.timer import render_tree
        out.append("")
        out.append(render_tree(r.phase_timers))
    if r.pessimistic_records or r.pessimistic_dump:
        out.append("")
        out.append("pessimistic queries (true aliases):")
        out.append(render_pessimistic_dump(report))
    return "\n".join(out)


def render_importance_report(report) -> str:
    """The human-readable importance-mining report: which safe
    optimistic answers measurably buy cycles, what each one is worth,
    and the transform it enables (an :class:`ImportanceReport`)."""
    r = report
    out: List[str] = []
    out.append(f"== ORAQL importance report: {r.config_name} ==")
    out.append(f"safe optimistic set: {r.safe_queries} of "
               f"{r.unique_queries} unique queries "
               f"({len(r.pessimistic_indices)} pinned pessimistic)")
    out.append(f"cycles             : baseline {r.baseline_cycles:.0f} "
               f"-> optimistic {r.optimal_cycles:.0f} "
               f"({r.total_savings:.0f} saved)")
    out.append(f"significance bar   : {r.significant_percent:g}% of "
               f"baseline = {r.threshold_cycles:.0f} cycles")
    if r.partial:
        out.append("MEASUREMENT BUDGET EXHAUSTED: partial result — the "
                   "important set below is the best known, not verified")
    out.append(f"important queries  : {len(r.important)} recover "
               f"{r.recovered_savings:.0f} cycles "
               f"({r.recovered_percent:.1f}% of the full win); "
               f"{len(r.dropped)} safe queries buy nothing")
    out.append(f"measurement effort : {r.compiles} compiles, "
               f"{r.measurements_run} VM runs, "
               f"{r.measurements_cached} served from the "
               f"executable-hash cache")
    if r.incremental_enabled:
        out.append(f"incremental        : {r.incremental_compiles} of "
                   f"{r.compiles} measurement compiles spliced from a "
                   f"baseline, {r.incremental_fallbacks} fell back to "
                   f"full ({r.pass_executions} pass executions)")
    if r.measurements_replayed:
        out.append(f"journal resume     : {r.measurements_replayed} "
                   f"measurements replayed from the session journal")
    if r.refinement_rounds:
        out.append(f"refinement         : {r.refinement_rounds} extra "
                   f"round(s) for non-additive interactions")
    if r.flip_failures:
        out.append(f"flip failures      : {r.flip_failures} candidates "
                   f"broke verification (treated as infinitely costly)")
    if r.unknown_opcodes or r.unknown_intrinsics:
        unpriced = {**r.unknown_opcodes, **r.unknown_intrinsics}
        out.append("UNPRICED OPERATIONS (cycle deltas are distorted): "
                   + ", ".join(f"{k} x{n}"
                               for k, n in sorted(unpriced.items())))
    if r.important:
        out.append("")
        out.append("important queries by measured value:")
        for q in r.important:
            out.extend("  " + line for line in q.describe().splitlines())
    if len(r.pareto) > 1:
        out.append("")
        out.append("Pareto front (cumulative, best-first):")
        for p in r.pareto:
            label = "(none)" if p.added is None else f"+q{p.added}"
            out.append(f"  k={p.k:<3} {label:<8} {p.cycles:>12.0f} cycles "
                       f"saved {p.cycles_saved:>10.0f} "
                       f"({p.percent_of_full:5.1f}% of full win)")
    return "\n".join(out)
