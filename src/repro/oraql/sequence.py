"""Decision sequences: the 0/1 response stream fed to the ORAQL pass.

The driver communicates the probing sequence as space-separated ``1``
(optimistic, no-alias) and ``0`` (not optimistic, may-alias) characters
via ``-opt-aa-seq=<sequence>`` (paper §IV-A).  Sequences longer than the
command-line length limit are passed through a response file using the
LLVM ``@<filename>`` convention.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterable, List, Optional, Sequence

#: conservative command-line length limit that triggers @file transport
ARG_MAX = 4096


class DecisionSequence:
    """A finite bit prefix; queries beyond the end are optimistic.

    ``consumed`` tracks how many decisions have been handed out, which
    the pass reports back to the driver as the unique-query count.
    """

    def __init__(self, bits: Sequence[int] = ()):
        self.bits: List[int] = [1 if b else 0 for b in bits]
        self.consumed = 0
        #: response files spilled by :meth:`to_argument`; owned by this
        #: sequence and deleted by :meth:`cleanup` (or the context
        #: manager / finalizer)
        self._response_files: List[str] = []

    # -- pass-side ----------------------------------------------------------
    def next(self) -> bool:
        """The decision for the next unique query (True = no-alias)."""
        i = self.consumed
        self.consumed += 1
        if i < len(self.bits):
            return bool(self.bits[i])
        return True  # end of sequence: answer optimistically (§IV-A)

    def reset(self) -> None:
        self.consumed = 0

    # -- driver-side --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.bits)

    def __eq__(self, other) -> bool:
        return isinstance(other, DecisionSequence) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(tuple(self.bits))

    def to_text(self) -> str:
        return " ".join(str(b) for b in self.bits)

    @staticmethod
    def from_text(text: str) -> "DecisionSequence":
        bits = []
        for tok in text.split():
            if tok not in ("0", "1"):
                raise ValueError(f"bad decision token {tok!r}")
            bits.append(int(tok))
        return DecisionSequence(bits)

    # -- command-line transport -----------------------------------------------
    def to_argument(self, workdir: Optional[str] = None,
                    arg_max: int = ARG_MAX) -> str:
        """Render as ``-opt-aa-seq=...``, spilling to ``@file`` when the
        rendered argument would exceed the command-line limit.

        Spilled response files belong to this sequence: they live until
        :meth:`cleanup` runs (directly, via the context-manager exit, or
        via the finalizer), so a long bisection no longer leaks one temp
        file per compile."""
        text = self.to_text()
        arg = f"-opt-aa-seq={text}"
        if len(arg) <= arg_max:
            return arg
        fd, path = tempfile.mkstemp(prefix="oraql-seq-", suffix=".rsp",
                                    dir=workdir)
        with os.fdopen(fd, "w") as f:
            f.write(text)
        self._response_files.append(path)
        return f"-opt-aa-seq=@{path}"

    def cleanup(self) -> None:
        """Delete every response file this sequence spilled."""
        for path in self._response_files:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._response_files.clear()

    def __enter__(self) -> "DecisionSequence":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    def __del__(self):  # best-effort; cleanup() is the reliable path
        try:
            self.cleanup()
        except Exception:
            pass

    @staticmethod
    def from_argument(arg: str) -> "DecisionSequence":
        prefix = "-opt-aa-seq="
        if not arg.startswith(prefix):
            raise ValueError(f"not an ORAQL sequence argument: {arg!r}")
        payload = arg[len(prefix):]
        if payload.startswith("@"):
            with open(payload[1:], "r") as f:
                payload = f.read()
        return DecisionSequence.from_text(payload)


def all_optimistic() -> DecisionSequence:
    """The empty sequence: every query answered no-alias (§IV-B)."""
    return DecisionSequence()


def sequence_from_pessimistic_set(pess: Iterable[int],
                                  length: Optional[int] = None) -> DecisionSequence:
    """Bits with the given indices pessimistic, everything else (up to
    ``length``, default max index + 1) optimistic."""
    pset = set(pess)
    if length is None:
        length = (max(pset) + 1) if pset else 0
    return DecisionSequence([0 if i in pset else 1 for i in range(length)])
