"""repro.oraql — the paper's contribution: the ORAQL pass, probing
driver, and verification script (plus the compiler wrapper they drive).
"""

from .cache import CACHE_SCHEMA_VERSION, VerdictCache, config_fingerprint
from .compiler import CompiledProgram, Compiler
from .config import BenchmarkConfig, SourceFile
from .driver import (
    ProbingDriver,
    ProbingReport,
    TestBudgetExhausted,
)
from .errors import FlakyConfigError, JournalError, ProbingError
from .executor import (
    ExecutorPolicy,
    TestExecutor,
    TestOutcome,
    is_transient_compiler_fault,
)
from .importance import (
    ImportanceDriver,
    ImportanceReport,
    ImportantQuery,
    Measurement,
    MeasurementBudgetExhausted,
    MeasuredCycleOracle,
    MiningResult,
    ParetoPoint,
    SyntheticCycleOracle,
    attribute_queries,
    mine_important,
)
from .journal import JOURNAL_SCHEMA_VERSION, SessionJournal
from .override import ChainValueReport, OraqlOverridePass, measure_chain_value
from .parallel import ParallelProbingDriver, SpeculativeProbingDriver
from .pass_ import DumpFlags, OraqlAAPass, QueryRecord
from .report import (
    render_importance_report,
    render_pessimistic_dump,
    render_query,
    render_report,
)
from .sequence import (
    ARG_MAX,
    DecisionSequence,
    all_optimistic,
    sequence_from_pessimistic_set,
)
from .verify import (
    TRIAGE_CLASSES,
    RunResult,
    VerificationScript,
    triage_run,
)

__all__ = [name for name in dir() if not name.startswith("_")]
