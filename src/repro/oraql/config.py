"""Benchmark configuration (paper §IV-B).

The probing driver is controlled by a benchmark-specific configuration
that names the compiler frontend, the compilation flags, the files or
functions to which optimistic probing applies, how to run the program,
and the reference output(s) with the regex filters the verification
script applies (run times, noisy last digits, ...).

Configurations serialize to/from JSON so they can live next to the
benchmark sources, as the paper's configuration files do.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class SourceFile:
    """One translation unit: a named MiniC source text."""

    name: str
    text: str


@dataclass
class BenchmarkConfig:
    """Everything the driver needs to compile, run, and verify one
    benchmark configuration."""

    name: str
    sources: List[SourceFile]
    #: "clang" | "clang++" | "mpicc" | "flang" — selects defaults below
    frontend: str = "clang"
    opt_level: int = 3
    #: manual-LTO: link all translation units before optimizing (§V-A-d)
    lto: bool = False
    #: alias-analysis chain (LLVM default order unless overridden)
    aa_chain: Optional[List[str]] = None
    #: restrict ORAQL to these source files (e.g. only sna.cpp)
    probe_files: Optional[List[str]] = None
    #: restrict ORAQL to these functions
    probe_functions: Optional[List[str]] = None
    #: -opt-aa-target= substring (device-only probing, §IV-E)
    target_filter: Optional[str] = None
    #: execution
    entry: str = "main"
    argv: List[str] = field(default_factory=list)
    nranks: int = 1
    num_threads: int = 4
    max_steps: int = 80_000_000
    #: verification: reference outputs (filled by the driver's baseline
    #: run when empty) and regex filters applied before comparison
    reference_outputs: List[str] = field(default_factory=list)
    output_filters: List[Tuple[str, str]] = field(default_factory=list)

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        d = asdict(self)
        return json.dumps(d, indent=2)

    @staticmethod
    def from_json(text: str) -> "BenchmarkConfig":
        d = json.loads(text)
        d["sources"] = [SourceFile(**s) for s in d.get("sources", [])]
        d["output_filters"] = [tuple(f) for f in d.get("output_filters", [])]
        return BenchmarkConfig(**d)

    # -- derived ---------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        return self.nranks > 1

    def probe_file_set(self) -> Optional[set]:
        return set(self.probe_files) if self.probe_files is not None else None

    def probe_function_set(self) -> Optional[set]:
        return (set(self.probe_functions)
                if self.probe_functions is not None else None)
