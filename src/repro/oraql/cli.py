"""``oraql`` command-line interface.

Mirrors the paper's driver invocation: a benchmark configuration (JSON,
or a bundled workload name like ``TestSNAP-openmp``), a probing
strategy, and optional dump flags.

Examples::

    oraql --list
    oraql --workload XSBench-seq
    oraql --workload TestSNAP-openmp --dump-pessimistic --dump-first
    oraql --config my_benchmark.json --strategy frequency
    oraql --fig 4          # regenerate a paper table/figure
    oraql importance --workload MiniGMG-omptask --significant-percent 2
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


#: subcommand name -> entry point taking the remaining argv; a bare
#: first argument that is none of these is refused with exit status 2
#: and a usage message naming them (never an attribute traceback)
SUBCOMMANDS = ("importance", "fit-prior")


def _resolve_workload(parser: argparse.ArgumentParser, name: str):
    """A workload row by name, or a structured parser error (exit 2)
    naming the known rows — never a raw ``KeyError`` traceback."""
    from ..workloads.base import get_config, row_names
    try:
        return get_config(name)
    except KeyError:
        parser.error(f"unknown workload {name!r} "
                     f"(known: {', '.join(row_names())}; "
                     f"see 'oraql --list')")


def _add_strategy_option(p: argparse.ArgumentParser,
                         help: str = "probing strategy") -> None:
    """The ``--strategy`` option, choices derived from the strategy
    registry — the single place both the ``oraql`` and ``importance``
    parsers get it from, so registering a strategy surfaces it in every
    CLI at once.  argparse turns an unknown name into a structured
    exit-2 error naming the registered strategies."""
    from .strategies import strategy_names
    p.add_argument("--strategy", choices=strategy_names(),
                   default="chunked", help=help)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="oraql",
        description="ORAQL: find (almost) perfect alias information for a "
                    "benchmark by optimistic probing.")
    p.add_argument("--config", help="benchmark configuration JSON file")
    p.add_argument("--workload", help="bundled workload row name "
                                      "(see --list)")
    p.add_argument("--list", action="store_true",
                   help="list bundled workload configurations")
    _add_strategy_option(p)
    p.add_argument("--strategy-seed", type=int, default=0, metavar="N",
                   help="seed for randomized strategies (mcts); the "
                        "same seed reproduces the same probe sequence")
    p.add_argument("--fig", choices=["2", "3", "4", "5", "5m", "6", "7",
                                     "runtimes"],
                   help="regenerate a paper table/figure ('5m' is the "
                        "measured Fig. 5 versions table from importance "
                        "mining)")
    p.add_argument("--dump-first", action="store_true")
    p.add_argument("--dump-cached", action="store_true")
    p.add_argument("--dump-optimistic", action="store_true")
    p.add_argument("--dump-pessimistic", action="store_true")
    p.add_argument("--max-tests", type=int, default=10_000)
    p.add_argument("--verify-analyses", action="store_true",
                   help="recompute DominatorTree/LoopInfo after every "
                        "pass that claims to preserve them and abort on "
                        "a mismatch (catches passes lying about "
                        "preservation; slow)")
    p.add_argument("--invalidation", choices=["fine", "coarse"],
                   default="fine",
                   help="analysis invalidation mode: 'fine' keeps "
                        "preserved analyses alive across passes, "
                        "'coarse' replicates the legacy invalidate-"
                        "everything behavior (for differential runs)")
    p.add_argument("--incremental", choices=["on", "off"], default="off",
                   help="incremental recompilation: splice unaffected "
                        "optimized function bodies from the nearest "
                        "cached baseline and resume affected pipelines "
                        "mid-stream; results are bit-identical to full "
                        "compiles (default off)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for the parallel probing "
                        "engine (1 = sequential driver)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="directory for the persistent verdict cache, "
                        "shared across configs, strategies, and runs")
    p.add_argument("--compact-cache", action="store_true",
                   help="compact the verdict cache under --cache-dir "
                        "(drop superseded/corrupt records) and exit")
    p.add_argument("--journal", metavar="DIR",
                   help="directory for append-only session journals; "
                        "every probe verdict is checkpointed so a "
                        "killed session can be resumed with --resume")
    p.add_argument("--resume", action="store_true",
                   help="replay the session journal under --journal "
                        "before probing: the resumed session retraces "
                        "the interrupted one bit-identically, serving "
                        "journaled verdicts from cache")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retry budget for transient test-infrastructure "
                        "faults (default 2)")
    p.add_argument("--test-fuel", type=int, default=None, metavar="N",
                   help="per-test instruction budget override (a "
                        "runaway miscompile becomes a step-limit "
                        "verdict instead of a stuck driver)")
    p.add_argument("--test-wall-clock", type=float, default=None,
                   metavar="SEC",
                   help="per-test wall-clock budget in seconds "
                        "(unset = deterministic unbounded runs)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write the query-provenance event log (JSONL) "
                        "for the whole probing session; inspect with "
                        "'python -m repro.trace summarize FILE'")
    p.add_argument("--trace-chrome", metavar="FILE",
                   help="write a Chrome trace_event JSON for the session "
                        "(loadable in Perfetto / chrome://tracing)")
    p.add_argument("--time-passes", action="store_true",
                   help="collect and print the hierarchical phase-timing "
                        "report (frontend/passes/codegen/vm-run, "
                        "per-pass self vs. children)")
    p.add_argument("--remarks", action="store_true",
                   help="print optimization remarks from the final "
                        "compile, each linked to the ORAQL query "
                        "indices that enabled the transform")
    return p


def build_importance_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="oraql importance",
        description="Second-phase importance mining: bisect the safe "
                    "optimistic set by measured cycle delta to find the "
                    "queries whose optimism actually buys cycles.")
    p.add_argument("--config", help="benchmark configuration JSON file")
    p.add_argument("--workload", help="bundled workload row name "
                                      "(see 'oraql --list')")
    _add_strategy_option(p, help="probing strategy for phase 1")
    p.add_argument("--significant-percent", type=float, default=2.0,
                   metavar="PCT",
                   help="significance bar: a flip is important when it "
                        "costs more than PCT%% of baseline cycles "
                        "(default 2, the original driver's "
                        "significant_percentage)")
    p.add_argument("--recover-percent", type=float, default=95.0,
                   metavar="PCT",
                   help="refinement target: keep mining until the "
                        "important set alone recovers PCT%% of the full "
                        "optimism win (default 95)")
    p.add_argument("--max-tests", type=int, default=10_000,
                   help="phase-1 probing test budget")
    p.add_argument("--max-measurements", type=int, default=2000,
                   help="phase-2 cycle-measurement budget (VM runs; "
                        "cache hits are free)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="directory for the persistent verdict cache")
    p.add_argument("--journal", metavar="DIR",
                   help="directory for append-only session journals "
                        "(probing verdicts and cycle measurements)")
    p.add_argument("--resume", action="store_true",
                   help="replay both session journals under --journal: "
                        "the resumed run retraces the interrupted one "
                        "bit-identically, measurements served from cache")
    p.add_argument("--retries", type=int, default=2, metavar="N")
    p.add_argument("--test-fuel", type=int, default=None, metavar="N")
    p.add_argument("--test-wall-clock", type=float, default=None,
                   metavar="SEC")
    p.add_argument("--incremental", choices=["on", "off"], default="off",
                   help="incremental recompilation for phase-1 probing "
                        "and phase-2 measurement compiles (bit-identical "
                        "to full compiles; default off)")
    p.add_argument("--lenient-cost", action="store_true",
                   help="price unknown opcodes/intrinsics with default "
                        "costs instead of crashing (measurements may be "
                        "distorted; the report flags what was unpriced)")
    return p


def importance_main(argv: Optional[List[str]] = None) -> int:
    parser = build_importance_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal DIR")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0 (got {args.retries})")
    if args.significant_percent < 0:
        parser.error("--significant-percent must be >= 0")
    if not 0 < args.recover_percent <= 100:
        parser.error("--recover-percent must be in (0, 100]")

    from .config import BenchmarkConfig
    if args.workload:
        cfg = _resolve_workload(parser, args.workload)
    elif args.config:
        with open(args.config) as f:
            cfg = BenchmarkConfig.from_json(f.read())
    else:
        print("error: one of --config / --workload is required",
              file=sys.stderr)
        return 2

    from .cache import VerdictCache
    from .errors import ProbingError
    from .executor import ExecutorPolicy
    from .importance import ImportanceDriver
    from .report import render_importance_report
    policy = ExecutorPolicy(fuel=args.test_fuel,
                            wall_clock=args.test_wall_clock,
                            retries=args.retries)
    cache = VerdictCache(args.cache_dir) if args.cache_dir else None
    try:
        report = ImportanceDriver(
            cfg, strategy=args.strategy,
            significant_percent=args.significant_percent,
            recover_percent=args.recover_percent,
            max_tests=args.max_tests,
            max_measurements=args.max_measurements,
            policy=policy, verdict_cache=cache,
            journal_dir=args.journal, resume=args.resume,
            strict_cost=not args.lenient_cost,
            incremental=args.incremental).run()
    except ProbingError as e:
        print(f"error: {e}", file=sys.stderr)
        if e.explain:
            print(e.explain, file=sys.stderr)
        return 1
    print(render_importance_report(report))
    return 0


def build_fit_prior_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="oraql fit-prior",
        description="Fit the provenance-prior danger model on "
                    "fuzz-campaign traces and write the versioned "
                    "coefficient artifact the 'provenance-prior' "
                    "strategy loads.")
    p.add_argument("--seeds", type=int, default=200, metavar="N",
                   help="how many fuzz seeds to mine (default 200)")
    p.add_argument("--start", type=int, default=0, metavar="N",
                   help="first seed (default 0)")
    p.add_argument("--opt-level", type=int, default=3, choices=[1, 2, 3])
    p.add_argument("--epochs", type=int, default=300,
                   help="gradient-descent epochs (default 300)")
    p.add_argument("--max-tests", type=int, default=2000,
                   help="probing budget per divergent seed")
    p.add_argument("--out", metavar="FILE",
                   help="artifact path (default: the checked-in "
                        "strategies/prior_model.json)")
    p.add_argument("--quiet", action="store_true")
    return p


def fit_prior_main(argv: Optional[List[str]] = None) -> int:
    parser = build_fit_prior_parser()
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1 (got {args.seeds})")
    from .strategies.fit import fit_prior
    model, stats = fit_prior(seeds=range(args.start,
                                         args.start + args.seeds),
                             opt_level=args.opt_level,
                             epochs=args.epochs,
                             max_tests=args.max_tests,
                             log=(None if args.quiet
                                  else lambda s: print(s,
                                                       file=sys.stderr)))
    from .strategies.prior import DEFAULT_MODEL_PATH
    out = args.out or DEFAULT_MODEL_PATH
    model.save(out)
    print(f"prior model written to {out}: "
          f"{stats['samples']} samples ({stats['positives']} dangerous) "
          f"from {stats['programs']} programs "
          f"({stats['divergent']} divergent), "
          f"train AUC {stats['auc']:.3f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] and not argv[0].startswith("-"):
        if argv[0] == "importance":
            return importance_main(argv[1:])
        if argv[0] == "fit-prior":
            return fit_prior_main(argv[1:])
        print(f"error: unknown subcommand {argv[0]!r} "
              f"(known: {', '.join(SUBCOMMANDS)})", file=sys.stderr)
        print("usage: oraql [SUBCOMMAND] [OPTIONS]; "
              "see 'oraql --help'", file=sys.stderr)
        return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1 (got {args.jobs})")
    if args.cache_dir and os.path.exists(args.cache_dir) \
            and not os.path.isdir(args.cache_dir):
        parser.error(f"--cache-dir is not a directory: {args.cache_dir}")
    if args.resume and not args.journal:
        parser.error("--resume requires --journal DIR")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0 (got {args.retries})")

    if args.compact_cache:
        if not args.cache_dir:
            parser.error("--compact-cache requires --cache-dir DIR")
        from .cache import VerdictCache
        cache = VerdictCache(args.cache_dir)
        before, after = cache.compact()
        stats = cache.stats()
        print(f"compacted {stats['path']}: {before} lines -> {after} "
              f"records")
        return 0

    if args.list:
        from ..workloads.base import get_info, row_names
        for name in row_names():
            info = get_info(name)
            print(f"{name:<28} {info.programming_model:<22} "
                  f"[{info.source_files}]")
        return 0

    if args.fig:
        return _run_fig(args.fig, jobs=args.jobs, cache_dir=args.cache_dir)

    from .config import BenchmarkConfig
    from .driver import ProbingDriver
    from .report import render_report

    if args.workload:
        cfg = _resolve_workload(parser, args.workload)
    elif args.config:
        with open(args.config) as f:
            cfg = BenchmarkConfig.from_json(f.read())
    else:
        print("error: one of --config / --workload / --list / --fig "
              "is required", file=sys.stderr)
        return 2

    from .compiler import Compiler
    from .errors import ProbingError
    from .executor import ExecutorPolicy
    compiler = Compiler(verify_analyses=args.verify_analyses,
                        invalidation=args.invalidation)
    policy = ExecutorPolicy(fuel=args.test_fuel,
                            wall_clock=args.test_wall_clock,
                            retries=args.retries)

    trace = None
    wants_events = bool(args.trace_out or args.trace_chrome or args.remarks)
    if wants_events or args.time_passes:
        from ..trace import QueryTrace
        # --time-passes alone runs the cheaper timer-only sink
        trace = QueryTrace(record_events=wants_events)

    try:
        if args.jobs > 1 or args.cache_dir or args.journal:
            from .parallel import ParallelProbingDriver
            reports = ParallelProbingDriver(
                cfg, jobs=args.jobs, strategy=args.strategy,
                max_tests=args.max_tests, cache_dir=args.cache_dir,
                journal_dir=args.journal, resume=args.resume,
                policy=policy, trace=trace,
                incremental=args.incremental,
                strategy_seed=args.strategy_seed).run()
            report = reports[0]
        else:
            driver = ProbingDriver(cfg, compiler=compiler,
                                   strategy=args.strategy,
                                   max_tests=args.max_tests,
                                   policy=policy, trace=trace,
                                   incremental=args.incremental,
                                   strategy_seed=args.strategy_seed)
            report = driver.run()
    except ProbingError as e:
        print(f"error: {e}", file=sys.stderr)
        if e.explain:
            print(e.explain, file=sys.stderr)
        return 1

    if trace is not None:
        if report.phase_timers is None:
            report.phase_timers = trace.timer.to_dict()
        if not args.time_passes:
            report.phase_timers = None
        if not args.remarks:
            report.remarks = []
        from ..trace import export as trace_export
        if args.trace_out:
            trace_export.write_jsonl(args.trace_out, trace.records)
            print(f"trace written to {args.trace_out}", file=sys.stderr)
        if args.trace_chrome:
            trace_export.write_chrome(args.trace_chrome, trace.records,
                                      trace.timer.to_dict())
            print(f"chrome trace written to {args.trace_chrome}",
                  file=sys.stderr)

    print(render_report(report))
    return 0


def _run_fig(which: str, jobs: int = 1,
             cache_dir: Optional[str] = None) -> int:
    from .. import experiments as ex

    if which == "2":
        print(ex.render_fig2(ex.run_fig2(jobs=jobs)))
    elif which == "3":
        print(ex.run_fig3())
    elif which == "4":
        print(ex.render_fig4(ex.run_fig4(jobs=jobs, cache_dir=cache_dir)))
    elif which == "5":
        print(ex.render_fig5())
    elif which == "5m":
        print(ex.render_fig5_importance_many(
            ex.run_fig5_importance(cache_dir=cache_dir)))
    elif which == "6":
        print(ex.render_fig6(ex.run_fig6()))
    elif which == "7":
        print(ex.render_fig7(ex.run_fig7()))
    elif which == "runtimes":
        print(ex.render_runtimes(ex.run_runtimes()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
