"""The ORAQL alias-analysis pass (paper §IV-A).

"Alias analysis pass" is a misnomer: no analysis is performed.  The pass
is appended as the *final* analysis in the chain, so it only sees queries
no existing analysis could answer, and it replies according to a
predetermined decision sequence:

* a **query cache** keyed on the (unordered) pointer pair — deliberately
  ignoring the location descriptions — serves repeated queries without
  consuming sequence entries, shortening the sequence to probe and
  keeping optimistic responses self-consistent;
* a cache miss consumes the next sequence bit (1 = no-alias, 0 =
  may-alias); past the end of the sequence every unique query is
  answered optimistically;
* ``-opt-aa-target=<substring>`` restricts the pass to functions whose
  target matches (device-only probing, §IV-E), and the probing scope can
  be limited to chosen source files / functions (§IV-B);
* four dump flags ``-opt-aa-dump-{first,cached}`` ×
  ``{optimistic,pessimistic}`` emit Fig.-3-style reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.aliasing import AliasResult
from ..analysis.memloc import MemoryLocation
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.printer import format_instruction
from .sequence import DecisionSequence


@dataclass
class DumpFlags:
    """Which queries to print (at least one of each axis is needed for
    any output, §IV-D)."""

    first: bool = False
    cached: bool = False
    optimistic: bool = False
    pessimistic: bool = False

    def any(self) -> bool:
        return (self.first or self.cached) and (
            self.optimistic or self.pessimistic)


@dataclass
class QueryRecord:
    """One ORAQL query, as recorded for reporting (§IV-D)."""

    index: int                      # unique-query index (-1 for cached)
    optimistic: bool
    cached: bool
    cache_hits: int
    a: MemoryLocation
    b: MemoryLocation
    scope: str                      # containing function
    issuing_pass: str
    #: pipeline ordinal of the (top-level) pass executing when the query
    #: was first issued — the incremental compiler's resume key: a
    #: baseline snapshot taken before this ordinal replays everything
    #: up to the record
    ordinal: int = 0

    def render(self) -> List[str]:
        kind = "Optimistic" if self.optimistic else "Pessimistic"
        lines = [f"[ORAQL] {kind} query [Cached {1 if self.cached else 0}]"]
        for loc in (self.a, self.b):
            lines.append(f"[ORAQL] - {_describe(loc)}")
        lines.append(f"[ORAQL] Scope: {self.scope}")
        da = getattr(self.a.ptr, "dbg", None)
        db = getattr(self.b.ptr, "dbg", None)
        if da is not None:
            lines.append(f"[ORAQL] LocA: {da}")
        if db is not None:
            lines.append(f"[ORAQL] LocB: {db}")
        return lines


def _describe(loc: MemoryLocation) -> str:
    ptr = loc.ptr
    if isinstance(ptr, Instruction):
        body = format_instruction(ptr)
    else:
        body = f"{ptr.type} {ptr.short()}"
    return f"{body} [{loc.size}]"


class OraqlAAPass:
    """The last-resort alias analysis driven by a decision sequence."""

    name = "oraql-aa"

    def __init__(self, sequence: Optional[DecisionSequence] = None,
                 target_filter: Optional[str] = None,
                 probe_functions: Optional[Set[str]] = None,
                 probe_files: Optional[Set[str]] = None,
                 dump: Optional[DumpFlags] = None,
                 enabled: bool = True,
                 cache_enabled: bool = True):
        self.sequence = sequence if sequence is not None else DecisionSequence()
        self.target_filter = target_filter
        self.probe_functions = probe_functions
        self.probe_files = probe_files
        self.dump = dump or DumpFlags()
        self.enabled = enabled
        #: the paper's query cache (§IV-A).  Disabling it is the
        #: ablation: every repeated query then consumes its own sequence
        #: entry, inflating the search space and risking inconsistent
        #: answers for the same pointer pair.
        self.cache_enabled = cache_enabled
        self.ctx = None  # CompilationContext, set via attach()

        # cache keyed on the unordered pointer pair (ids), sizes ignored;
        # values are (optimistic, unique-query index) so a cache hit can
        # be traced back to the sequence entry that decided it
        self.cache: Dict[FrozenSet[int], Tuple[bool, int]] = {}
        self.records: List[QueryRecord] = []
        # Fig. 4 counters
        self.opt_unique = 0
        self.opt_cached = 0
        self.pess_unique = 0
        self.pess_cached = 0
        # per-issuing-pass unique-query attribution (§V-D breakdown)
        self.unique_by_pass: Dict[str, int] = {}
        #: cache hits attributed to (scope, pipeline ordinal) as
        #: ``[optimistic, pessimistic]`` — lets an incremental compile
        #: seed the cached-query counters for work it never replays, so
        #: a spliced final compile reports bit-identical numbers
        self.cached_by: Dict[Tuple[str, int], List[int]] = {}

    # -- wiring -----------------------------------------------------------
    def attach(self, ctx) -> None:
        self.ctx = ctx

    def wants_dump(self) -> bool:
        return self.dump.any()

    # -- scope ------------------------------------------------------------
    def applies_to(self, fn: Optional[Function]) -> bool:
        if not self.enabled:
            return False
        if fn is None:
            return False
        if self.target_filter is not None and \
                self.target_filter not in fn.target:
            return False
        if self.probe_functions is not None:
            # outlined OpenMP regions belong to their parent function
            base = fn.name.split(".omp_outlined")[0]
            if fn.name not in self.probe_functions \
                    and base not in self.probe_functions:
                return False
        if self.probe_files is not None:
            src = fn.source_file
            if src is None or src not in self.probe_files:
                return False
        return True

    # -- the answer -----------------------------------------------------------
    def answer(self, a: MemoryLocation, b: MemoryLocation,
               fn: Optional[Function], issuing_pass: str) -> AliasResult:
        trace = self.ctx.trace if self.ctx is not None else None
        scope = fn.name if fn is not None else "<module>"
        if not self.applies_to(fn):
            if trace is not None:
                trace.oraql_skip(scope, a, b)
            return AliasResult.MAY

        key = frozenset((a.ptr.id, b.ptr.id))
        ordinal = self.ctx.pass_index if self.ctx is not None else 0

        if self.cache_enabled and key in self.cache:
            optimistic, index = self.cache[key]
            if self.ctx is None or not self.ctx.aa.suppress_counters:
                tally = self.cached_by.get((scope, ordinal))
                if tally is None:
                    tally = [0, 0]
                    self.cached_by[(scope, ordinal)] = tally
                if optimistic:
                    self.opt_cached += 1
                    tally[0] += 1
                else:
                    self.pess_cached += 1
                    tally[1] += 1
            if trace is not None:
                trace.oraql_query(scope, a, b, optimistic, cached=True,
                                  index=index)
            if self.dump.cached and (
                    (optimistic and self.dump.optimistic)
                    or (not optimistic and self.dump.pessimistic)):
                rec = QueryRecord(-1, optimistic, True, 1, a, b, scope,
                                  issuing_pass)
                self._emit(rec)
            return AliasResult.NO if optimistic else AliasResult.MAY

        # a narrow incremental run carries a predicted replay schedule;
        # a miss that does not match it aborts the attempt right here
        observe = getattr(self.sequence, "observe", None)
        if observe is not None:
            observe(scope, ordinal)
        index = self.sequence.consumed
        optimistic = self.sequence.next()
        self.cache[key] = (optimistic, index)
        if trace is not None:
            trace.oraql_query(scope, a, b, optimistic, cached=False,
                              index=index)
        if optimistic:
            self.opt_unique += 1
        else:
            self.pess_unique += 1
        self.unique_by_pass[issuing_pass] = \
            self.unique_by_pass.get(issuing_pass, 0) + 1
        rec = QueryRecord(index, optimistic, False, 0, a, b, scope,
                          issuing_pass, ordinal=ordinal)
        self.records.append(rec)
        if self.dump.first and (
                (optimistic and self.dump.optimistic)
                or (not optimistic and self.dump.pessimistic)):
            self._emit(rec)
        return AliasResult.NO if optimistic else AliasResult.MAY

    def _emit(self, rec: QueryRecord) -> None:
        lines = rec.render()
        if self.ctx is not None:
            for line in lines:
                self.ctx.log(line)

    # -- statistics reported back to the driver (LLVM -stats, §IV-A) -------
    @property
    def unique_queries(self) -> int:
        return self.opt_unique + self.pess_unique

    @property
    def cached_queries(self) -> int:
        return self.opt_cached + self.pess_cached

    def statistics(self) -> Dict[str, int]:
        return {
            "unique queries": self.unique_queries,
            "cached queries": self.cached_queries,
            "optimistic unique": self.opt_unique,
            "optimistic cached": self.opt_cached,
            "pessimistic unique": self.pess_unique,
            "pessimistic cached": self.pess_cached,
        }

    def pessimistic_records(self) -> List[QueryRecord]:
        return [r for r in self.records if not r.optimistic]
