"""Second-phase importance mining (ROADMAP item 3).

The probing driver answers *"which optimistic responses are safe?"*;
this module answers the question the original ORAQL driver repo's
``oraql_identify_important.py`` asks next: *"which of those safe
no-alias answers actually buy cycles?"*.  The maximal safe optimistic
set is usually dominated by queries whose answer enables no transform —
flipping them back to may-alias costs nothing.  The few that do move
performance are exactly the alias queries worth building real analyses
for.

Algorithm
---------
Given a completed probing session (safe optimistic set ``S`` over the
unique-query index space ``[0, n)``):

1. measure ``cycles(∅)`` — every safe query flipped back to pessimistic
   (the all-may-alias program, bit-identical to the original baseline)
   — and ``cycles(S)`` — the fully optimistic program — on the
   deterministic VM cycle cost model.  Their difference is the **total
   savings** optimism buys;
2. bisect ``S`` by *measured cycle delta*: flip a candidate group back
   to pessimistic and re-measure.  A group whose flip costs less than
   ``significant_percent`` of baseline cycles is dropped (flipped
   permanently); a significant group is split and re-probed; a
   significant singleton is **important**.  Deltas are measured in the
   *current* context (drops applied immediately), so redundant query
   pairs resolve to one representative instead of hiding each other;
3. if keeping only the important queries optimistic recovers less than
   ``recover_percent`` of the total savings (non-additive interactions),
   re-probe the dropped set against the reduced context until the
   target is met or a refinement round finds nothing new;
4. report the **Pareto front**: important queries ordered by measured
   value, with the cycles recovered by each prefix — the Fig. 5-style
   "versions" table of the original driver repo (its
   ``significant_percentage`` knob is our ``--significant-percent``);
5. attribute every important query to its enabling transform via the
   trace layer: a final traced compile links each index to the issuing
   pass and to the optimization remarks it enabled ("q17 is important
   because it enables LICM hoist in ``kernel_main``").

Every cycle measurement is one compile + one VM run under the
:class:`~repro.oraql.executor.TestExecutor` budgets, cached by
executable hash (flip candidates frequently collapse to identical
binaries), journaled for crash-tolerant ``--resume``, and measured with
a **strict** :class:`~repro.vm.CostModel` so an unpriced opcode crashes
the session instead of silently distorting a delta.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..vm.cost_model import CostModel
from .cache import VerdictCache, config_fingerprint
from .compiler import Compiler
from .config import BenchmarkConfig
from .driver import ProbingDriver, ProbingReport
from .errors import ProbingError
from .executor import ExecutorPolicy, TestExecutor
from .incremental import BaselineCache
from .journal import SessionJournal
from .sequence import DecisionSequence
from .verify import TRIAGE_WRONG_OUTPUT, VerificationScript


class MeasurementBudgetExhausted(RuntimeError):
    """Raised when ``max_measurements`` VM runs have been spent; the
    driver converts it into a partial report flagged ``partial``."""


@dataclass(frozen=True)
class Measurement:
    """One flip candidate's measured cost."""

    cycles: float
    ok: bool                    # the candidate still verified
    exe_hash: str = ""
    from_cache: bool = False


# ---------------------------------------------------------------------------
# cycle oracles
# ---------------------------------------------------------------------------

class SyntheticCycleOracle:
    """A stand-in measurement pipeline with a known cost structure.

    ``cycles(kept) = base − Σ savings[i] (i ∈ kept)
                          − Σ bonus (group ⊆ kept)``

    Per-query ``savings`` model independently profitable answers; joint
    ``groups`` model transforms that need several no-alias answers at
    once (a LICM hoist needing two disambiguations).  The mining
    algorithm is exercised for real — only the compile+run pipeline is
    synthetic, exactly like Fig. 2's :class:`SyntheticOracle` stands in
    for the probing test pipeline.
    """

    def __init__(self, base: float, savings: Dict[int, float],
                 groups: Sequence[Tuple[FrozenSet[int], float]] = (),
                 extra_safe: Iterable[int] = (),
                 max_measurements: Optional[int] = None):
        self.base = float(base)
        self.savings = dict(savings)
        self.groups = [(frozenset(g), float(b)) for g, b in groups]
        self._extra = set(extra_safe)
        self.max_measurements = max_measurements
        self.measurements = 0
        self.distinct: Set[FrozenSet[int]] = set()

    @property
    def safe(self) -> List[int]:
        idx: Set[int] = set(self.savings) | self._extra
        for g, _ in self.groups:
            idx |= g
        return sorted(idx)

    def measure(self, kept: FrozenSet[int]) -> Measurement:
        kept = frozenset(kept)
        if kept not in self.distinct:
            if self.max_measurements is not None \
                    and self.measurements >= self.max_measurements:
                raise MeasurementBudgetExhausted(
                    "synthetic measurement budget exhausted")
            self.measurements += 1
            self.distinct.add(kept)
        cycles = self.base
        cycles -= sum(s for i, s in self.savings.items() if i in kept)
        cycles -= sum(b for g, b in self.groups if g <= kept)
        return Measurement(cycles, True,
                           exe_hash="syn:" + ",".join(
                               str(i) for i in sorted(kept)))


class MeasuredCycleOracle:
    """The real measurement pipeline: compile the flip candidate, run it
    on the deterministic VM, verify, and cache the cycles by executable
    hash (journaled when a session journal is attached).
    """

    def __init__(self, config: BenchmarkConfig, executor: TestExecutor,
                 verifier: VerificationScript, n_queries: int,
                 cost_model: Optional[CostModel] = None,
                 journal: Optional[SessionJournal] = None,
                 verdict_cache: Optional[VerdictCache] = None,
                 max_measurements: int = 2000,
                 incremental: bool = False):
        self.config = config
        self.executor = executor
        self.verifier = verifier
        self.n = n_queries
        self.cost_model = cost_model or CostModel(strict=True)
        self.journal = journal
        self.verdict_cache = verdict_cache
        self._fingerprint = (config_fingerprint(config)
                             if verdict_cache is not None else "")
        self.max_measurements = max_measurements
        #: exe hash -> (cycles, ok); pre-seeded from a replayed journal
        #: so a resumed session retraces the search served from cache
        self._cache: Dict[str, Tuple[float, bool]] = {}
        if journal is not None:
            self._cache.update(journal.measured)
        self.measurements_replayed = len(self._cache)
        # bookkeeping for the report
        self.compiles = 0
        self.measurements_run = 0
        self.measurements_cached = 0
        #: incremental recompilation: each measurement compile splices
        #: from the nearest previous one (bit-identical results, so the
        #: exe-hash measurement cache is oblivious to the mode)
        self.incremental = incremental
        self._baselines = BaselineCache()
        self.incremental_compiles = 0
        self.incremental_fallbacks = 0
        self.pass_executions = 0

    def sequence_for(self, kept: FrozenSet[int]) -> DecisionSequence:
        """Bits for "keep exactly ``kept`` optimistic": every other
        index — the probing pessimistic set, dropped safe queries, and a
        generous pessimistic tail for flip-shifted streams — stays 0."""
        length = 2 * self.n + ProbingDriver.TAIL_PAD
        return DecisionSequence([1 if i in kept else 0
                                 for i in range(length)])

    def measure(self, kept: FrozenSet[int]) -> Measurement:
        self.executor.begin_test()      # chaos/session-kill fault site
        seq = self.sequence_for(kept)
        baseline = (self._baselines.best_for(seq.bits)
                    if self.incremental else None)
        prog = self.executor.compile(self.config, sequence=seq,
                                     oraql_enabled=True,
                                     baseline=baseline,
                                     collect_resume=self.incremental)
        self.compiles += 1
        self.pass_executions += prog.pass_executions
        if self.incremental:
            self._baselines.add(prog)
            if prog.incremental is not None:
                self.incremental_compiles += 1
            elif baseline is not None:
                self.incremental_fallbacks += 1
        exe = prog.exe_hash
        hit = self._cache.get(exe)
        if hit is not None:
            self.measurements_cached += 1
            return Measurement(hit[0], hit[1], exe, from_cache=True)
        if self.measurements_run >= self.max_measurements:
            raise MeasurementBudgetExhausted(
                "importance mining exceeded the measurement budget")
        self.measurements_run += 1
        policy = self.executor.policy
        r = prog.run(fuel=policy.fuel, wall_clock=policy.wall_clock,
                     cost_model=self.cost_model)
        ok = self.verifier.check(r)
        self._cache[exe] = (r.cycles, ok)
        if self.journal is not None:
            self.journal.record_measure(exe, r.cycles, ok)
        if self.verdict_cache is not None:
            self.verdict_cache.put(
                VerdictCache.key(self._fingerprint, exe), ok,
                triage="ok" if ok else TRIAGE_WRONG_OUTPUT)
        return Measurement(r.cycles, ok, exe)


# ---------------------------------------------------------------------------
# the mining algorithm (oracle-agnostic)
# ---------------------------------------------------------------------------

@dataclass
class ParetoPoint:
    """One prefix of the value-ordered important set."""

    k: int                       # how many important queries are kept
    added: Optional[int]         # the query this point adds (None: k=0)
    kept: Tuple[int, ...]
    cycles: float
    cycles_saved: float          # vs. the all-pessimistic baseline
    percent_of_full: float       # of the full optimistic set's savings


@dataclass
class MiningResult:
    """What :func:`mine_important` learned from one oracle."""

    important: List[int]         # discovery order
    dropped: List[int]
    baseline_cycles: float       # all safe queries flipped pessimistic
    optimal_cycles: float        # full safe set optimistic
    important_cycles: float      # only the important set optimistic
    threshold_cycles: float
    #: flip delta observed at discovery time (∞: the flip broke
    #: verification, so the query cannot be given up at any price)
    savings_by_query: Dict[int, float] = field(default_factory=dict)
    pareto: List[ParetoPoint] = field(default_factory=list)
    flip_failures: int = 0
    refinement_rounds: int = 0
    #: the measurement budget ran out: ``important`` is the best-known
    #: set, not a verified one
    partial: bool = False

    @property
    def total_savings(self) -> float:
        return self.baseline_cycles - self.optimal_cycles

    @property
    def recovered_savings(self) -> float:
        return self.baseline_cycles - self.important_cycles

    @property
    def recovered_percent(self) -> float:
        if self.total_savings <= 0:
            return 100.0
        return 100.0 * self.recovered_savings / self.total_savings

    def by_value(self) -> List[int]:
        """Important indices ordered by measured value (best first);
        ∞-valued (verification-required) queries lead."""
        return sorted(self.important,
                      key=lambda i: (-self.savings_by_query.get(i, 0.0), i))


def mine_important(oracle, safe: Sequence[int], threshold: float,
                   recover_percent: float = 95.0,
                   max_refinement_rounds: int = 8) -> MiningResult:
    """Bisect ``safe`` by measured cycle delta against ``oracle``.

    ``oracle`` needs one method — ``measure(kept: frozenset) ->
    Measurement`` — making the search testable against
    :class:`SyntheticCycleOracle` and runnable against
    :class:`MeasuredCycleOracle`.  Deterministic: same oracle behaviour
    and arguments ⇒ same result, measurement for measurement.
    """
    safe_sorted = sorted(set(safe))
    result = MiningResult([], [], 0.0, 0.0, 0.0, threshold)

    def cycles_of(kept: Set[int]) -> float:
        m = oracle.measure(frozenset(kept))
        if not m.ok:
            # flipping optimistic answers to pessimistic should always
            # be safe; a failing candidate means the flip shifted the
            # query stream into unsafe optimism.  The flip is simply
            # not available: infinitely costly.
            result.flip_failures += 1
            return math.inf
        return m.cycles

    try:
        result.optimal_cycles = cycles_of(set(safe_sorted))
        result.baseline_cycles = cycles_of(set())
        result.important_cycles = result.baseline_cycles

        def bisect(groups: Sequence[Sequence[int]], kept: Set[int],
                   bar: float) -> None:
            current = cycles_of(kept)
            queue: Deque[List[int]] = deque(list(g) for g in groups)
            while queue:
                group = [i for i in queue.popleft()
                         if i in kept and i not in result.important]
                if not group:
                    continue
                flipped = cycles_of(kept - set(group))
                delta = flipped - current
                if delta < bar:
                    # the whole group's optimism buys nothing: flip it
                    # permanently and keep measuring in the new context
                    kept -= set(group)
                    current = flipped
                elif len(group) == 1:
                    result.important.append(group[0])
                    result.savings_by_query[group[0]] = delta
                else:
                    mid = len(group) // 2
                    queue.append(group[:mid])
                    queue.append(group[mid:])

        bisect([safe_sorted], set(safe_sorted), threshold)
        result.important_cycles = cycles_of(set(result.important))

        # refinement: the first pass can undershoot the recovery target
        # two ways.  Non-additive interactions hide value in the dropped
        # set (a transform needing dropped q_a *and* q_b loses nothing
        # when either half is flipped alongside the other), so re-probe
        # the dropped set against the reduced context.  And the residual
        # win can be spread across queries each individually below the
        # significance bar — when a re-probe at the current bar learns
        # nothing new, halve the bar and try again: the bar stays the
        # *reporting* threshold, but ``recover_percent`` is a contract,
        # and every extra query still carries its honestly measured
        # (sub-threshold) delta.
        target = (recover_percent / 100.0) * result.total_savings
        bar = threshold
        while (result.refinement_rounds < max_refinement_rounds
               and result.total_savings > 0
               and result.recovered_savings < target):
            dropped_now = [i for i in safe_sorted
                           if i not in result.important]
            if not dropped_now:
                break
            result.refinement_rounds += 1
            found_before = len(result.important)
            bisect([dropped_now],
                   set(result.important) | set(dropped_now), bar)
            if len(result.important) == found_before:
                bar /= 2.0
                if bar < 1.0:
                    break
                continue
            result.important_cycles = cycles_of(set(result.important))
    except MeasurementBudgetExhausted:
        result.partial = True

    result.dropped = [i for i in safe_sorted if i not in result.important]

    # the Pareto front: value-ordered prefixes of the important set
    try:
        points = [ParetoPoint(0, None, (), result.baseline_cycles, 0.0, 0.0)]
        kept: List[int] = []
        for q in result.by_value():
            kept.append(q)
            c = cycles_of(set(kept))
            saved = result.baseline_cycles - c
            pct = (100.0 * saved / result.total_savings
                   if result.total_savings > 0 else 0.0)
            points.append(ParetoPoint(len(kept), q, tuple(kept), c,
                                      saved, pct))
        result.pareto = points
    except MeasurementBudgetExhausted:
        result.partial = True
        result.pareto = points
    return result


# ---------------------------------------------------------------------------
# provenance attribution
# ---------------------------------------------------------------------------

@dataclass
class ImportantQuery:
    """One query whose optimism measurably buys cycles, linked to the
    transform(s) it enables."""

    index: int
    cycles_saved: float          # flip delta at discovery
    percent_of_baseline: float
    issuing_pass: str = "?"
    function: str = "?"
    fingerprint: str = ""
    #: rendered remarks of transforms this query's answer enabled
    remarks: List[str] = field(default_factory=list)

    def describe(self) -> str:
        saved = ("required (flip breaks verification)"
                 if math.isinf(self.cycles_saved)
                 else f"{self.cycles_saved:.0f} cycles "
                      f"({self.percent_of_baseline:.2f}% of baseline)")
        head = (f"q{self.index}: {saved} — asked by {self.issuing_pass} "
                f"in {self.function}")
        if self.remarks:
            return head + "\n" + "\n".join(f"    enables: {r}"
                                           for r in self.remarks)
        return head


def attribute_queries(config: BenchmarkConfig, compiler: Compiler,
                      full_sequence: DecisionSequence,
                      mining: MiningResult) -> List[ImportantQuery]:
    """Compile the full-safe sequence once with tracing and link every
    important index to its issuing pass, enclosing function, pointer
    fingerprint, and the remarks its answer enabled."""
    from ..trace import QueryTrace

    trace = QueryTrace()
    compiler.compile(config, sequence=full_sequence, oraql_enabled=True,
                     trace=trace)
    unique: Dict[int, dict] = {}
    enabling: Dict[int, List[str]] = {}
    from ..trace import events as ev
    for rec in trace.records:
        if ev.is_oraql_query(rec) and not rec.get("cached"):
            unique.setdefault(rec["index"], rec)
        elif rec.get("t") == "r":
            for q in rec.get("queries", ()):
                enabling.setdefault(q, []).append(ev.render_remark(rec))
    out: List[ImportantQuery] = []
    base = mining.baseline_cycles or 1.0
    for index in mining.by_value():
        saved = mining.savings_by_query.get(index, 0.0)
        rec = unique.get(index, {})
        out.append(ImportantQuery(
            index=index,
            cycles_saved=saved,
            percent_of_baseline=(0.0 if math.isinf(saved)
                                 else 100.0 * saved / base),
            issuing_pass=rec.get("pass", "?"),
            function=rec.get("function", "?"),
            fingerprint=rec.get("fp", ""),
            remarks=enabling.get(index, [])))
    return out


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

@dataclass
class ImportanceReport:
    """Everything the importance driver learned about one config."""

    config_name: str
    strategy: str
    significant_percent: float
    recover_percent: float
    unique_queries: int = 0
    safe_queries: int = 0
    pessimistic_indices: List[int] = field(default_factory=list)
    baseline_cycles: float = 0.0
    optimal_cycles: float = 0.0
    important_cycles: float = 0.0
    threshold_cycles: float = 0.0
    important: List[ImportantQuery] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)
    pareto: List[ParetoPoint] = field(default_factory=list)
    refinement_rounds: int = 0
    flip_failures: int = 0
    # measurement effort
    compiles: int = 0
    measurements_run: int = 0
    measurements_cached: int = 0
    measurements_replayed: int = 0
    #: incremental recompilation (``--incremental on``), across both
    #: phases: phase-1 numbers live in ``probing``; these cover the
    #: phase-2 measurement compiles
    incremental_enabled: bool = False
    incremental_compiles: int = 0
    incremental_fallbacks: int = 0
    pass_executions: int = 0
    #: measurement budget ran out — best-known partial result
    partial: bool = False
    # strict cost-model bookkeeping (non-empty = distorted measurements)
    unknown_opcodes: Dict[str, int] = field(default_factory=dict)
    unknown_intrinsics: Dict[str, int] = field(default_factory=dict)
    #: the first-phase probing report this run built on
    probing: Optional[ProbingReport] = None

    @property
    def total_savings(self) -> float:
        return self.baseline_cycles - self.optimal_cycles

    @property
    def recovered_savings(self) -> float:
        return self.baseline_cycles - self.important_cycles

    @property
    def recovered_percent(self) -> float:
        if self.total_savings <= 0:
            return 100.0
        return 100.0 * self.recovered_savings / self.total_savings

    def summary(self) -> str:
        extra = ", PARTIAL (budget)" if self.partial else ""
        return (f"{self.config_name}: {len(self.important)} of "
                f"{self.safe_queries} safe queries are important "
                f"(>{self.significant_percent:g}% of baseline cycles); "
                f"they recover {self.recovered_percent:.1f}% of the "
                f"{self.total_savings:.0f}-cycle optimism win "
                f"[{self.compiles} compiles, {self.measurements_run} "
                f"measured, {self.measurements_cached} cached{extra}]")


class ImportanceDriver:
    """Runs probing (phase 1) then importance mining (phase 2)."""

    def __init__(self, config: BenchmarkConfig,
                 strategy: str = "chunked",
                 significant_percent: float = 2.0,
                 recover_percent: float = 95.0,
                 max_tests: int = 10_000,
                 max_measurements: int = 2000,
                 compiler: Optional[Compiler] = None,
                 policy: Optional[ExecutorPolicy] = None,
                 verdict_cache: Optional[VerdictCache] = None,
                 journal_dir: Optional[str] = None,
                 resume: bool = False,
                 injector=None,
                 strict_cost: bool = True,
                 incremental: str = "off"):
        if significant_percent < 0:
            raise ValueError("significant_percent must be >= 0")
        if not 0 < recover_percent <= 100:
            raise ValueError("recover_percent must be in (0, 100]")
        if incremental not in ("on", "off"):
            raise ValueError(f"unknown incremental mode {incremental!r}")
        self.config = config
        self.strategy = strategy
        self.significant_percent = significant_percent
        self.recover_percent = recover_percent
        self.max_tests = max_tests
        self.max_measurements = max_measurements
        self.compiler = compiler or Compiler()
        self.policy = policy or ExecutorPolicy()
        self.verdict_cache = verdict_cache
        self.journal_dir = journal_dir
        self.resume = resume
        self.injector = injector
        self.cost_model = CostModel(strict=strict_cost)
        self.incremental = incremental

    def _importance_journal(self) -> Optional[SessionJournal]:
        if self.journal_dir is None:
            return None
        import os
        fp = config_fingerprint(self.config)
        name = (f"{self.config.name}-{fp}-importance-"
                f"{self.strategy}.journal.jsonl")
        return SessionJournal(os.path.join(self.journal_dir, name), fp,
                              f"importance-{self.strategy}",
                              resume=self.resume)

    def run(self) -> ImportanceReport:
        report = ImportanceReport(self.config.name, self.strategy,
                                  self.significant_percent,
                                  self.recover_percent)

        # -- phase 1: the probing driver finds the safe optimistic set
        probing_journal = (SessionJournal.for_config(
            self.journal_dir, self.config, self.strategy,
            resume=self.resume) if self.journal_dir else None)
        driver = ProbingDriver(self.config, compiler=self.compiler,
                               strategy=self.strategy,
                               max_tests=self.max_tests,
                               verdict_cache=self.verdict_cache,
                               policy=self.policy,
                               journal=probing_journal,
                               injector=self.injector,
                               incremental=self.incremental)
        probing = driver.run()
        report.probing = probing
        if probing.budget_exhausted:
            raise ProbingError(
                "importance mining needs a completed probing phase, but "
                "the probing test budget ran out — raise --max-tests")
        n = probing.opt_unique + probing.pess_unique
        pess = set(probing.pessimistic_indices)
        safe = [i for i in range(n) if i not in pess]
        report.unique_queries = n
        report.safe_queries = len(safe)
        report.pessimistic_indices = sorted(pess)

        # -- phase 2: cycle-delta bisection of the safe set
        journal = self._importance_journal()
        executor = TestExecutor(self.compiler, policy=self.policy,
                                injector=self.injector)
        executor.begin_session()
        oracle = MeasuredCycleOracle(
            self.config, executor, driver.verifier, n,
            cost_model=self.cost_model, journal=journal,
            verdict_cache=self.verdict_cache,
            max_measurements=self.max_measurements,
            incremental=self.incremental == "on")
        # the threshold is a fraction of *baseline* cycles, matching the
        # original driver's significant_percentage-of-runtime contract
        baseline = oracle.measure(frozenset()).cycles
        threshold = (self.significant_percent / 100.0) * baseline
        mining = mine_important(oracle, safe, threshold,
                                recover_percent=self.recover_percent)

        report.baseline_cycles = mining.baseline_cycles
        report.optimal_cycles = mining.optimal_cycles
        report.important_cycles = mining.important_cycles
        report.threshold_cycles = mining.threshold_cycles
        report.dropped = mining.dropped
        report.pareto = mining.pareto
        report.refinement_rounds = mining.refinement_rounds
        report.flip_failures = mining.flip_failures
        report.partial = mining.partial
        report.compiles = oracle.compiles
        report.measurements_run = oracle.measurements_run
        report.measurements_cached = oracle.measurements_cached
        report.measurements_replayed = oracle.measurements_replayed
        report.incremental_enabled = self.incremental == "on"
        report.incremental_compiles = oracle.incremental_compiles
        report.incremental_fallbacks = oracle.incremental_fallbacks
        report.pass_executions = oracle.pass_executions
        report.unknown_opcodes = dict(self.cost_model.unknown_opcodes)
        report.unknown_intrinsics = dict(self.cost_model.unknown_intrinsics)

        # -- phase 3: provenance attribution via the trace layer
        report.important = attribute_queries(
            self.config, self.compiler, probing.final_sequence, mining)

        if journal is not None and not report.partial:
            journal.record_done([q.index for q in report.important])
        return report
