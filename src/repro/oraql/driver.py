"""The ORAQL probing driver (paper §IV-B).

Workflow (Fig. 1):

1. compile + run with the ORAQL pass deactivated; the verification
   script must accept this baseline (its output also serves as the
   reference when the config does not ship one);
2. attempt the *empty sequence* — every query answered no-alias; if the
   tests still pass, report full optimism and stop;
3. otherwise bisect to pin down the queries that must be answered
   pessimistically.  The search policy is a pluggable
   :class:`~repro.oraql.strategies.Strategy` (propose/observe/done
   lifecycle, ``repro.oraql.strategies``); the registry ships the
   paper's two —

   * **chunked** — exploit that the query stream up to index k depends
     only on the answers to queries < k: repeatedly re-try "prefix +
     all-optimistic", and when it fails, binary-search the earliest
     failing decision, fix it pessimistic, extend the prefix, repeat.
     The binary-search sibling whose outcome is implied by its parent
     and its tested sibling is *deduced*, not run (Fig. 2's dotted
     arrow);
   * **frequency** — split the index space by residue classes
     (even/odd, then mod 4, ...), descriptors independent of the
     sequence length; clustered dangerous queries force descent to
     near-singleton classes, which is why chunked usually wins —

   plus the strategy lab's **provenance-prior** (learned danger
   ordering) and **mcts** (seeded tree search over decision subsets);

4. every candidate executable is hashed; a sequence that produces a
   bit-identical executable reuses the recorded test verdict instead of
   re-running the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..faults.injector import FaultInjector
from .cache import VerdictCache, config_fingerprint
from .compiler import CompiledProgram, Compiler
from .config import BenchmarkConfig
from .errors import FlakyConfigError, ProbingError
from .executor import ExecutorPolicy, TestExecutor, TestOutcome
from .incremental import BaselineCache
from .journal import SessionJournal
from .pass_ import DumpFlags, OraqlAAPass, QueryRecord
from .sequence import DecisionSequence, sequence_from_pessimistic_set
from .strategies import StrategyContext, create_strategy, strategy_names
from .verify import RunResult, VerificationScript, triage_run


class TestBudgetExhausted(RuntimeError):
    """Raised internally when ``max_tests`` is reached; the driver
    converts it into a partial report flagged ``budget_exhausted``."""


@dataclass
class ProbingReport:
    """Everything the driver learned about one benchmark configuration."""

    config_name: str
    fully_optimistic: bool
    final_sequence: DecisionSequence
    pessimistic_indices: List[int]
    #: the search strategy that produced this report
    strategy: str = "chunked"
    # Fig. 4 columns
    opt_unique: int = 0
    opt_cached: int = 0
    pess_unique: int = 0
    pess_cached: int = 0
    no_alias_original: int = 0
    no_alias_oraql: int = 0
    # probing effort
    compiles: int = 0
    tests_run: int = 0
    tests_cached: int = 0
    tests_deduced: int = 0
    tests_speculated: int = 0
    #: persistent verdict-cache traffic (0/0 when no cache is attached)
    cache_hits: int = 0
    cache_misses: int = 0
    #: triage class -> number of *executed* tests that ended that way
    #: (cached/deduced verdicts are not re-triaged)
    triage_counts: Dict[str, int] = field(default_factory=dict)
    #: transient-fault retries the executor performed (compiler faults)
    retries: int = 0
    #: nondeterminism-probe re-runs (a mismatch executed twice)
    nondet_reruns: int = 0
    #: verdicts replayed from a session journal on ``--resume``
    tests_replayed: int = 0
    #: worker-side failures the parallel engine survived (speculative
    #: probes lost, workers respawned, configs requeued)
    worker_errors: List[str] = field(default_factory=list)
    #: the probing session itself failed; ``error`` says how.  Only the
    #: parallel fan-out produces failed reports (a sequential session
    #: raises instead) — one crashing config must not lose the fleet
    failed: bool = False
    error: Optional[str] = None
    #: True when ``max_tests`` ran out: ``pessimistic_indices`` is the
    #: best-known (possibly insufficient) set rather than a verified
    #: locally-maximal one
    budget_exhausted: bool = False
    #: AnalysisManager bookkeeping summed over every in-process compile:
    #: analysis name -> number of from-scratch constructions, and the
    #: rebuilds fine-grained invalidation avoided (cache hits on results
    #: that survived an invalidation event)
    analysis_builds: Dict[str, int] = field(default_factory=dict)
    analysis_preserved_hits: Dict[str, int] = field(default_factory=dict)
    #: incremental recompilation (``--incremental on``): probe compiles
    #: served from a baseline by the delta-keyed splicing path, probes
    #: that attempted it but fell back to a full compile, and what the
    #: incremental compiles reused.  ``pass_executions`` counts pass
    #: runs across *every* compile of the session (full ones included)
    #: and is tracked regardless of the switch — it is the differential
    #: benchmark's headline metric.
    incremental_enabled: bool = False
    incremental_compiles: int = 0
    incremental_fallbacks: int = 0
    functions_reoptimized: int = 0
    functions_spliced: int = 0
    #: of the re-optimized functions, how many resumed mid-pipeline from
    #: a baseline body snapshot, and the function-pass executions those
    #: resumes skipped (passes below each resume ordinal)
    functions_resumed: int = 0
    passes_resumed_past: int = 0
    codegen_cache_hits: int = 0
    codegen_cache_misses: int = 0
    pass_executions: int = 0
    #: content hash of the final executable — the cross-process identity
    #: the service's bit-identity contract is stated in (the live
    #: ``final_program`` does not survive :meth:`detach_for_transport`)
    final_exe_hash: Optional[str] = None
    # provenance
    unique_by_pass: Dict[str, int] = field(default_factory=dict)
    pessimistic_records: List[QueryRecord] = field(default_factory=list)
    #: pre-rendered Fig. 3 dump, filled when the live records are
    #: detached for cross-process transport
    pessimistic_dump: Optional[str] = None
    #: serialized phase-timer tree (``-time-passes``), present when the
    #: session ran with tracing; merged across workers by the parallel
    #: engine
    phase_timers: Optional[dict] = None
    #: rendered ``-Rpass``-style remarks from the *final* compile,
    #: present when the session ran with tracing
    remarks: List[str] = field(default_factory=list)
    final_program: Optional[CompiledProgram] = None
    baseline_program: Optional[CompiledProgram] = None

    @property
    def no_alias_delta_percent(self) -> float:
        if self.no_alias_original == 0:
            return 0.0
        return 100.0 * (self.no_alias_oraql - self.no_alias_original) \
            / self.no_alias_original

    def summary(self) -> str:
        if self.failed:
            return f"{self.config_name}: FAILED ({self.error})"
        extra = ""
        if self.cache_hits or self.cache_misses:
            extra += f", {self.cache_hits} verdict-cache hits"
        if self.tests_replayed:
            extra += f", {self.tests_replayed} journal-replayed"
        if self.retries:
            extra += f", {self.retries} retries"
        if self.budget_exhausted:
            extra += ", BUDGET EXHAUSTED"
        return (
            f"{self.config_name}: opt {self.opt_unique}/{self.opt_cached} "
            f"pess {self.pess_unique}/{self.pess_cached} "
            f"no-alias {self.no_alias_original} -> {self.no_alias_oraql} "
            f"({self.no_alias_delta_percent:+.1f}%) "
            f"[{self.compiles} compiles, {self.tests_run} tests, "
            f"{self.tests_cached} cached, {self.tests_deduced} deduced"
            f"{extra}]")

    def detach_for_transport(self) -> "ProbingReport":
        """Drop live compiler objects so the report survives pickling
        across process boundaries; the Fig. 3 dump is pre-rendered."""
        from .report import render_pessimistic_dump
        if self.pessimistic_records:
            self.pessimistic_dump = render_pessimistic_dump(self)
        self.pessimistic_records = []
        self.final_program = None
        self.baseline_program = None
        return self


class ProbingDriver:
    """Finds a locally-maximal set of optimistic answers for one config."""

    #: sequence padding so "everything beyond the known range" stays
    #: pessimistic while we probe (the pass answers past-the-end queries
    #: optimistically, so explicit 0-padding expresses "pessimistic tail")
    TAIL_PAD = 4

    def __init__(self, config: BenchmarkConfig,
                 compiler: Optional[Compiler] = None,
                 strategy: str = "chunked",
                 max_tests: int = 10_000,
                 verdict_cache: Optional[VerdictCache] = None,
                 policy: Optional[ExecutorPolicy] = None,
                 executor: Optional[TestExecutor] = None,
                 journal: Optional[SessionJournal] = None,
                 injector: Optional[FaultInjector] = None,
                 trace=None,
                 incremental: str = "off",
                 baselines: Optional[BaselineCache] = None,
                 strategy_seed: int = 0):
        if strategy not in strategy_names():
            raise ValueError(
                f"unknown strategy {strategy!r} (known: "
                f"{', '.join(strategy_names())})")
        if incremental not in ("on", "off"):
            raise ValueError(f"unknown incremental mode {incremental!r}")
        self.config = config
        self.compiler = compiler or Compiler()
        self.strategy = strategy
        #: seed for randomized strategies (mcts); a pure function of the
        #: seed + observed verdicts, so resume stays bit-identical
        self.strategy_seed = strategy_seed
        self.incremental = incremental == "on"
        #: recent probe programs, candidate baselines for delta-keyed
        #: incremental recompilation (``--incremental on``).  An
        #: externally supplied cache outlives this driver: the service's
        #: workers share one pool per config fingerprint, so concurrent
        #: sessions on the same workload hash-hit each other's compiles
        self._baselines = baselines if baselines is not None \
            else BaselineCache()
        self.max_tests = max_tests
        self.verifier: Optional[VerificationScript] = None
        self.verdict_cache = verdict_cache
        self.trace = trace
        self.executor = executor or TestExecutor(self.compiler,
                                                 policy=policy,
                                                 injector=injector,
                                                 trace=trace)
        if executor is not None and trace is not None:
            executor.trace = trace
        self.journal = journal
        self._fingerprint = (config_fingerprint(config)
                             if verdict_cache is not None else "")
        #: exe hash -> (ok, triage); verdicts this session already knows
        self._hash_cache: Dict[str, Tuple[bool, str]] = {}
        #: best-known pessimistic set, maintained by the strategies so a
        #: budget-exhausted run can still report partial progress
        self._best_pessimistic: Set[int] = set()
        self._report = ProbingReport(config.name, False, DecisionSequence(),
                                     [], strategy=strategy)
        self._report.incremental_enabled = self.incremental
        #: the most recent in-process probe compile; provenance source
        #: for learned strategies (StrategyContext.records)
        self._last_program: Optional[CompiledProgram] = None
        if injector is not None:
            # durability faults need the file paths to tear
            if verdict_cache is not None:
                injector.cache_path = verdict_cache.path
            if journal is not None:
                injector.journal_path = journal.path
        if journal is not None and journal.replayed:
            # resume: replaying journaled verdicts into the hash cache
            # makes the deterministic search retrace its exact path,
            # serving replayed probes from cache instead of re-running
            for exe, (ok, _n, triage) in journal.replayed.items():
                self._hash_cache[exe] = (ok, triage)
            self._report.tests_replayed = len(journal.replayed)

    # -- the test oracle -----------------------------------------------------
    def _compile(self, sequence: Optional[DecisionSequence],
                 oraql_enabled: bool = True,
                 label: str = "probe") -> CompiledProgram:
        self._report.compiles += 1
        if self.trace is not None:
            self.trace.begin_compile(
                label, bits=sequence.bits if sequence is not None else None)
        # incremental mode: probes AND the final compile run against
        # the cached baseline whose decision stream agrees with this
        # sequence the longest.  Only the oraql-off baseline stays full
        # (its decision universe is disjoint).  The final compile's
        # report numbers are safe because the incremental path seeds
        # every counter bit-identical to a full compile; the typical
        # final is a pure splice of the accepted probe (delta = None).
        baseline = None
        eligible = (self.incremental and label in ("probe", "final")
                    and oraql_enabled and sequence is not None)
        if eligible:
            baseline = self._baselines.best_for(sequence.bits)
        prog = self.executor.compile(self.config, sequence=sequence,
                                     oraql_enabled=oraql_enabled,
                                     baseline=baseline,
                                     collect_resume=eligible)
        r = self._report
        r.pass_executions += prog.pass_executions
        if prog.incremental is not None:
            inc = prog.incremental
            r.incremental_compiles += 1
            r.functions_reoptimized += inc.reoptimized
            r.functions_spliced += inc.spliced
            r.functions_resumed += inc.resumed
            r.passes_resumed_past += inc.passes_resumed_past
            r.codegen_cache_hits += inc.codegen_hits
            r.codegen_cache_misses += inc.codegen_misses
        elif baseline is not None:
            r.incremental_fallbacks += 1
        if eligible:
            self._baselines.add(prog)
        counters = prog.analysis_counters
        for name, n in counters["builds"].items():
            self._report.analysis_builds[name] = \
                self._report.analysis_builds.get(name, 0) + n
        for name, n in counters["preserved_hits"].items():
            self._report.analysis_preserved_hits[name] = \
                self._report.analysis_preserved_hits.get(name, 0) + n
        return prog

    def _test(self, sequence: DecisionSequence) -> TestOutcome:
        self.executor.begin_test()
        prog = self._compile(sequence)
        self._last_program = prog
        n = prog.oraql.unique_queries
        return self._verdict_for(
            prog.exe_hash, n,
            lambda: self.executor.run_and_verify(prog, self.verifier))

    def _verdict_for(self, exe_hash: str, unique_queries: int,
                     run_test: Callable[[], TestOutcome]) -> TestOutcome:
        """Verdict lookup chain: in-memory hash cache (pre-seeded from
        the session journal on resume), then the persistent verdict
        cache, then actually running the tests (charged against the
        budget, triaged, and recorded in journal and caches)."""
        cached = self._hash_cache.get(exe_hash)
        if cached is not None:
            ok, triage = cached
            self._report.tests_cached += 1
            return TestOutcome(ok, unique_queries, exe_hash,
                               from_cache=True, triage=triage)
        key = None
        if self.verdict_cache is not None:
            key = VerdictCache.key(self._fingerprint, exe_hash)
            record = self.verdict_cache.get_record(key)
            if record is not None:
                verdict, triage = record
                self._report.cache_hits += 1
                self._report.tests_cached += 1
                self._hash_cache[exe_hash] = (
                    verdict,
                    triage or ("ok" if verdict else "wrong-output"))
                self._journal_probe(exe_hash, verdict, unique_queries,
                                    self._hash_cache[exe_hash][1])
                return TestOutcome(verdict, unique_queries, exe_hash,
                                   from_cache=True, triage=triage)
            self._report.cache_misses += 1
        if self._report.tests_run >= self.max_tests:
            raise TestBudgetExhausted("probing exceeded the test budget")
        self._report.tests_run += 1
        outcome = run_test()
        self._book_outcome(outcome)
        if outcome.flaky:
            raise FlakyConfigError(
                f"nondeterministic verdict for {self.config.name}: the "
                f"same executable ({exe_hash[:12]}…) passed and failed "
                f"verification — config quarantined",
                outcome=outcome, explain=self._explain(outcome))
        self._hash_cache[exe_hash] = (outcome.ok, outcome.triage)
        self._journal_probe(exe_hash, outcome.ok, unique_queries,
                            outcome.triage)
        if key is not None:
            self.verdict_cache.put(key, outcome.ok, triage=outcome.triage)
        return outcome

    def _book_outcome(self, outcome: TestOutcome) -> None:
        r = self._report
        r.triage_counts[outcome.triage] = \
            r.triage_counts.get(outcome.triage, 0) + 1
        r.retries = self.executor.retries_used
        r.nondet_reruns = self.executor.nondet_reruns

    def _journal_probe(self, exe_hash: str, ok: bool, n: int,
                       triage: str) -> None:
        if self.journal is not None:
            self.journal.record_probe(exe_hash, ok, n, triage)

    def _explain(self, outcome: TestOutcome) -> Optional[str]:
        if outcome.run is not None and self.verifier is not None:
            return self.verifier.explain(outcome.run)
        return None

    def _speculate(self, sequences: List[DecisionSequence]) -> None:
        """Hint that these sequences are likely to be tested next.

        The sequential driver ignores the hint; the parallel engine
        overrides this to launch the compilations+tests in worker
        processes ahead of need (speculative bisection)."""

    # -- main entry ----------------------------------------------------------
    def run(self) -> ProbingReport:
        report = self._report
        cfg = self.config
        self.executor.begin_session()
        if self.trace is not None:
            self.trace.session(cfg.name, self.strategy)

        # 1. baseline: ORAQL deactivated
        baseline = self._compile(None, oraql_enabled=False,
                                 label="baseline")
        report.baseline_program = baseline
        report.no_alias_original = baseline.no_alias_count
        base_run = baseline.run(fuel=self.executor.policy.fuel,
                                wall_clock=self.executor.policy.wall_clock)
        references = list(cfg.reference_outputs)
        if not references:
            if not base_run.ok:
                raise ProbingError(
                    f"baseline run failed: {base_run.state} "
                    f"({base_run.error})",
                    triage=triage_run(base_run))
            references = [base_run.stdout]
        self.verifier = VerificationScript(references, cfg.output_filters)
        if not self.verifier.check(base_run):
            raise ProbingError(
                "baseline does not verify against the reference output",
                triage=self.verifier.triage(base_run),
                explain=self.verifier.explain(base_run))

        # 2. the fully optimistic attempt (empty sequence)
        pess: Set[int] = set()
        try:
            first = self._test(DecisionSequence())
            if first.ok:
                report.fully_optimistic = True
            else:
                # 3. bisection, by the configured strategy
                pess = self._probe(first)
        except TestBudgetExhausted:
            # budget-graceful degradation: keep everything learned so
            # far instead of losing the whole run
            report.budget_exhausted = True
            pess = set(self._best_pessimistic)

        # 4. final compile with the discovered sequence, full bookkeeping
        final_seq = sequence_from_pessimistic_set(pess)
        final = self._compile(final_seq, label="final")
        final_run = final.run(fuel=self.executor.policy.fuel,
                              wall_clock=self.executor.policy.wall_clock)
        if not self.verifier.check(final_run) and not report.budget_exhausted:
            raise ProbingError(
                "final sequence does not verify — non-deterministic "
                "compilation or verification",
                triage=self.verifier.triage(final_run),
                explain=self.verifier.explain(final_run))
        report.final_sequence = final_seq
        report.pessimistic_indices = sorted(pess)
        report.final_program = final
        report.final_exe_hash = final.exe_hash
        oraql = final.oraql
        report.opt_unique = oraql.opt_unique
        report.opt_cached = oraql.opt_cached
        report.pess_unique = oraql.pess_unique
        report.pess_cached = oraql.pess_cached
        report.no_alias_oraql = final.no_alias_count
        report.unique_by_pass = dict(oraql.unique_by_pass)
        report.pessimistic_records = oraql.pessimistic_records()
        report.retries = self.executor.retries_used
        report.nondet_reruns = self.executor.nondet_reruns
        if self.journal is not None and not report.budget_exhausted:
            self.journal.record_done(report.pessimistic_indices)
        if self.trace is not None:
            self.trace.record_done(report.pessimistic_indices)
            report.phase_timers = self.trace.timer.to_dict()
            report.remarks = self.trace.remark_lines("final")
        return report

    # -- the strategy lifecycle loop --------------------------------------
    def _probe(self, first: TestOutcome) -> Set[int]:
        """Drive the configured strategy through its propose/observe
        lifecycle.  The strategy owns the search policy; the driver
        owns compilation, verdict caching, journaling, and budgets."""
        strat = create_strategy(self.strategy, seed=self.strategy_seed)
        records = (list(self._last_program.oraql.records)
                   if self._last_program is not None else [])
        ctx = StrategyContext(first=first, records=records,
                              tail_pad=self.TAIL_PAD,
                              explain=self._explain)
        base_deduced = self._report.tests_deduced
        strat.start(ctx)
        while not strat.done():
            probe = strat.propose()
            # best_known() before the probe: a budget exhausted inside
            # _test still reports every index learned so far
            self._best_pessimistic = set(strat.best_known())
            if probe.speculations:
                self._speculate(probe.speculations)
            outcome = self._test(probe.sequence)
            strat.observe(probe, outcome)
            self._report.tests_deduced = base_deduced + strat.deduced
        self._best_pessimistic = set(strat.best_known())
        return strat.result()
