"""Structured probing failures.

The driver used to raise bare ``RuntimeError`` strings; a failed
probing session then told the operator *that* something went wrong but
not *what the program did*.  :class:`ProbingError` carries the failing
:class:`~repro.oraql.executor.TestOutcome` (verdict + triage class) and
the verification script's :meth:`~repro.oraql.verify.VerificationScript.
explain` diff, so every failure is actionable.

Subclasses ``RuntimeError`` so existing ``except RuntimeError`` call
sites (and tests matching on the message) keep working.
"""

from __future__ import annotations

from typing import Optional


class ProbingError(RuntimeError):
    """A probing session failed in a structured, reportable way."""

    def __init__(self, message: str, outcome=None,
                 explain: Optional[str] = None,
                 triage: Optional[str] = None):
        self.outcome = outcome
        self.explain = explain
        self.triage = triage or (outcome.triage if outcome is not None
                                 else None)
        parts = [message]
        if self.triage:
            parts.append(f"[triage: {self.triage}]")
        if explain:
            parts.append(explain)
        super().__init__(" — ".join(parts))


class FlakyConfigError(ProbingError):
    """The nondeterminism probe saw the same executable produce two
    different verdicts: the configuration is quarantined instead of
    letting a flaky run mis-pin queries as dangerous."""


class JournalError(ProbingError):
    """The session journal cannot be used (header mismatch: the journal
    on disk belongs to a different config, strategy, or schema)."""
