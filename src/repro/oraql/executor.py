"""Fault-isolated test execution for the probing runtime.

The probing loop exists *because* optimistic no-alias answers can break
programs: a probed binary may print garbage, trap, deadlock, or loop
forever.  The :class:`TestExecutor` wraps one compile+run+verify
round-trip into a structured :class:`TestOutcome` so the driver always
learns *how* a test ended, not just whether it passed:

* every run is classified into a triage class
  (:data:`~repro.oraql.verify.TRIAGE_CLASSES`);
* per-test **fuel** (instruction budget) and **wall-clock** budgets are
  threaded down to the VM, so a runaway miscompile becomes a
  ``step-limit`` verdict instead of a hung driver;
* **transient infrastructure faults** (compiler exceptions) are retried
  with exponential backoff before the probe is declared lost;
* a **nondeterminism probe** re-runs a failing binary once — if the
  second run disagrees with the first, the configuration is flaky and
  must be quarantined (:class:`~repro.oraql.errors.FlakyConfigError`)
  instead of letting a coin-flip verdict mis-pin queries as dangerous;
* an optional :class:`~repro.faults.injector.FaultInjector` plants
  deterministic faults at exact probe indices — the proof machinery for
  all of the above.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from ..faults.injector import (
    HANG_FUEL,
    FaultInjector,
    InjectedCompilerError,
    SessionKilled,
)
from .compiler import CompiledProgram, Compiler
from .config import BenchmarkConfig
from .errors import ProbingError
from .sequence import DecisionSequence
from .verify import (
    TRIAGE_COMPILER_ERROR,
    TRIAGE_OK,
    TRIAGE_WRONG_OUTPUT,
    RunResult,
    VerificationScript,
)


def is_transient_compiler_fault(exc: BaseException) -> bool:
    """Should this compiler exception be retried with backoff?

    Only *infrastructure* fault classes are transient: injected faults,
    OS-level failures (full disk, interrupted syscalls), resource
    exhaustion, and generic runtime faults.  Deterministic compiler
    failures — IR verifier errors, frontend parse/codegen errors, plain
    programming errors — will fail identically on every attempt, so
    retrying them only burns wall-clock and retry budget before the
    inevitable ``compiler-error`` triage.

    :class:`SessionKilled` and :class:`ProbingError` are neither: they
    must unwind to the session owner untouched.
    """
    if isinstance(exc, (SessionKilled, ProbingError)):
        return False
    if isinstance(exc, (InjectedCompilerError, OSError, MemoryError)):
        return True
    # a bare RuntimeError is the classic transient-infrastructure shape
    # (and what the fault-injection harness's stand-ins raise); its
    # deterministic subclasses were excluded above
    return type(exc) is RuntimeError


@dataclass
class TestOutcome:
    """One probe's verdict, enriched with how the run actually ended."""

    __test__ = False  # despite the name, not a pytest collection target

    ok: bool
    unique_queries: int
    exe_hash: str
    from_cache: bool = False
    #: one of :data:`~repro.oraql.verify.TRIAGE_CLASSES`; derived from
    #: ``ok`` when the caller has nothing better (cache hits)
    triage: Optional[str] = None
    #: VM runs this verdict consumed (> 1 when the nondeterminism probe
    #: re-ran a mismatch)
    attempts: int = 1
    #: the two runs of the nondeterminism probe disagreed — the verdict
    #: is untrustworthy and the config must be quarantined
    flaky: bool = False
    #: the (first) observed run, for ``explain()`` diffs; ``None`` for
    #: cached verdicts
    run: Optional[RunResult] = None

    def __post_init__(self) -> None:
        if self.triage is None:
            self.triage = TRIAGE_OK if self.ok else TRIAGE_WRONG_OUTPUT


@dataclass
class ExecutorPolicy:
    """Per-test budgets and fault-handling knobs."""

    #: instruction budget per run (None = the config's ``max_steps``)
    fuel: Optional[int] = None
    #: wall-clock budget per run in seconds (None = unbounded; leaves
    #: runs bit-deterministic)
    wall_clock: Optional[float] = None
    #: extra attempts for transient faults (compiler exceptions)
    retries: int = 2
    #: base backoff between retries in seconds (doubles per attempt;
    #: 0 in tests)
    backoff: float = 0.05
    #: when to re-run a failing binary to detect nondeterminism:
    #: ``first`` probes the first mismatch of the session (cheap),
    #: ``always`` probes every mismatch, ``never`` disables the probe
    nondet_probe: str = "first"

    def __post_init__(self) -> None:
        if self.nondet_probe not in ("first", "always", "never"):
            raise ValueError(
                f"unknown nondet_probe policy {self.nondet_probe!r}")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


class TestExecutor:
    """Compiles and executes candidate binaries with fault isolation.

    Owned by one :class:`~repro.oraql.driver.ProbingDriver`; its
    counters (``retries_used``, ``nondet_reruns``) feed the report.
    """

    __test__ = False  # despite the name, not a pytest collection target

    def __init__(self, compiler: Optional[Compiler] = None,
                 policy: Optional[ExecutorPolicy] = None,
                 injector: Optional[FaultInjector] = None,
                 trace=None):
        self.compiler = compiler or Compiler()
        self.policy = policy or ExecutorPolicy()
        self.injector = injector
        self.trace = trace
        self.retries_used = 0
        self.nondet_reruns = 0
        self._probed_mismatch = False

    def begin_session(self) -> None:
        """Reset per-session counters and probe state.

        An executor reused across drivers (repeated-driver scenarios,
        one executor probing several configs) must not bleed one
        config's retry/nondet bookkeeping — or its already-probed-a-
        mismatch latch — into the next report."""
        self.retries_used = 0
        self.nondet_reruns = 0
        self._probed_mismatch = False

    # -- fault sites -------------------------------------------------------
    def begin_test(self) -> None:
        """Poll the per-probe fault site (session kills, worker kills,
        durability-file truncation).  Called once per driver probe."""
        if self.injector is None:
            return
        spec = self.injector.poll("test")
        if spec is not None:
            self.injector.apply_process_fault(spec)

    # -- compilation with retry-on-transient -------------------------------
    def compile(self, config: BenchmarkConfig,
                sequence: Optional[DecisionSequence],
                oraql_enabled: bool = True,
                baseline: Optional[CompiledProgram] = None,
                collect_resume: bool = False
                ) -> CompiledProgram:
        """Compile, retrying *transient* compiler faults with backoff.

        A compiler exception is an *infrastructure* failure, never a
        test verdict: it surfaces as a :class:`ProbingError` with
        ``compiler-error`` triage.  Only transient fault classes
        (:func:`is_transient_compiler_fault`) consume the retry budget —
        a deterministic failure (IR verifier error, frontend error)
        fails identically every time, so it is raised for triage
        immediately instead of wasting ``retries`` backoff rounds."""
        attempt = 0
        while True:
            try:
                if self.injector is not None:
                    spec = self.injector.poll("compile")
                    if spec is not None and spec.kind == "compiler-error":
                        raise InjectedCompilerError(
                            f"injected compiler fault at compile #{spec.at}")
                return self.compiler.compile(config, sequence=sequence,
                                             oraql_enabled=oraql_enabled,
                                             trace=self.trace,
                                             baseline=baseline,
                                             collect_resume=collect_resume)
            except (SessionKilled, ProbingError):
                raise  # not compiler faults: unwind to the session owner
            except Exception as e:
                attempt += 1
                if not is_transient_compiler_fault(e) \
                        or attempt > self.policy.retries:
                    raise ProbingError(
                        f"compilation failed after {attempt} attempt(s)",
                        triage=TRIAGE_COMPILER_ERROR,
                        explain=f"{type(e).__name__}: {e}") from e
                self.retries_used += 1
                if self.policy.backoff > 0:
                    time.sleep(self.policy.backoff * (2 ** (attempt - 1)))

    # -- execution + verification ------------------------------------------
    def _run_once(self, prog: CompiledProgram) -> RunResult:
        if self.injector is not None:
            spec = self.injector.poll("run")
            if spec is not None:
                if spec.kind == "hang":
                    # a genuinely runaway run: tiny fuel trips the VM's
                    # real step-limit machinery
                    return prog.run(fuel=HANG_FUEL,
                                    wall_clock=self.policy.wall_clock)
                if spec.kind == "trap":
                    return RunResult("", "trapped",
                                     f"injected memory trap at run "
                                     f"#{spec.at}", error_kind="MemoryTrap")
                if spec.kind == "deadlock":
                    return RunResult("", "trapped",
                                     f"injected deadlock at run #{spec.at}",
                                     error_kind="DeadlockError")
                if spec.kind == "wrong-output":
                    r = prog.run(fuel=self.policy.fuel,
                                 wall_clock=self.policy.wall_clock)
                    if r.ok:
                        return replace(r, stdout=r.stdout
                                       + "<injected corruption>\n")
                    return r
        return prog.run(fuel=self.policy.fuel,
                        wall_clock=self.policy.wall_clock)

    def _should_probe_mismatch(self) -> bool:
        mode = self.policy.nondet_probe
        if mode == "always":
            return True
        return mode == "first" and not self._probed_mismatch

    def run_and_verify(self, prog: CompiledProgram,
                       verifier: VerificationScript) -> TestOutcome:
        """Run the program, verify, triage — and on a mismatch, re-run
        once to tell deterministic miscompiles from flaky configs."""
        r1 = self._run_once(prog)
        ok1 = verifier.check(r1)
        triage = verifier.triage(r1)
        attempts = 1
        n = prog.oraql.unique_queries if prog.oraql is not None else 0
        if not ok1 and self._should_probe_mismatch():
            self._probed_mismatch = True
            self.nondet_reruns += 1
            r2 = self._run_once(prog)
            ok2 = verifier.check(r2)
            attempts = 2
            if ok2 != ok1:
                return TestOutcome(ok2, n, prog.exe_hash, triage=triage,
                                   attempts=attempts, flaky=True, run=r1)
        return TestOutcome(ok1, n, prog.exe_hash, triage=triage,
                           attempts=attempts, run=r1)
