"""The parallel probing engine.

ORAQL's probing loop is embarrassingly parallel in two dimensions and
this module exploits both:

* **across benchmark configurations** — every Fig. 4 row is an
  independent compile-and-test search, so :class:`ParallelProbingDriver`
  fans whole configurations out to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, one sequential
  :class:`~repro.oraql.driver.ProbingDriver` per worker;
* **across speculative bisection branches** — inside the chunked
  strategy's binary search both continuations of the pending probe
  ``g(mid)`` are known in advance (the midpoint of ``[mid, hi)`` if it
  passes, of ``[lo, mid)`` if it fails), so
  :class:`SpeculativeProbingDriver` launches both in worker processes
  while the driver waits for ``g(mid)``, then cancels or abandons the
  branch that lost the race.

Both dimensions share the persistent
:class:`~repro.oraql.cache.VerdictCache` (``--cache-dir``): verdicts
recorded by any worker are reusable by every later driver, including
across process restarts.

Determinism contract: compilation is a pure function of (config,
sequence) — same inputs produce the same ``exe_hash`` in any process —
so speculation and fan-out change only *when* a verdict is computed,
never *what* it is.  Parallel runs therefore report bit-identical
``pessimistic_indices`` to the sequential driver.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cache import VerdictCache
from .compiler import Compiler
from .config import BenchmarkConfig
from .driver import ProbingDriver, ProbingReport, TestOutcome
from .sequence import DecisionSequence
from .verify import VerificationScript


# -- worker-side entry points (module level so they pickle) ---------------

def _compile_and_test(config_json: str, bits: List[int],
                      verifier: VerificationScript
                      ) -> Tuple[str, int, bool]:
    """One speculative probe: compile the config with the given decision
    bits, run it, verify.  Runs in a worker process; returns everything
    the driver needs to book the outcome."""
    cfg = BenchmarkConfig.from_json(config_json)
    prog = Compiler().compile(cfg, sequence=DecisionSequence(bits),
                              oraql_enabled=True)
    ok = verifier.check(prog.run())
    return prog.exe_hash, prog.oraql.unique_queries, ok


def _probe_config(config_json: str, strategy: str, max_tests: int,
                  cache_dir: Optional[str]) -> ProbingReport:
    """Probe one whole configuration in a worker process."""
    cfg = BenchmarkConfig.from_json(config_json)
    cache = VerdictCache(cache_dir) if cache_dir else None
    report = ProbingDriver(cfg, strategy=strategy, max_tests=max_tests,
                           verdict_cache=cache).run()
    # live IR/program objects do not survive (or justify) pickling back
    return report.detach_for_transport()


class SpeculativeProbingDriver(ProbingDriver):
    """Chunked probing with speculative binary-search branches.

    Overrides the sequential driver's ``_speculate`` hint to submit both
    continuations to the executor, and ``_test`` to consume a finished
    speculation instead of compiling in-process.  The probing *logic* is
    untouched, so results are bit-identical to the sequential driver."""

    def __init__(self, config: BenchmarkConfig,
                 executor: ProcessPoolExecutor, **kwargs):
        super().__init__(config, **kwargs)
        self._executor = executor
        self._spec: Dict[Tuple[int, ...], Future] = {}
        self._config_json = config.to_json()

    def _speculate(self, sequences: List[DecisionSequence]) -> None:
        # whatever is still pending from the previous round lost its
        # race: cancel it if it has not started, abandon it otherwise
        for key, fut in list(self._spec.items()):
            fut.cancel()
            del self._spec[key]
        if self.verifier is None:
            return
        for seq in sequences:
            key = tuple(seq.bits)
            if key in self._spec:
                continue
            self._spec[key] = self._executor.submit(
                _compile_and_test, self._config_json, list(seq.bits),
                self.verifier)
            self._report.tests_speculated += 1

    def _test(self, sequence: DecisionSequence) -> TestOutcome:
        fut = self._spec.pop(tuple(sequence.bits), None)
        if fut is not None and not fut.cancelled():
            try:
                exe_hash, n, ok = fut.result()
            except Exception:
                # a lost worker only costs the speculation; recompute
                return super()._test(sequence)
            self._report.compiles += 1
            return self._verdict_for(exe_hash, n, lambda: ok)
        return super()._test(sequence)

    def run(self) -> ProbingReport:
        try:
            return super().run()
        finally:
            for fut in self._spec.values():
                fut.cancel()
            self._spec.clear()


class ParallelProbingDriver:
    """Probes one or many configurations with ``jobs`` worker processes.

    Given several configurations, each is probed by a sequential driver
    in its own worker (the across-configs dimension).  Given a single
    configuration with the chunked strategy, the speculative driver
    runs in-process and uses the workers for look-ahead probes (the
    across-branches dimension).  Either way every worker shares the
    persistent verdict cache under ``cache_dir`` when one is given.
    """

    def __init__(self,
                 configs: Union[BenchmarkConfig, Sequence[BenchmarkConfig]],
                 jobs: Optional[int] = None,
                 strategy: str = "chunked",
                 max_tests: int = 10_000,
                 cache_dir: Optional[str] = None,
                 speculate: bool = True):
        if isinstance(configs, BenchmarkConfig):
            configs = [configs]
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("no configurations to probe")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.strategy = strategy
        self.max_tests = max_tests
        self.cache_dir = cache_dir
        self.speculate = speculate

    def _cache(self) -> Optional[VerdictCache]:
        return VerdictCache(self.cache_dir) if self.cache_dir else None

    def run(self) -> List[ProbingReport]:
        """Probe every configuration; reports come back in input order."""
        if len(self.configs) == 1:
            return [self._run_single(self.configs[0])]
        return self._run_fanout()

    # -- one config: speculative bisection ---------------------------------
    def _run_single(self, config: BenchmarkConfig) -> ProbingReport:
        if self.jobs <= 1 or self.strategy != "chunked" \
                or not self.speculate:
            return ProbingDriver(config, strategy=self.strategy,
                                 max_tests=self.max_tests,
                                 verdict_cache=self._cache()).run()
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            driver = SpeculativeProbingDriver(
                config, executor, strategy=self.strategy,
                max_tests=self.max_tests, verdict_cache=self._cache())
            return driver.run()

    # -- many configs: one worker per configuration -------------------------
    def _run_fanout(self) -> List[ProbingReport]:
        jobs = min(self.jobs, len(self.configs))
        if jobs <= 1:
            cache = self._cache()
            return [ProbingDriver(cfg, strategy=self.strategy,
                                  max_tests=self.max_tests,
                                  verdict_cache=cache).run()
                    for cfg in self.configs]
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            futures = [executor.submit(_probe_config, cfg.to_json(),
                                       self.strategy, self.max_tests,
                                       self.cache_dir)
                       for cfg in self.configs]
            return [f.result() for f in futures]
