"""The parallel probing engine.

ORAQL's probing loop is embarrassingly parallel in two dimensions and
this module exploits both:

* **across benchmark configurations** — every Fig. 4 row is an
  independent compile-and-test search, so :class:`ParallelProbingDriver`
  fans whole configurations out to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, one sequential
  :class:`~repro.oraql.driver.ProbingDriver` per worker;
* **across speculative bisection branches** — inside the chunked
  strategy's binary search both continuations of the pending probe
  ``g(mid)`` are known in advance (the midpoint of ``[mid, hi)`` if it
  passes, of ``[lo, mid)`` if it fails), so
  :class:`SpeculativeProbingDriver` launches both in worker processes
  while the driver waits for ``g(mid)``, then cancels or abandons the
  branch that lost the race.

Both dimensions share the persistent
:class:`~repro.oraql.cache.VerdictCache` (``--cache-dir``): verdicts
recorded by any worker are reusable by every later driver, including
across process restarts.

Determinism contract: compilation is a pure function of (config,
sequence) — same inputs produce the same ``exe_hash`` in any process —
so speculation and fan-out change only *when* a verdict is computed,
never *what* it is.  Parallel runs therefore report bit-identical
``pessimistic_indices`` to the sequential driver.

Resilience contract: a probing fleet must survive its own workers.
A worker process dying (OOM, segfault, ``kill -9``) breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`; the engine detects
``BrokenProcessPool``, respawns the pool, and **requeues** the affected
configurations with bounded retries.  Worker exceptions are *captured
into the report* (``worker_errors``, a ``failed`` report for a config
that keeps crashing) — never silently dropped — so one crashing
configuration cannot lose the rest of the fleet's results.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..faults.injector import FaultInjector
from .cache import VerdictCache
from .compiler import Compiler
from .config import BenchmarkConfig
from .driver import ProbingDriver, ProbingReport, TestOutcome
from .errors import ProbingError
from .executor import ExecutorPolicy
from .journal import SessionJournal
from .sequence import DecisionSequence
from .strategies import strategy_supports_speculation
from .verify import TRIAGE_WORKER_LOST, VerificationScript

#: how many times a configuration is requeued after its worker died
#: before it is reported as permanently lost
MAX_WORKER_RETRIES = 2

#: how many times the speculative driver respawns a broken pool before
#: giving up on speculation (probing continues in-process either way)
MAX_POOL_RESPAWNS = 2


# -- worker-side entry points (module level so they pickle) ---------------

def _compile_and_test(config_json: str, bits: List[int],
                      verifier: VerificationScript,
                      time_passes: bool = False
                      ) -> Tuple[str, int, bool, str, Optional[dict]]:
    """One speculative probe: compile the config with the given decision
    bits, run it, verify.  Runs in a worker process; returns everything
    the driver needs to book the outcome (hash, query count, verdict,
    triage class) plus the worker's phase-timer tree when ``time_passes``
    — full event streams stay in-process, but timers merge cheaply."""
    from ..trace import QueryTrace
    cfg = BenchmarkConfig.from_json(config_json)
    trace = QueryTrace(record_events=False) if time_passes else None
    prog = Compiler().compile(cfg, sequence=DecisionSequence(bits),
                              oraql_enabled=True, trace=trace)
    run = prog.run()
    return (prog.exe_hash, prog.oraql.unique_queries, verifier.check(run),
            verifier.triage(run),
            trace.timer.to_dict() if trace is not None else None)


def _probe_config(config_json: str, strategy: str, max_tests: int,
                  cache_dir: Optional[str],
                  journal_dir: Optional[str] = None,
                  resume: bool = False,
                  fault_plan: Optional[List[dict]] = None,
                  attempt: int = 0,
                  time_passes: bool = False,
                  incremental: str = "off",
                  strategy_seed: int = 0) -> ProbingReport:
    """Probe one whole configuration in a worker process."""
    from ..trace import QueryTrace
    cfg = BenchmarkConfig.from_json(config_json)
    cache = VerdictCache(cache_dir) if cache_dir else None
    journal = (SessionJournal.for_config(journal_dir, cfg, strategy,
                                         resume=resume)
               if journal_dir else None)
    injector = FaultInjector.from_json_plan(fault_plan, attempt=attempt)
    trace = QueryTrace(record_events=False) if time_passes else None
    report = ProbingDriver(cfg, strategy=strategy, max_tests=max_tests,
                           verdict_cache=cache, journal=journal,
                           injector=injector, trace=trace,
                           incremental=incremental,
                           strategy_seed=strategy_seed).run()
    # live IR/program objects do not survive (or justify) pickling back
    return report.detach_for_transport()


class SpeculativeProbingDriver(ProbingDriver):
    """Chunked probing with speculative binary-search branches.

    Overrides the sequential driver's ``_speculate`` hint to submit both
    continuations to the executor, and ``_test`` to consume a finished
    speculation instead of compiling in-process.  The probing *logic* is
    untouched, so results are bit-identical to the sequential driver.

    A speculative probe only ever costs its speculation: a worker that
    raises or dies is recorded in the report (``worker_errors``,
    ``triage_counts['worker-lost']``) and the probe is recomputed
    in-process; a broken pool is respawned up to
    :data:`MAX_POOL_RESPAWNS` times (``pool_factory``) before
    speculation is disabled for the rest of the session."""

    def __init__(self, config: BenchmarkConfig,
                 executor: ProcessPoolExecutor,
                 pool_factory=None, **kwargs):
        super().__init__(config, **kwargs)
        self._pool = executor
        self._pool_factory = pool_factory
        self._pool_respawns = 0
        self._spec: Dict[Tuple[int, ...], Future] = {}
        self._config_json = config.to_json()

    def _record_worker_loss(self, what: str) -> None:
        self._report.worker_errors.append(what)
        self._report.triage_counts[TRIAGE_WORKER_LOST] = \
            self._report.triage_counts.get(TRIAGE_WORKER_LOST, 0) + 1

    def _handle_broken_pool(self) -> None:
        """Respawn the worker pool (bounded) or disable speculation."""
        self._spec.clear()  # every pending future died with the pool
        try:
            self._pool.shutdown(wait=False)
        except Exception:
            pass
        if self._pool_factory is not None \
                and self._pool_respawns < MAX_POOL_RESPAWNS:
            self._pool_respawns += 1
            self._pool = self._pool_factory()
            self._report.worker_errors.append(
                f"worker pool respawned "
                f"({self._pool_respawns}/{MAX_POOL_RESPAWNS})")
        else:
            self._pool = None
            self._report.worker_errors.append(
                "worker pool lost; speculation disabled for the rest "
                "of the session")

    def _speculate(self, sequences: List[DecisionSequence]) -> None:
        # whatever is still pending from the previous round lost its
        # race: cancel it if it has not started, abandon it otherwise
        for key, fut in list(self._spec.items()):
            fut.cancel()
            del self._spec[key]
        if self.verifier is None or self._pool is None:
            return
        for seq in sequences:
            key = tuple(seq.bits)
            if key in self._spec:
                continue
            try:
                fut = self._pool.submit(
                    _compile_and_test, self._config_json, list(seq.bits),
                    self.verifier, time_passes=self.trace is not None)
            except (BrokenProcessPool, RuntimeError) as e:
                self._record_worker_loss(
                    f"speculation submit failed: {type(e).__name__}: {e}")
                self._handle_broken_pool()
                return
            self._spec[key] = fut
            self._report.tests_speculated += 1

    def _test(self, sequence: DecisionSequence) -> TestOutcome:
        fut = self._spec.pop(tuple(sequence.bits), None)
        if fut is not None and not fut.cancelled():
            try:
                exe_hash, n, ok, triage, timer_tree = fut.result()
            except BrokenProcessPool as e:
                # the pool (and every pending speculation) is gone —
                # record it, try to respawn, recompute in-process
                self._record_worker_loss(
                    f"speculative worker died: {type(e).__name__}: {e}")
                self._handle_broken_pool()
                return super()._test(sequence)
            except Exception as e:
                # a failed speculation only costs the speculation, but
                # the worker's exception is part of the session record —
                # swallowing it silently would hide real infrastructure
                # failures (the pre-resilience engine did exactly that)
                self._record_worker_loss(
                    f"speculative probe raised: {type(e).__name__}: {e}")
                return super()._test(sequence)
            self._report.compiles += 1
            if self.trace is not None and timer_tree is not None:
                # fold the worker's phase timings into the session tree
                self.trace.timer.merge_dict(timer_tree)
            return self._verdict_for(
                exe_hash, n,
                lambda: TestOutcome(ok, n, exe_hash, triage=triage))
        return super()._test(sequence)

    def run(self) -> ProbingReport:
        try:
            return super().run()
        finally:
            for fut in self._spec.values():
                fut.cancel()
            self._spec.clear()
            if self._pool_respawns and self._pool is not None:
                # pools we respawned are ours to shut down (the original
                # one belongs to the caller's ``with`` block)
                self._pool.shutdown(wait=False)


def _failed_report(config: BenchmarkConfig, error: str,
                   triage: str) -> ProbingReport:
    """A placeholder report for a configuration whose probing session
    could not complete — the failure is carried, not dropped."""
    report = ProbingReport(config.name, False, DecisionSequence(), [])
    report.failed = True
    report.error = error
    report.triage_counts[triage] = 1
    report.worker_errors.append(error)
    return report


class ParallelProbingDriver:
    """Probes one or many configurations with ``jobs`` worker processes.

    Given several configurations, each is probed by a sequential driver
    in its own worker (the across-configs dimension).  Given a single
    configuration with the chunked strategy, the speculative driver
    runs in-process and uses the workers for look-ahead probes (the
    across-branches dimension).  Either way every worker shares the
    persistent verdict cache under ``cache_dir`` when one is given, and
    every configuration keeps a session journal under ``journal_dir``
    when one is given (``resume=True`` replays it).
    """

    def __init__(self,
                 configs: Union[BenchmarkConfig, Sequence[BenchmarkConfig]],
                 jobs: Optional[int] = None,
                 strategy: str = "chunked",
                 max_tests: int = 10_000,
                 cache_dir: Optional[str] = None,
                 speculate: bool = True,
                 journal_dir: Optional[str] = None,
                 resume: bool = False,
                 policy: Optional[ExecutorPolicy] = None,
                 fault_plan: Optional[List[dict]] = None,
                 trace=None,
                 incremental: str = "off",
                 strategy_seed: int = 0):
        if isinstance(configs, BenchmarkConfig):
            configs = [configs]
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("no configurations to probe")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.strategy = strategy
        self.max_tests = max_tests
        self.cache_dir = cache_dir
        self.speculate = speculate
        self.journal_dir = journal_dir
        self.resume = resume
        self.policy = policy
        #: deterministic fault plan forwarded to workers (chaos testing)
        self.fault_plan = fault_plan
        #: optional QueryTrace.  Single-config sessions run in-process
        #: and trace fully; fan-out workers ship timer trees back (the
        #: parent merges them), but event streams stay in-process
        self.trace = trace
        #: incremental recompilation mode, forwarded to every driver
        #: (in-process and in workers); bit-identical results either way
        self.incremental = incremental
        #: seed for randomized strategies, forwarded to every driver
        self.strategy_seed = strategy_seed

    def _cache(self) -> Optional[VerdictCache]:
        return VerdictCache(self.cache_dir) if self.cache_dir else None

    def _journal(self, config: BenchmarkConfig) -> Optional[SessionJournal]:
        if not self.journal_dir:
            return None
        return SessionJournal.for_config(self.journal_dir, config,
                                         self.strategy, resume=self.resume)

    def run(self) -> List[ProbingReport]:
        """Probe every configuration; reports come back in input order."""
        if len(self.configs) == 1:
            return [self._run_single(self.configs[0])]
        return self._run_fanout()

    # -- one config: speculative bisection ---------------------------------
    def _run_single(self, config: BenchmarkConfig) -> ProbingReport:
        if self.jobs <= 1 or not self.speculate \
                or not strategy_supports_speculation(self.strategy):
            return ProbingDriver(
                config, strategy=self.strategy, max_tests=self.max_tests,
                verdict_cache=self._cache(), policy=self.policy,
                journal=self._journal(config),
                injector=FaultInjector.from_json_plan(self.fault_plan),
                trace=self.trace, incremental=self.incremental,
                strategy_seed=self.strategy_seed).run()
        factory = lambda: ProcessPoolExecutor(max_workers=self.jobs)  # noqa: E731
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            driver = SpeculativeProbingDriver(
                config, executor, pool_factory=factory,
                strategy=self.strategy,
                max_tests=self.max_tests, verdict_cache=self._cache(),
                policy=self.policy, journal=self._journal(config),
                injector=FaultInjector.from_json_plan(self.fault_plan),
                trace=self.trace, incremental=self.incremental,
                strategy_seed=self.strategy_seed)
            return driver.run()

    # -- many configs: one worker per configuration -------------------------
    def _run_fanout(self) -> List[ProbingReport]:
        jobs = min(self.jobs, len(self.configs))
        if jobs <= 1:
            cache = self._cache()
            return [ProbingDriver(
                cfg, strategy=self.strategy, max_tests=self.max_tests,
                verdict_cache=cache, policy=self.policy,
                journal=self._journal(cfg), trace=self.trace,
                incremental=self.incremental,
                strategy_seed=self.strategy_seed).run()
                for cfg in self.configs]

        results: List[Optional[ProbingReport]] = [None] * len(self.configs)
        attempts = [0] * len(self.configs)
        remaining = list(range(len(self.configs)))
        while remaining:
            requeue: List[int] = []
            with ProcessPoolExecutor(max_workers=jobs) as executor:
                futures = {
                    executor.submit(
                        _probe_config, self.configs[i].to_json(),
                        self.strategy, self.max_tests, self.cache_dir,
                        self.journal_dir, self.resume or attempts[i] > 0,
                        self.fault_plan, attempts[i],
                        time_passes=self.trace is not None,
                        incremental=self.incremental,
                        strategy_seed=self.strategy_seed): i
                    for i in remaining}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending)
                    for fut in done:
                        i = futures[fut]
                        try:
                            results[i] = fut.result()
                            if self.trace is not None \
                                    and results[i].phase_timers is not None:
                                # merge worker timers into the session
                                # tree (the -time-passes aggregate)
                                self.trace.timer.merge_dict(
                                    results[i].phase_timers)
                            if attempts[i] > 0:
                                results[i].worker_errors.append(
                                    f"worker died; config requeued and "
                                    f"completed on attempt "
                                    f"{attempts[i] + 1}")
                        except BrokenProcessPool as e:
                            attempts[i] += 1
                            if attempts[i] > MAX_WORKER_RETRIES:
                                results[i] = _failed_report(
                                    self.configs[i],
                                    f"worker lost "
                                    f"{attempts[i]} time(s): "
                                    f"{type(e).__name__}: {e}",
                                    TRIAGE_WORKER_LOST)
                            else:
                                requeue.append(i)
                        except Exception as e:
                            # a deterministic in-worker failure (bad
                            # baseline, quarantined flaky config, ...):
                            # retrying cannot help — record it
                            triage = getattr(e, "triage", None) \
                                or TRIAGE_WORKER_LOST
                            results[i] = _failed_report(
                                self.configs[i],
                                f"{type(e).__name__}: {e}", triage)
            # a partially-probed requeued config resumes from its
            # journal (when journalling) and the shared verdict cache,
            # so the retry replays instead of re-paying the test bill
            remaining = requeue
        return [r for r in results if r is not None]
