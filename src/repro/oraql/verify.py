"""The ORAQL verification script (paper §IV-C).

Compares a run's stdout against one or more reference outputs after
applying regex filters that mask legitimately-noisy parts (reported run
times, trailing digits of checksums that vary across configurations).
A trapped, deadlocked, or non-terminating run always fails.

This module also owns the probing runtime's **triage taxonomy**: every
test execution is classified into one of :data:`TRIAGE_CLASSES` so the
driver can distinguish a miscompile that prints garbage from one that
traps, loops forever, or deadlocks — and so infrastructure failures
(compiler exceptions, lost workers) are never confused with verdicts.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: triage classes, ordered roughly by "how wrong the run went"
TRIAGE_OK = "ok"
TRIAGE_WRONG_OUTPUT = "wrong-output"
TRIAGE_TRAPPED = "trapped"
TRIAGE_STEP_LIMIT = "step-limit"
TRIAGE_DEADLOCK = "deadlock"
TRIAGE_COMPILER_ERROR = "compiler-error"
TRIAGE_WORKER_LOST = "worker-lost"

TRIAGE_CLASSES = (
    TRIAGE_OK,
    TRIAGE_WRONG_OUTPUT,
    TRIAGE_TRAPPED,
    TRIAGE_STEP_LIMIT,
    TRIAGE_DEADLOCK,
    TRIAGE_COMPILER_ERROR,
    TRIAGE_WORKER_LOST,
)

#: VM error class name -> triage class (anything unlisted is a trap)
_ERROR_KIND_TRIAGE = {
    "StepLimitExceeded": TRIAGE_STEP_LIMIT,
    "WallClockExceeded": TRIAGE_STEP_LIMIT,
    "DeadlockError": TRIAGE_DEADLOCK,
}


@dataclass
class RunResult:
    """Outcome of executing a compiled program."""

    stdout: str
    state: str                      # "done" | "trapped" | "blocked"
    error: Optional[str] = None
    instructions: int = 0
    cycles: float = 0.0
    kernel_cycles: dict = field(default_factory=dict)
    #: class name of the VM error that ended the run (``MemoryTrap``,
    #: ``StepLimitExceeded``, ``DeadlockError``, ...), ``None`` for a
    #: clean completion — the raw material for :func:`triage_run`
    error_kind: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.state == "done"


def triage_run(result: RunResult) -> str:
    """Classify a run *without* an output verdict: ``ok`` means only
    "ran to completion" here; use :meth:`VerificationScript.triage` for
    the full ok/wrong-output distinction."""
    if result.ok:
        return TRIAGE_OK
    kind = result.error_kind
    if kind in _ERROR_KIND_TRIAGE:
        return _ERROR_KIND_TRIAGE[kind]
    if kind is None and result.state == "blocked":
        return TRIAGE_DEADLOCK
    return TRIAGE_TRAPPED


class VerificationScript:
    """Multi-reference, regex-filtered output verification."""

    def __init__(self, references: Sequence[str],
                 filters: Sequence[Tuple[str, str]] = ()):
        if not references:
            raise ValueError("verification needs at least one reference")
        self.filters = [(re.compile(p), r) for p, r in filters]
        self.references = [self.normalize(r) for r in references]

    def normalize(self, text: str) -> str:
        for pattern, repl in self.filters:
            text = pattern.sub(repl, text)
        return text

    def check_output(self, output: str) -> bool:
        n = self.normalize(output)
        return any(n == ref for ref in self.references)

    def check(self, result: RunResult) -> bool:
        """The full verdict: the run must complete and its (filtered)
        output must match a reference."""
        if not result.ok:
            return False
        return self.check_output(result.stdout)

    def triage(self, result: RunResult) -> str:
        """Classify the run into one of :data:`TRIAGE_CLASSES`: a
        completed run is ``ok`` or ``wrong-output`` depending on the
        verdict, a failed run keeps its VM failure class."""
        cls = triage_run(result)
        if cls == TRIAGE_OK and not self.check_output(result.stdout):
            return TRIAGE_WRONG_OUTPUT
        return cls

    def closest_reference(self, normalized: str) -> str:
        """The reference most similar to the (already normalized)
        output — the one a multi-reference mismatch report should be
        explained against."""
        if len(self.references) == 1:
            return self.references[0]
        return max(self.references,
                   key=lambda ref: difflib.SequenceMatcher(
                       None, normalized, ref).ratio())

    def explain(self, result: RunResult) -> str:
        if not result.ok:
            return (f"run failed [{triage_run(result)}]: "
                    f"{result.state} ({result.error})")
        n = self.normalize(result.stdout)
        best = self.closest_reference(n)
        for i, (x, y) in enumerate(zip(n, best)):
            if x != y:
                lo = max(0, i - 40)
                return (f"output mismatch at byte {i}: "
                        f"...{n[lo:i + 40]!r} != ...{best[lo:i + 40]!r}")
        if len(n) != len(best):
            return f"output length mismatch: {len(n)} vs {len(best)}"
        return "ok"
