"""The ORAQL verification script (paper §IV-C).

Compares a run's stdout against one or more reference outputs after
applying regex filters that mask legitimately-noisy parts (reported run
times, trailing digits of checksums that vary across configurations).
A trapped, deadlocked, or non-terminating run always fails.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class RunResult:
    """Outcome of executing a compiled program."""

    stdout: str
    state: str                      # "done" | "trapped" | "blocked"
    error: Optional[str] = None
    instructions: int = 0
    cycles: float = 0.0
    kernel_cycles: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.state == "done"


class VerificationScript:
    """Multi-reference, regex-filtered output verification."""

    def __init__(self, references: Sequence[str],
                 filters: Sequence[Tuple[str, str]] = ()):
        if not references:
            raise ValueError("verification needs at least one reference")
        self.filters = [(re.compile(p), r) for p, r in filters]
        self.references = [self.normalize(r) for r in references]

    def normalize(self, text: str) -> str:
        for pattern, repl in self.filters:
            text = pattern.sub(repl, text)
        return text

    def check_output(self, output: str) -> bool:
        n = self.normalize(output)
        return any(n == ref for ref in self.references)

    def check(self, result: RunResult) -> bool:
        """The full verdict: the run must complete and its (filtered)
        output must match a reference."""
        if not result.ok:
            return False
        return self.check_output(result.stdout)

    def closest_reference(self, normalized: str) -> str:
        """The reference most similar to the (already normalized)
        output — the one a multi-reference mismatch report should be
        explained against."""
        if len(self.references) == 1:
            return self.references[0]
        return max(self.references,
                   key=lambda ref: difflib.SequenceMatcher(
                       None, normalized, ref).ratio())

    def explain(self, result: RunResult) -> str:
        if not result.ok:
            return f"run failed: {result.state} ({result.error})"
        n = self.normalize(result.stdout)
        best = self.closest_reference(n)
        for i, (x, y) in enumerate(zip(n, best)):
            if x != y:
                lo = max(0, i - 40)
                return (f"output mismatch at byte {i}: "
                        f"...{n[lo:i + 40]!r} != ...{best[lo:i + 40]!r}")
        if len(n) != len(best):
            return f"output length mismatch: {len(n)} vs {len(best)}"
        return "ok"
