"""Append-only probing session journal (crash-durable resume).

A long probing campaign must survive the driver being killed — by an
operator, the OOM killer, or an exhausted budget — without paying the
whole test bill again.  The journal checkpoints **every probe verdict**
as one JSON line; because the probing strategies are deterministic
functions of the verdicts they observe, replaying the journaled
verdicts into the driver's executable-hash cache reproduces the exact
same search path: a resumed session is bit-identical to an
uninterrupted one, with replayed probes served from cache instead of
re-run.

Record format
-------------
One JSON object per line.  Every record carries a CRC-32 of its
canonical serialization (sorted keys, no whitespace, ``crc`` field
excluded), so torn appends and bit rot are *detected and skipped*, not
misread:

* ``{"t": "header", "v": 1, "fp": ..., "strategy": ...}`` — first line;
  a resume refuses to replay a journal whose *valid* header names a
  different fingerprint, strategy, or schema version
  (:class:`~repro.oraql.errors.JournalError` — that is a wrong-config
  foot-gun, not corruption).  A torn or missing header is corruption:
  it is counted, :attr:`SessionJournal.header_lost` is set, and any
  CRC-valid probe records that follow are still replayed — verdicts are
  keyed by executable hash, so foreign records are inert;
* ``{"t": "probe", "exe": ..., "ok": ..., "n": ..., "triage": ...}`` —
  one per newly learned verdict, appended *before* the verdict is acted
  on, flushed + fsync'd so a kill at any instruction loses at most the
  probe in flight;
* ``{"t": "measure", "exe": ..., "cycles": ..., "ok": ...}`` — one per
  cycle measurement of the importance driver (same durability contract
  as probes; replayed into :attr:`SessionJournal.measured`);
* ``{"t": "done", "pessimistic": [...]}`` — terminal marker.

Records of unknown kinds are skipped (not counted as corruption), so a
journal written by a newer schema minor-extension replays what it can.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Optional, Tuple

from .cache import config_fingerprint
from .config import BenchmarkConfig
from .errors import JournalError

JOURNAL_SCHEMA_VERSION = 1


def _crc_of(rec: dict) -> int:
    canon = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode())


def _encode(rec: dict) -> str:
    rec = dict(rec)
    rec["crc"] = _crc_of(rec)
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))


def _decode(line: str) -> Optional[dict]:
    """Parse and CRC-check one journal line; None = corrupt/torn."""
    try:
        rec = json.loads(line)
    except ValueError:
        return None
    if not isinstance(rec, dict) or "crc" not in rec:
        return None
    crc = rec.pop("crc")
    if crc != _crc_of(rec):
        return None
    return rec


def encode_record(rec: dict) -> str:
    """One CRC-carrying journal line (without the trailing newline).

    Public so other append-only logs — the service's job table — share
    the journal's torn-write detection instead of reinventing it."""
    return _encode(rec)


def decode_record(line: str) -> Optional[dict]:
    """Inverse of :func:`encode_record`; ``None`` = corrupt/torn line."""
    return _decode(line)


class SessionJournal:
    """One probing session's durable verdict log.

    ``resume=False`` starts a fresh journal (truncating any previous
    session's file); ``resume=True`` replays an existing journal into
    :attr:`replayed` and keeps appending to it.  Either way the journal
    stays open for appends for the rest of the session.
    """

    def __init__(self, path: str, fingerprint: str, strategy: str,
                 resume: bool = False):
        self.path = path
        self.fingerprint = fingerprint
        self.strategy = strategy
        #: exe hash -> (ok, unique_queries, triage) replayed on resume
        self.replayed: Dict[str, Tuple[bool, int, str]] = {}
        #: exe hash -> (cycles, ok) cycle measurements replayed on
        #: resume (importance sessions)
        self.measured: Dict[str, Tuple[float, bool]] = {}
        #: torn / CRC-failed / undecodable lines skipped during replay
        self.corrupt_records = 0
        #: appends lost to OSError (full/readonly disk) — the session
        #: keeps probing, it just becomes less resumable
        self.dropped_appends = 0
        #: True when a resumed journal's header line was torn/missing —
        #: the file is still replayed (and appended to), just no longer
        #: provably bound to this session by its header
        self.header_lost = False
        #: True when the replayed journal ends in a ``done`` record
        self.completed = False
        self.pessimistic_from_done: Optional[list] = None
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if resume and os.path.exists(path):
            self._replay()
        else:
            with open(path, "w") as f:
                f.write(_encode({"t": "header",
                                 "v": JOURNAL_SCHEMA_VERSION,
                                 "fp": fingerprint,
                                 "strategy": strategy}) + "\n")
                f.flush()
                os.fsync(f.fileno())

    @classmethod
    def for_config(cls, journal_dir: str, config: BenchmarkConfig,
                   strategy: str, resume: bool = False) -> "SessionJournal":
        """The canonical per-(config, strategy) journal file inside a
        journal directory — what ``oraql --journal DIR`` uses."""
        fp = config_fingerprint(config)
        name = f"{config.name}-{fp}-{strategy}.journal.jsonl"
        return cls(os.path.join(journal_dir, name), fp, strategy,
                   resume=resume)

    # -- replay ------------------------------------------------------------
    def _replay(self) -> None:
        try:
            with open(self.path, "r") as f:
                lines = f.readlines()
        except OSError as e:
            raise JournalError(f"cannot read journal {self.path}: {e}")
        header_seen = False
        for line in lines:
            line = line.strip()
            if not line:
                continue
            rec = _decode(line)
            if rec is None:
                self.corrupt_records += 1
                continue
            kind = rec.get("t")
            if kind == "header":
                if rec.get("v") != JOURNAL_SCHEMA_VERSION \
                        or rec.get("fp") != self.fingerprint \
                        or rec.get("strategy") != self.strategy:
                    raise JournalError(
                        f"journal {self.path} belongs to a different "
                        f"session (fp {rec.get('fp')!r} strategy "
                        f"{rec.get('strategy')!r} v{rec.get('v')!r}; "
                        f"expected fp {self.fingerprint!r} strategy "
                        f"{self.strategy!r} v{JOURNAL_SCHEMA_VERSION})")
                header_seen = True
            elif kind == "probe":
                exe, ok, n = rec.get("exe"), rec.get("ok"), rec.get("n")
                if isinstance(exe, str) and isinstance(ok, bool) \
                        and isinstance(n, int):
                    self.replayed[exe] = (ok, n,
                                          rec.get("triage") or
                                          ("ok" if ok else "wrong-output"))
                else:
                    self.corrupt_records += 1
            elif kind == "measure":
                exe, cycles, ok = rec.get("exe"), rec.get("cycles"), \
                    rec.get("ok")
                if isinstance(exe, str) and isinstance(cycles, (int, float)) \
                        and isinstance(ok, bool):
                    self.measured[exe] = (float(cycles), ok)
                else:
                    self.corrupt_records += 1
            elif kind == "done":
                self.completed = True
                self.pessimistic_from_done = rec.get("pessimistic")
        if not header_seen:
            # A torn/missing header is damage, not a wrong-config error:
            # replay what survived and keep going.  The damage is
            # already tallied in corrupt_records (unless the file was
            # simply empty, which is its own kind of loss).
            self.header_lost = True
            if not lines:
                self.corrupt_records += 1

    # -- appends -----------------------------------------------------------
    def _append(self, rec: dict) -> None:
        try:
            with open(self.path, "a") as f:
                f.write(_encode(rec) + "\n")
                f.flush()
                os.fsync(f.fileno())
        except OSError:
            # a full/readonly disk must not kill the probing session;
            # it only degrades resumability
            self.dropped_appends += 1

    def record_probe(self, exe_hash: str, ok: bool, unique_queries: int,
                     triage: str) -> None:
        self._append({"t": "probe", "exe": exe_hash, "ok": ok,
                      "n": unique_queries, "triage": triage})

    def record_measure(self, exe_hash: str, cycles: float,
                       ok: bool) -> None:
        self._append({"t": "measure", "exe": exe_hash, "cycles": cycles,
                      "ok": ok})

    def record_done(self, pessimistic_indices) -> None:
        self._append({"t": "done",
                      "pessimistic": sorted(pessimistic_indices)})
