"""Delta-keyed incremental recompilation (ROADMAP item 2).

Adjacent probes in a bisection session differ in a handful of decision
bits.  ORAQL's prefix-stability property — the k-th unique query depends
only on the answers to queries < k — extends to a *global* form this
module exploits:

    Let ``d`` be the first unique-query index where the new sequence's
    effective answer (explicit bit, or the optimistic implicit 1 past
    the end) differs from the baseline's recorded answer.  Up to
    position ``d`` the two compilations issue the identical stream of
    (query, answer) pairs, so every function whose baseline queries all
    have index < d replays its baseline optimization exactly.

Only the *affected set* F — the functions owning at least one baseline
record with index ≥ d — can optimize differently, so only F needs to be
re-run; everything else is spliced from the baseline's optimized module.
Within the restricted run, unique-query indices are remapped so the
incremental compile populates the same global index space as a full
compile would: the n-th miss inside F takes the n-th baseline sub-d
index owned by F while those last, then continues at d.

Every helper here is pure bookkeeping over the baseline's query records
(:class:`~repro.oraql.pass_.QueryRecord`); the compile-pipeline glue
lives in :meth:`repro.oraql.compiler.Compiler._compile_incremental`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ir.clone import clone_function_into, detach_uses, mirror_use_order
from ..ir.module import Module
from ..ir.instructions import CallInst
from ..ir.function import Function
from ..ir.values import GlobalVariable, Value


@dataclass
class IncrementalOutcome:
    """What one incremental compile reused vs. re-derived (attached to
    the resulting :class:`~repro.oraql.compiler.CompiledProgram`)."""

    #: first flipped unique-query index; None = the sequences agree on
    #: the whole baseline stream (the compile is a pure splice)
    delta: Optional[int]
    #: functions whose optimization was actually re-run (|F|)
    reoptimized: int
    #: functions spliced unchanged from the baseline module
    spliced: int
    total_functions: int
    codegen_hits: int = 0
    codegen_misses: int = 0
    #: the affected set was widened through the call graph (inliner)
    widened: bool = False
    #: of the re-optimized functions, how many resumed mid-pipeline
    #: from a baseline snapshot instead of re-running from the frontend
    resumed: int = 0
    #: function-pass executions skipped by mid-pipeline resume (passes
    #: below each resumed function's snapshot ordinal)
    passes_resumed_past: int = 0
    #: True when the narrow affected set (only scopes whose own answers
    #: changed) survived its replay schedule
    narrowed: bool = False


class ReplayDivergence(Exception):
    """A narrow incremental run diverged from its predicted replay
    schedule: one of the flipped answers changed its owner's query
    stream, so the splice of the other post-delta scopes is invalid.
    The compiler catches this and retries with the conservative
    affected set; ``pass_executions`` carries the aborted run's cost so
    the retry can charge it honestly."""

    def __init__(self, message: str, pass_executions: int = 0):
        super().__init__(message)
        self.pass_executions = pass_executions


@dataclass
class NarrowPlan:
    """The optimistic affected set: only scopes whose own recorded
    answers actually changed re-run (``scopes``), each resuming at the
    ordinal of its first *changed* record (``first_changed``) rather
    than its first record past the global divergence point.  Sound only
    if every re-run replays its predicted stream shape — enforced
    per-miss by the replay schedule; any divergence aborts to the
    conservative set and marks ``changed`` (the flipped indices) as
    volatile so future compiles skip the attempt."""

    scopes: Set[str]
    first_changed: Dict[str, int]
    changed: Set[int]


def effective_bit(bits: Sequence[int], index: int) -> bool:
    """The decision a sequence gives query ``index``: the explicit bit,
    or optimistic (True) past the end (§IV-A)."""
    return bool(bits[index]) if index < len(bits) else True


def decision_delta(records, bits: Sequence[int]) -> Optional[int]:
    """First unique-query index where ``bits`` answers differently from
    the baseline's recorded stream; None when every recorded query gets
    the same answer (the new compile replays the baseline verbatim —
    bits beyond the stream's end are never consumed)."""
    for rec in records:
        if rec.optimistic != effective_bit(bits, rec.index):
            return rec.index
    return None


def affected_functions(records, delta: int) -> Set[str]:
    """The scopes owning at least one unique query at index ≥ ``delta``
    — the only functions whose optimization can change."""
    return {rec.scope for rec in records if rec.index >= delta}


def sub_delta_indices(records, delta: int, scopes: Set[str]) -> List[int]:
    """Sorted baseline indices < ``delta`` owned by ``scopes`` — the
    index slots a restricted pipeline run re-fills before reaching the
    divergence point."""
    return sorted(rec.index for rec in records
                  if rec.index < delta and rec.scope in scopes)


def call_graph_closure(modules: Sequence[Module],
                       roots: Set[str]) -> Set[str]:
    """Widen ``roots`` to its closure under direct-call edges, in both
    directions, over the union of the given modules' call graphs.

    Used when the pipeline can inline: a callee's body feeds its
    callers' optimization and vice versa, so the function-local
    affected-set argument no longer bounds the blast radius."""
    edges: Dict[str, Set[str]] = {}

    def add_edge(a: str, b: str) -> None:
        edges.setdefault(a, set()).add(b)
        edges.setdefault(b, set()).add(a)

    for module in modules:
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, CallInst) and isinstance(
                        inst.callee, Function):
                    add_edge(fn.name, inst.callee.name)
    closed = set(roots)
    work = list(roots)
    while work:
        name = work.pop()
        for other in edges.get(name, ()):
            if other not in closed:
                closed.add(other)
                work.append(other)
    return closed


class RemappedDecisionSequence:
    """Duck-typed decision sequence for a function-restricted run.

    The ORAQL pass reads ``sequence.consumed`` as the unique-query index
    of the next cache miss, then calls ``next()``.  In an incremental
    compile the restricted pipeline only replays the affected set's
    queries, so the n-th local miss must land on the n-th *global* index
    the affected set owned in the baseline (``sub``), and past those on
    ``delta + (n - len(sub))`` — exactly where a full compile's stream
    would place it.  The answer is the original sequence's effective bit
    at that global index.

    A narrow run additionally passes ``schedule``: the predicted
    ``(scope, ordinal)`` of every miss.  The ORAQL pass calls
    ``observe`` before consuming each miss; a mismatch (or a miss past
    the end of the schedule) raises :class:`ReplayDivergence`
    immediately, so an invalid narrow attempt aborts at its first
    divergent query instead of completing a wasted pipeline run.
    """

    def __init__(self, bits: Sequence[int], sub: Sequence[int], delta: int,
                 schedule: Optional[List[Tuple[str, int]]] = None):
        self.bits: List[int] = [1 if b else 0 for b in bits]
        self._sub: List[int] = list(sub)
        self._delta = delta
        self._n = 0
        self._schedule = schedule

    def observe(self, scope: str, ordinal: int) -> None:
        if self._schedule is None:
            return
        n = self._n
        if n >= len(self._schedule):
            raise ReplayDivergence(
                f"miss {n} at ({scope}, {ordinal}) past the predicted "
                f"schedule of {len(self._schedule)}")
        if self._schedule[n] != (scope, ordinal):
            raise ReplayDivergence(
                f"miss {n} at ({scope}, {ordinal}) != predicted "
                f"{self._schedule[n]}")

    def index_of(self, n: int) -> int:
        if n < len(self._sub):
            return self._sub[n]
        return self._delta + (n - len(self._sub))

    @property
    def consumed(self) -> int:
        """The global index the next miss will be recorded under."""
        return self.index_of(self._n)

    def next(self) -> bool:
        index = self.index_of(self._n)
        self._n += 1
        return effective_bit(self.bits, index)

    @property
    def misses(self) -> int:
        """How many local decisions were handed out."""
        return self._n

    def reset(self) -> None:
        self._n = 0


class ResumeState:
    """Per-function resume material carried by a
    :class:`~repro.oraql.compiler.CompiledProgram`.

    ``snapshots[p]`` is a clone of the function's body as it stood
    *before* pipeline ordinal ``p`` ran — captured only for ordinals
    whose pass issued at least one new unique query for the function,
    because those are exactly the points a future delta can first
    touch.  ``capture_maps[p]`` maps the live body's value ids to the
    snapshot clone's values; composed with the restore clone's map it
    translates a recorded query key into a resumed body's value space.
    ``seed_keys`` holds, per unique-query index, the symbolic pointer
    pair of the record in *this* program's value space (``("g", name)``
    for globals, ``("f", name)`` for functions, ``("v", id)`` for
    locals), so a resumed run can pre-warm the ORAQL cache with every
    pre-resume answer — a post-divergence re-query must hit the warm
    entry exactly as it would in a full compile.
    """

    def __init__(self) -> None:
        self.snapshots: Dict[int, Function] = {}
        self.capture_maps: Dict[int, Dict[int, Value]] = {}
        self.seed_keys: Dict[int, Tuple[tuple, tuple]] = {}
        #: per snapshot ordinal, the analyses a full compile holds in
        #: cache for this function entering that ordinal — what a
        #: resumed run phantom-caches so analysis rebuilds on identical
        #: bodies do not inflate the query counters
        self.valid_at: Dict[int, FrozenSet[str]] = {}

    def best_ordinal(self, desired: int) -> int:
        """The latest snapshot ordinal ≤ ``desired`` (0 = no snapshot;
        resume from the frontend body, i.e. run the whole pipeline)."""
        best = 0
        for o in self.snapshots:
            if best < o <= desired:
                best = o
        return best


def symbolic_ptr(ptr) -> tuple:
    """A value reference that survives module boundaries: globals and
    functions by name, everything else by value id."""
    if isinstance(ptr, GlobalVariable):
        return ("g", ptr.name)
    if isinstance(ptr, Function):
        return ("f", ptr.name)
    return ("v", ptr.id)


def seed_key_for(rec) -> Tuple[tuple, tuple]:
    """The symbolic cache key of a record, in the value space of the
    program whose compile issued it."""
    return (symbolic_ptr(rec.a.ptr), symbolic_ptr(rec.b.ptr))


def translate_entry(entry: tuple, module: Module,
                    capture: Dict[int, Value],
                    restore: Dict[int, Value]) -> Optional[tuple]:
    """One symbolic key entry pushed through capture ∘ restore into a
    resumed body's value space; None when the value is dead at the
    snapshot point (then no query in the resumed run — or in the full
    compile it mirrors — can ever reference it)."""
    kind, val = entry
    if kind in ("g", "f"):
        return entry
    snap_val = capture.get(val)
    if snap_val is None:
        return None
    new_val = restore.get(snap_val.id)
    if new_val is None:
        return None
    return ("v", new_val.id)


def resolve_key(key: Tuple[tuple, tuple],
                module: Module) -> Optional[frozenset]:
    """A symbolic key (already in the target program's value space)
    materialized as the ORAQL cache's frozenset of value ids."""
    ids = []
    for kind, val in key:
        if kind == "g":
            g = module.globals.get(val)
            if g is None:
                return None
            ids.append(g.id)
        elif kind == "f":
            f = module.functions.get(val)
            if f is None:
                return None
            ids.append(f.id)
        else:
            ids.append(val)
    return frozenset(ids)


class SnapshotCollector:
    """Captures pre-pass body snapshots during a pipeline run.

    Installed on the :class:`CompilationContext` by the compiler when a
    program may serve as a future incremental baseline.  ``before``
    clones the function about to be transformed; ``after`` keeps the
    clone only when the pass issued a new unique ORAQL query for that
    function — the only ordinals a future decision-sequence delta can
    name as a resume point.
    """

    def __init__(self, oraql, module: Module, ctx=None) -> None:
        self.oraql = oraql
        self.module = module
        self.ctx = ctx  # CompilationContext; source of the valid sets
        self.states: Dict[str, ResumeState] = {}
        self._pending: Optional[tuple] = None

    def before(self, fn: Function, ordinal: int) -> None:
        vmap: Dict[int, Value] = {}
        snap = clone_function_into(fn, self.module, value_map=vmap)
        # the snapshot must not appear as a *user* of live module values,
        # or use-counting passes see phantom uses and optimize differently
        detach_uses(snap)
        # preserve the live body's use-list iteration order (creation
        # order, which phi placement and sinking depend on) so a future
        # restore can replay it bit-faithfully
        mirror_use_order(fn, vmap)
        valid = (self.ctx.am.valid_set(fn) if self.ctx is not None
                 else frozenset())
        self._pending = (fn.name, ordinal, snap, vmap, valid,
                         len(self.oraql.records))

    def after(self, fn: Function, ordinal: int) -> None:
        pending = self._pending
        self._pending = None
        if pending is None:
            return
        name, o, snap, vmap, valid, n0 = pending
        if name != fn.name or o != ordinal:
            return
        records = self.oraql.records
        if any(r.scope == name for r in records[n0:]):
            st = self.states.setdefault(name, ResumeState())
            st.snapshots[o] = snap
            st.capture_maps[o] = vmap
            st.valid_at[o] = valid


class BaselineCache:
    """Small LRU of recent probe programs, the candidate baselines for
    the next incremental compile.

    ``best_for`` picks the candidate minimizing the estimated re-run
    cost for the requested bits: fewest affected functions, each
    weighted by how much pipeline its resume snapshot skips.  A longer
    agreeing prefix usually wins, but a slightly earlier divergence
    that stays inside one function beats a later one that fans out over
    many.  Programs that fell back to a full compile are still
    perfectly good baselines — any program carrying ORAQL records is.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self._progs: List[object] = []

    def add(self, prog) -> None:
        if prog is None or prog.oraql is None:
            return
        if prog in self._progs:
            self._progs.remove(prog)
        self._progs.append(prog)
        while len(self._progs) > self.capacity:
            self._progs.pop(0)

    def __len__(self) -> int:
        return len(self._progs)

    #: per-function weight of a from-scratch re-optimization in the
    #: cost estimate; a resume snapshot at ordinal j discounts j units
    _FN_COST = 1000

    def estimated_cost(self, prog, bits: Sequence[int]) -> int:
        """Predicted re-run cost of compiling ``bits`` against ``prog``:
        0 for a verbatim replay, otherwise one :data:`_FN_COST` per
        affected function minus the pipeline prefix its best resume
        snapshot would skip."""
        records = prog.oraql.records
        d = decision_delta(records, bits)
        if d is None:
            return 0
        first_ord: Dict[str, int] = {}
        for rec in records:
            if rec.index >= d and rec.scope not in first_ord:
                first_ord[rec.scope] = rec.ordinal
        cost = 0
        resume = getattr(prog, "resume", None) or {}
        for scope, desired in first_ord.items():
            st = resume.get(scope)
            j = st.best_ordinal(desired) if st is not None else 0
            cost += self._FN_COST - min(j, self._FN_COST)
        return cost

    def best_for(self, bits: Sequence[int]):
        """The cached program minimizing the estimated re-run cost for
        ``bits`` (ties: later divergence, then most recently used), or
        None when empty."""
        best: Optional[Tuple[int, int, int]] = None
        found = None
        for age, prog in enumerate(self._progs):
            records = prog.oraql.records
            d = decision_delta(records, bits)
            agree = len(records) + 1 if d is None else d
            score = (-self.estimated_cost(prog, bits), agree, age)
            if best is None or score > best:
                best = score
                found = prog
        return found
