"""Override mode (paper §VIII, future work).

The production ORAQL design cannot reason about queries the existing
analyses already answer: it sits last in the chain, so no-alias and
must-alias results reach their consumers unchanged.  The paper's
conclusion sketches the complementary design — *block* existing
analyses and force pessimistic answers in order to measure the value of
the information the chain already provides.

``OraqlOverridePass`` implements that design: it sits *in front of* the
chain, and for each unique pointer pair a decision bit selects between
``1`` (defer — let the chain answer as usual) and ``0`` (force
may-alias, hiding whatever the chain knows).  Forcing pessimism is
always sound, so there is no verification loop; the interesting outputs
are the statistics/performance deltas, measured by
:func:`measure_chain_value`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..analysis.aliasing import AliasResult
from ..analysis.memloc import MemoryLocation
from ..ir.function import Function
from .sequence import DecisionSequence


class OraqlOverridePass:
    """Decision-driven suppressor of the existing analyses' answers."""

    name = "oraql-override"

    def __init__(self, sequence: Optional[DecisionSequence] = None):
        self.sequence = sequence if sequence is not None else DecisionSequence()
        self.cache: Dict[FrozenSet[int], bool] = {}
        self.deferred_unique = 0
        self.forced_unique = 0
        self.forced_cached = 0

    def reset(self) -> None:
        self.cache.clear()
        self.sequence.reset()

    def should_force_may(self, a: MemoryLocation, b: MemoryLocation,
                         fn: Optional[Function]) -> bool:
        """True = hide the chain's answer for this pair (force may)."""
        key = frozenset((a.ptr.id, b.ptr.id))
        hit = self.cache.get(key)
        if hit is not None:
            if hit:
                self.forced_cached += 1
            return hit
        # decision bit: 1 = defer to the chain, 0 = force pessimistic.
        # Past the end of the sequence we force (the all-pessimistic
        # default matches the mode's purpose: measure the chain's value;
        # note this inverts the probing pass's optimistic tail).
        if self.sequence.consumed < len(self.sequence):
            force = not self.sequence.next()
        else:
            self.sequence.consumed += 1
            force = True
        self.cache[key] = force
        if force:
            self.forced_unique += 1
        else:
            self.deferred_unique += 1
        return force


@dataclass
class ChainValueReport:
    """The measured value of the existing analyses (override ablation)."""

    config_name: str
    no_alias_normal: int
    no_alias_suppressed: int
    instructions_normal: int
    instructions_suppressed: int
    cycles_normal: float
    cycles_suppressed: float

    @property
    def instruction_cost_percent(self) -> float:
        if self.instructions_normal == 0:
            return 0.0
        return 100.0 * (self.instructions_suppressed
                        - self.instructions_normal) \
            / self.instructions_normal

    def summary(self) -> str:
        return (f"{self.config_name}: suppressing the AA chain keeps only "
                f"{self.no_alias_suppressed}/{self.no_alias_normal} "
                f"no-alias answers and costs "
                f"{self.instruction_cost_percent:+.1f}% instructions")


def measure_chain_value(config, compiler=None) -> ChainValueReport:
    """Compile a benchmark normally and with every chain answer forced
    pessimistic; report the delta (the §VIII experiment)."""
    from .compiler import Compiler

    compiler = compiler or Compiler()
    normal = compiler.compile(config, oraql_enabled=False)
    rn = normal.run()
    if not rn.ok:
        raise RuntimeError(f"baseline failed: {rn.error}")

    suppressed = compiler.compile(config, oraql_enabled=False,
                                  suppress_chain=True)
    rs = suppressed.run()
    if not rs.ok:
        raise RuntimeError(
            f"suppressed build failed — pessimism must be sound: {rs.error}")
    if rs.stdout != rn.stdout:
        # filtered comparison: timing lines may differ
        from .verify import VerificationScript
        v = VerificationScript([rn.stdout], config.output_filters)
        if not v.check(rs):
            raise RuntimeError("suppressed build changed program output — "
                               "forced pessimism must be sound")
    return ChainValueReport(
        config.name,
        normal.no_alias_count, suppressed.no_alias_count,
        rn.instructions, rs.instructions,
        rn.cycles, rs.cycles)
