"""The compilation entry point the probing driver invokes.

Plays the role of the paper's ``clang -mllvm -opt-aa-seq=...``: MiniC
sources → IR modules → (optional manual LTO link) → optimization
pipeline with the ORAQL pass appended to the AA chain → "executable"
(the optimized module plus codegen artifacts), runnable on the VM.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import DEFAULT_AA_CHAIN
from ..codegen import KernelInfo, compile_device_kernels, run_codegen
from ..frontend import FrontendOptions, compile_source
from ..ir import Module, module_hash, verify_module
from ..passes import CompilationContext, PassManager, build_pipeline
from ..vm import Machine, MPIWorld, VMError
from .config import BenchmarkConfig
from .pass_ import DumpFlags, OraqlAAPass
from .sequence import DecisionSequence
from .verify import RunResult


@dataclass
class CompiledProgram:
    """An "executable": the optimized module plus everything needed to
    run it and to report on the compilation."""

    config: BenchmarkConfig
    module: Module
    ctx: CompilationContext
    oraql: Optional[OraqlAAPass]
    kernel_info: Dict[str, KernelInfo]
    codegen: Dict[str, object]
    exe_hash: str

    # -- execution ---------------------------------------------------------
    def run(self, fuel: Optional[int] = None,
            wall_clock: Optional[float] = None,
            cost_model=None) -> RunResult:
        """Execute the program on the VM.

        ``fuel`` overrides the config's instruction budget and
        ``wall_clock`` arms a per-run wall-clock deadline — the probing
        runtime's per-test budgets (a miscompiled binary may loop
        forever; the budget turns that into a ``step-limit`` triage
        instead of a hung driver).  ``cost_model`` overrides the VM's
        default :class:`~repro.vm.CostModel` — measurement sessions pass
        a strict model so unpriced operations crash loudly instead of
        silently distorting cycle deltas."""
        cfg = self.config
        max_steps = cfg.max_steps if fuel is None else fuel
        trace = self.ctx.trace
        with (trace.phase("vm-run") if trace is not None
              else nullcontext()):
            return self._run(cfg, max_steps, wall_clock, cost_model)

    def _run(self, cfg: BenchmarkConfig, max_steps: int,
             wall_clock: Optional[float], cost_model=None) -> RunResult:
        try:
            if cfg.nranks > 1:
                machines = [
                    Machine(self.module, max_steps=max_steps,
                            cost_model=cost_model,
                            kernel_info=self.kernel_info,
                            num_threads=cfg.num_threads, argv=cfg.argv,
                            wall_clock=wall_clock)
                    for _ in range(cfg.nranks)
                ]
                for m in machines:
                    m.start(cfg.entry)
                MPIWorld(machines).run()
                state = ("done" if all(m.state == "done" for m in machines)
                         else "trapped")
                first_error = next((m.error for m in machines
                                    if m.error is not None), None)
                err = str(first_error) if first_error is not None else None
                kind = (type(first_error).__name__
                        if first_error is not None else None)
                out = "".join(m.output() for m in machines)
                insts = sum(m.instructions for m in machines)
                cycles = max(m.cycles for m in machines)
                kcycles: Dict[str, float] = {}
                for m in machines:
                    for k, v in m.kernel_cycles.items():
                        kcycles[k] = kcycles.get(k, 0.0) + v
                return RunResult(out, state, err, insts, cycles, kcycles,
                                 error_kind=kind)
            m = Machine(self.module, max_steps=max_steps,
                        cost_model=cost_model,
                        kernel_info=self.kernel_info,
                        num_threads=cfg.num_threads, argv=cfg.argv,
                        wall_clock=wall_clock)
            m.start(cfg.entry)
            m.run_to_completion()
            return RunResult(m.output(), m.state,
                             str(m.error) if m.error else None,
                             m.instructions, m.cycles, dict(m.kernel_cycles),
                             error_kind=(type(m.error).__name__
                                         if m.error else None))
        except VMError as e:  # scheduler-level failures (deadlock)
            return RunResult("", "trapped", str(e),
                             error_kind=type(e).__name__)

    # -- reporting -----------------------------------------------------------
    @property
    def stats(self):
        return self.ctx.stats

    @property
    def no_alias_count(self) -> int:
        return self.ctx.aa.no_alias_count

    @property
    def analysis_counters(self) -> Dict[str, Dict[str, int]]:
        """AnalysisManager bookkeeping: builds / cache hits / rebuilds
        avoided by fine-grained invalidation, per analysis name."""
        return self.ctx.am.counters()


class Compiler:
    """Deterministic compiler: same config + same sequence ⇒ same hash.

    ``verify_analyses`` and ``invalidation`` set per-instance defaults
    for every ``compile`` call (the CLI's ``--verify-analyses`` plumbs
    through here so the probing drivers inherit it)."""

    def __init__(self, frontend_options: Optional[FrontendOptions] = None,
                 verify_analyses: bool = False,
                 invalidation: str = "fine"):
        self.frontend_options = frontend_options or FrontendOptions()
        self.verify_analyses = verify_analyses
        self.invalidation = invalidation

    def compile(self, config: BenchmarkConfig,
                sequence: Optional[DecisionSequence] = None,
                oraql_enabled: bool = False,
                dump: Optional[DumpFlags] = None,
                debug_pass_executions: bool = False,
                suppress_chain: bool = False,
                override=None,
                verify_analyses: Optional[bool] = None,
                invalidation: Optional[str] = None,
                trace=None) -> CompiledProgram:
        if verify_analyses is None:
            verify_analyses = self.verify_analyses
        if invalidation is None:
            invalidation = self.invalidation

        def timed(name):
            return trace.phase(name) if trace is not None else nullcontext()

        # 1. frontend: one module per translation unit
        modules: List[Module] = []
        with timed("frontend"):
            for src in config.sources:
                modules.append(compile_source(src.text, src.name,
                                              options=self.frontend_options))

        # 2. ORAQL pass appended to the chain when probing; one pass
        #    instance is shared across translation units so the decision
        #    sequence is consumed in deterministic source order
        oraql: Optional[OraqlAAPass] = None
        if oraql_enabled:
            # a reused sequence object must answer from the top: unique-
            # query indices are positions in the decision stream, and a
            # sequence carried over from a previous compile (a report's
            # final_sequence measured again by the importance driver)
            # would shift the whole index space by its consumed count,
            # silently detaching provenance from the real queries
            if sequence is not None:
                sequence.reset()
            oraql = OraqlAAPass(
                sequence=sequence if sequence is not None
                else DecisionSequence(),
                target_filter=config.target_filter,
                probe_functions=config.probe_function_set(),
                probe_files=config.probe_file_set(),
                dump=dump,
            )
        # override mode (paper §VIII): force chain answers pessimistic
        if suppress_chain and override is None:
            from .override import OraqlOverridePass
            override = OraqlOverridePass(DecisionSequence())

        chain = tuple(config.aa_chain) if config.aa_chain else DEFAULT_AA_CHAIN
        pipeline = build_pipeline(config.opt_level)

        if config.lto or len(modules) == 1:
            # 3a. manual LTO: link everything into one module *before*
            #     optimization so interprocedural passes see the whole
            #     program (§V-A-d)
            main = modules[0]
            for other in modules[1:]:
                main.link(other)
            verify_module(main)
            ctx = CompilationContext(
                main, aa_chain=chain, oraql=oraql, override=override,
                debug_pass_executions=debug_pass_executions,
                verify_analyses=verify_analyses, invalidation=invalidation,
                trace=trace)
            with timed("passes"):
                PassManager(ctx).run(pipeline)
            verify_module(main)
        else:
            # 3b. non-LTO: optimize each translation unit in isolation
            #     (no cross-TU inlining or analysis), then link the
            #     optimized modules for execution
            contexts: List[CompilationContext] = []
            for module in modules:
                verify_module(module)
                mctx = CompilationContext(
                    module, aa_chain=chain, oraql=oraql, override=override,
                    debug_pass_executions=debug_pass_executions,
                    verify_analyses=verify_analyses,
                    invalidation=invalidation, trace=trace)
                # a fresh pipeline per TU: passes may keep per-run state
                with timed("passes"):
                    PassManager(mctx).run(build_pipeline(config.opt_level))
                verify_module(module)
                contexts.append(mctx)
            main = modules[0]
            for other in modules[1:]:
                main.link(other)
            verify_module(main)
            # fold the per-TU bookkeeping into the first context, which
            # becomes the program's reporting context
            ctx = contexts[0]
            for other_ctx in contexts[1:]:
                ctx.stats.merge(other_ctx.stats)
                ctx.aa.no_alias_count += other_ctx.aa.no_alias_count
                ctx.aa.must_alias_count += other_ctx.aa.must_alias_count
                ctx.aa.total_queries += other_ctx.aa.total_queries
                ctx.aa.no_alias_by_pass.update(other_ctx.aa.no_alias_by_pass)
                ctx.aa.queries_by_issuer.update(
                    other_ctx.aa.queries_by_issuer)
                ctx.am.merge_counters(other_ctx.am)
                ctx.debug_log.extend(other_ctx.debug_log)
            if oraql is not None:
                oraql.attach(ctx)

        # 4. codegen: host statistics + device kernels (Fig. 6 / Fig. 7)
        with timed("codegen"):
            codegen = run_codegen(main, ctx.stats, target="host")
            kernels = compile_device_kernels(main, target="nvptx")
        for name, ki in kernels.items():
            ctx.stats.add("asm printer", "# machine instructions generated",
                          ki.machine_insts)

        exe_hash = self._hash(main, kernels)
        if trace is not None:
            trace.record_stats(ctx.stats)
        return CompiledProgram(config, main, ctx, oraql, kernels, codegen,
                               exe_hash)

    @staticmethod
    def _hash(module: Module, kernels: Dict[str, KernelInfo]) -> str:
        h = hashlib.sha256(module_hash(module).encode())
        for name in sorted(kernels):
            ki = kernels[name]
            h.update(f"{name}:{ki.registers}:{ki.stack_bytes}".encode())
        return h.hexdigest()
