"""The compilation entry point the probing driver invokes.

Plays the role of the paper's ``clang -mllvm -opt-aa-seq=...``: MiniC
sources → IR modules → (optional manual LTO link) → optimization
pipeline with the ORAQL pass appended to the AA chain → "executable"
(the optimized module plus codegen artifacts), runnable on the VM.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import DEFAULT_AA_CHAIN
from ..codegen import (
    FunctionCodegen,
    KernelInfo,
    codegen_function,
    compile_kernel,
)
from ..frontend import FrontendOptions, compile_source
from ..ir import (
    Module,
    clone_function_into,
    function_hash,
    mirror_use_order,
    print_module_header,
    repoint_functions,
    verify_module,
)
from ..passes import CompilationContext, PassManager, build_pipeline
from ..passes.inliner import Inliner
from ..passes.pass_manager import ModulePass
from ..vm import Machine, MPIWorld, VMError
from .cache import config_fingerprint
from .config import BenchmarkConfig
from .incremental import (
    IncrementalOutcome,
    NarrowPlan,
    RemappedDecisionSequence,
    ReplayDivergence,
    ResumeState,
    SnapshotCollector,
    affected_functions,
    call_graph_closure,
    decision_delta,
    effective_bit,
    resolve_key,
    seed_key_for,
    translate_entry,
)
from .pass_ import DumpFlags, OraqlAAPass
from .sequence import DecisionSequence
from .verify import RunResult


@dataclass
class CompiledProgram:
    """An "executable": the optimized module plus everything needed to
    run it and to report on the compilation."""

    config: BenchmarkConfig
    module: Module
    ctx: CompilationContext
    oraql: Optional[OraqlAAPass]
    kernel_info: Dict[str, KernelInfo]
    codegen: Dict[str, object]
    exe_hash: str
    #: per-function body hashes (module order, every function incl.
    #: declarations); ``exe_hash`` is assembled from these, so an
    #: incremental compile can splice a baseline's entries without
    #: re-rendering the unchanged bodies
    fn_hashes: Dict[str, str] = field(default_factory=dict)
    #: bookkeeping of the incremental compile that produced this
    #: program; None for a full compile
    incremental: Optional[IncrementalOutcome] = None
    #: per-function resume material (pre-pass body snapshots + query
    #: seed keys), populated when the compile was asked to collect it;
    #: what lets the *next* incremental compile resume an affected
    #: function mid-pipeline instead of re-running it from the frontend
    resume: Dict[str, ResumeState] = field(default_factory=dict)

    # -- execution ---------------------------------------------------------
    def run(self, fuel: Optional[int] = None,
            wall_clock: Optional[float] = None,
            cost_model=None) -> RunResult:
        """Execute the program on the VM.

        ``fuel`` overrides the config's instruction budget and
        ``wall_clock`` arms a per-run wall-clock deadline — the probing
        runtime's per-test budgets (a miscompiled binary may loop
        forever; the budget turns that into a ``step-limit`` triage
        instead of a hung driver).  ``cost_model`` overrides the VM's
        default :class:`~repro.vm.CostModel` — measurement sessions pass
        a strict model so unpriced operations crash loudly instead of
        silently distorting cycle deltas."""
        cfg = self.config
        max_steps = cfg.max_steps if fuel is None else fuel
        trace = self.ctx.trace
        with (trace.phase("vm-run") if trace is not None
              else nullcontext()):
            return self._run(cfg, max_steps, wall_clock, cost_model)

    def _run(self, cfg: BenchmarkConfig, max_steps: int,
             wall_clock: Optional[float], cost_model=None) -> RunResult:
        try:
            if cfg.nranks > 1:
                machines = [
                    Machine(self.module, max_steps=max_steps,
                            cost_model=cost_model,
                            kernel_info=self.kernel_info,
                            num_threads=cfg.num_threads, argv=cfg.argv,
                            wall_clock=wall_clock)
                    for _ in range(cfg.nranks)
                ]
                for m in machines:
                    m.start(cfg.entry)
                MPIWorld(machines).run()
                state = ("done" if all(m.state == "done" for m in machines)
                         else "trapped")
                first_error = next((m.error for m in machines
                                    if m.error is not None), None)
                err = str(first_error) if first_error is not None else None
                kind = (type(first_error).__name__
                        if first_error is not None else None)
                out = "".join(m.output() for m in machines)
                insts = sum(m.instructions for m in machines)
                cycles = max(m.cycles for m in machines)
                kcycles: Dict[str, float] = {}
                for m in machines:
                    for k, v in m.kernel_cycles.items():
                        kcycles[k] = kcycles.get(k, 0.0) + v
                return RunResult(out, state, err, insts, cycles, kcycles,
                                 error_kind=kind)
            m = Machine(self.module, max_steps=max_steps,
                        cost_model=cost_model,
                        kernel_info=self.kernel_info,
                        num_threads=cfg.num_threads, argv=cfg.argv,
                        wall_clock=wall_clock)
            m.start(cfg.entry)
            m.run_to_completion()
            return RunResult(m.output(), m.state,
                             str(m.error) if m.error else None,
                             m.instructions, m.cycles, dict(m.kernel_cycles),
                             error_kind=(type(m.error).__name__
                                         if m.error else None))
        except VMError as e:  # scheduler-level failures (deadlock)
            return RunResult("", "trapped", str(e),
                             error_kind=type(e).__name__)

    # -- reporting -----------------------------------------------------------
    @property
    def stats(self):
        return self.ctx.stats

    @property
    def no_alias_count(self) -> int:
        return self.ctx.aa.no_alias_count

    @property
    def analysis_counters(self) -> Dict[str, Dict[str, int]]:
        """AnalysisManager bookkeeping: builds / cache hits / rebuilds
        avoided by fine-grained invalidation, per analysis name."""
        return self.ctx.am.counters()

    @property
    def pass_executions(self) -> int:
        """Pass executions this compile performed (per-function runs +
        module-pass runs; per-TU contexts are folded in)."""
        return self.ctx.pass_executions


class Compiler:
    """Deterministic compiler: same config + same sequence ⇒ same hash.

    ``verify_analyses`` and ``invalidation`` set per-instance defaults
    for every ``compile`` call (the CLI's ``--verify-analyses`` plumbs
    through here so the probing drivers inherit it)."""

    def __init__(self, frontend_options: Optional[FrontendOptions] = None,
                 verify_analyses: bool = False,
                 invalidation: str = "fine"):
        self.frontend_options = frontend_options or FrontendOptions()
        self.verify_analyses = verify_analyses
        self.invalidation = invalidation
        #: content-addressed codegen caches: body hash → artifact.  The
        #: key is the *printed body* hash, so hash-identical functions
        #: hash-hit across probes (and across configs compiled by the
        #: same Compiler) without re-lowering
        self._codegen_cache: Dict[Tuple[str, str], FunctionCodegen] = {}
        self._kernel_cache: Dict[Tuple[str, str],
                                 Tuple[int, int, int]] = {}
        self.codegen_hits = 0
        self.codegen_misses = 0
        # incremental-compile accounting (per Compiler instance)
        self.incremental_attempts = 0
        self.incremental_fallbacks = 0
        #: per config fingerprint, decision indices whose flips changed
        #: their owner's query stream shape — narrow attempts touching
        #: one of these go straight to the conservative affected set
        self._volatile: Dict[str, set] = {}

    def compile(self, config: BenchmarkConfig,
                sequence: Optional[DecisionSequence] = None,
                oraql_enabled: bool = False,
                dump: Optional[DumpFlags] = None,
                debug_pass_executions: bool = False,
                suppress_chain: bool = False,
                override=None,
                verify_analyses: Optional[bool] = None,
                invalidation: Optional[str] = None,
                trace=None,
                baseline: Optional[CompiledProgram] = None,
                collect_resume: bool = False
                ) -> CompiledProgram:
        if verify_analyses is None:
            verify_analyses = self.verify_analyses
        if invalidation is None:
            invalidation = self.invalidation

        def timed(name):
            return trace.phase(name) if trace is not None else nullcontext()

        # incremental path: re-derive only what the decision-sequence
        # delta can affect, splicing the rest from the baseline.  Any
        # precondition failure (or the post-run replay guard) falls
        # back to the full compile below — correctness never depends on
        # the incremental machinery.
        if (baseline is not None and oraql_enabled
                and sequence is not None
                and override is None and not suppress_chain
                and trace is None and not verify_analyses
                and not debug_pass_executions
                and (dump is None or not dump.any())):
            prog = self._compile_incremental(config, sequence, baseline,
                                             invalidation, collect_resume)
            if prog is not None:
                return prog

        # 1. frontend: one module per translation unit
        modules: List[Module] = []
        with timed("frontend"):
            for src in config.sources:
                modules.append(compile_source(src.text, src.name,
                                              options=self.frontend_options))

        # 2. ORAQL pass appended to the chain when probing; one pass
        #    instance is shared across translation units so the decision
        #    sequence is consumed in deterministic source order
        oraql: Optional[OraqlAAPass] = None
        if oraql_enabled:
            # a reused sequence object must answer from the top: unique-
            # query indices are positions in the decision stream, and a
            # sequence carried over from a previous compile (a report's
            # final_sequence measured again by the importance driver)
            # would shift the whole index space by its consumed count,
            # silently detaching provenance from the real queries
            if sequence is not None:
                sequence.reset()
            oraql = OraqlAAPass(
                sequence=sequence if sequence is not None
                else DecisionSequence(),
                target_filter=config.target_filter,
                probe_functions=config.probe_function_set(),
                probe_files=config.probe_file_set(),
                dump=dump,
            )
        # override mode (paper §VIII): force chain answers pessimistic
        if suppress_chain and override is None:
            from .override import OraqlOverridePass
            override = OraqlOverridePass(DecisionSequence())

        chain = tuple(config.aa_chain) if config.aa_chain else DEFAULT_AA_CHAIN
        pipeline = build_pipeline(config.opt_level)

        if config.lto or len(modules) == 1:
            # 3a. manual LTO: link everything into one module *before*
            #     optimization so interprocedural passes see the whole
            #     program (§V-A-d)
            main = modules[0]
            for other in modules[1:]:
                main.link(other)
            verify_module(main)
            ctx = CompilationContext(
                main, aa_chain=chain, oraql=oraql, override=override,
                debug_pass_executions=debug_pass_executions,
                verify_analyses=verify_analyses, invalidation=invalidation,
                trace=trace)
            if collect_resume and oraql is not None:
                ctx.resume_collector = SnapshotCollector(oraql, main, ctx)
            with timed("passes"):
                PassManager(ctx).run(pipeline)
            verify_module(main)
        else:
            # 3b. non-LTO: optimize each translation unit in isolation
            #     (no cross-TU inlining or analysis), then link the
            #     optimized modules for execution
            contexts: List[CompilationContext] = []
            for module in modules:
                verify_module(module)
                mctx = CompilationContext(
                    module, aa_chain=chain, oraql=oraql, override=override,
                    debug_pass_executions=debug_pass_executions,
                    verify_analyses=verify_analyses,
                    invalidation=invalidation, trace=trace)
                # a fresh pipeline per TU: passes may keep per-run state
                with timed("passes"):
                    PassManager(mctx).run(build_pipeline(config.opt_level))
                verify_module(module)
                contexts.append(mctx)
            main = modules[0]
            for other in modules[1:]:
                main.link(other)
            verify_module(main)
            # fold the per-TU bookkeeping into the first context, which
            # becomes the program's reporting context
            ctx = contexts[0]
            for other_ctx in contexts[1:]:
                ctx.merge(other_ctx)
            if oraql is not None:
                oraql.attach(ctx)

        # 4. codegen: host statistics + device kernels (Fig. 6 / Fig. 7),
        #    served through the content-addressed per-function cache
        with timed("codegen"):
            fn_hashes = {name: function_hash(fn)
                         for name, fn in main.functions.items()}
            codegen = self._codegen_cached(main, ctx.stats, fn_hashes)
            kernels = self._kernels_cached(main, fn_hashes)
        for name, ki in kernels.items():
            ctx.stats.add("asm printer", "# machine instructions generated",
                          ki.machine_insts)

        exe_hash = self._hash(main, kernels, fn_hashes)
        if dump is not None and dump.any():
            # per-function body hashes, for debugging splice mismatches
            for name, fh in fn_hashes.items():
                ctx.log(f"[fn-hash] {name} {fh}")
        if trace is not None:
            trace.record_stats(ctx.stats)
        resume: Dict[str, ResumeState] = {}
        if ctx.resume_collector is not None and oraql is not None:
            # resume material: the collector's snapshots plus, per
            # record, the symbolic cache key in this program's value
            # space (what a future resumed compile warms its cache with)
            resume = ctx.resume_collector.states
            for rec in oraql.records:
                st = resume.setdefault(rec.scope, ResumeState())
                st.seed_keys[rec.index] = seed_key_for(rec)
        return CompiledProgram(config, main, ctx, oraql, kernels, codegen,
                               exe_hash, fn_hashes=fn_hashes, resume=resume)

    # -- codegen through the content-addressed cache -----------------------
    def _codegen_cached(self, module: Module, stats, fn_hashes:
                        Dict[str, str],
                        target: str = "host") -> Dict[str, FunctionCodegen]:
        """:func:`~repro.codegen.run_codegen` with a body-hash keyed
        cache; identical selection logic and statistics side effects."""
        out: Dict[str, FunctionCodegen] = {}
        for fn in module.defined_functions():
            if fn.target != target:
                continue
            key = (fn_hashes[fn.name], target)
            cg = self._codegen_cache.get(key)
            if cg is None:
                cg = codegen_function(fn)
                self._codegen_cache[key] = cg
                self.codegen_misses += 1
            else:
                self.codegen_hits += 1
            out[fn.name] = cg
            stats.add("asm printer", "# machine instructions generated",
                      cg.machine_insts)
            stats.add("register allocation", "# register spills inserted",
                      cg.spills)
        return out

    def _kernels_cached(self, module: Module, fn_hashes: Dict[str, str],
                        target: str = "nvptx") -> Dict[str, KernelInfo]:
        """:func:`~repro.codegen.compile_device_kernels` with the cache;
        KernelInfo is rebuilt around the function's own name (two
        same-bodied kernels under different names share one entry)."""
        out: Dict[str, KernelInfo] = {}
        for fn in module.defined_functions():
            if fn.target != target:
                continue
            key = (fn_hashes[fn.name], f"kernel:{target}")
            cached = self._kernel_cache.get(key)
            if cached is None:
                ki = compile_kernel(fn)
                self._kernel_cache[key] = (ki.registers, ki.stack_bytes,
                                           ki.machine_insts)
                self.codegen_misses += 1
            else:
                regs, stack, insts = cached
                ki = KernelInfo(fn.name, regs, stack, insts)
                self.codegen_hits += 1
            out[fn.name] = ki
        return out

    @staticmethod
    def _hash(module: Module, kernels: Dict[str, KernelInfo],
              fn_hashes: Dict[str, str]) -> str:
        """The executable hash: module header text, then the
        per-function body hashes in module order, then the kernel
        properties.  Composition from ``fn_hashes`` (rather than one
        monolithic module print) is what lets the incremental compiler
        assemble a bit-identical hash while splicing baseline entries
        for functions it never re-rendered."""
        h = hashlib.sha256(print_module_header(module).encode())
        for name, fh in fn_hashes.items():
            h.update(f"{name}={fh}\n".encode())
        for name in sorted(kernels):
            ki = kernels[name]
            h.update(f"{name}:{ki.registers}:{ki.stack_bytes}".encode())
        return h.hexdigest()

    # -- incremental recompilation ----------------------------------------
    def _compile_incremental(self, config: BenchmarkConfig,
                             sequence: DecisionSequence,
                             baseline: CompiledProgram,
                             invalidation: str,
                             collect_resume: bool = False
                             ) -> Optional[CompiledProgram]:
        """Recompile against a baseline, re-running only the affected
        functions — and only the affected *tail* of each one's pipeline;
        None means "take the full path".

        Soundness rests on global prefix stability: with ``d`` the first
        index where the new sequence's effective answers diverge from
        the baseline's recorded stream, both compiles issue the
        identical (query, answer) stream up to ``d``.  A function whose
        baseline queries all sit below ``d`` therefore replays its
        baseline optimization bit for bit — its optimized body is
        spliced instead of re-derived.  The affected set F (scopes
        owning a record at index ≥ d) re-runs the pipeline with a
        remapped sequence that re-fills the sub-``d`` index slots F will
        actually re-issue, so the unique-query index space matches the
        full compile's exactly.

        The same argument holds at pass granularity: per-function
        records are issued in execution order, so an affected function's
        records *before* its first index-≥-d record all replay exactly —
        its body entering that record's pipeline ordinal is identical to
        the full compile's.  When the baseline carries a body snapshot
        at (or before) that ordinal, the function resumes there instead
        of re-running from the frontend, with two pieces of seeding
        keeping the resumed run observationally identical to a full one:

        * the ORAQL pointer-pair cache is pre-warmed with every
          pre-resume answer (keys translated capture ∘ restore into the
          restored body's value space) — a post-divergence re-query must
          hit the warm entry exactly as it would in a full compile;
        * analyses the full compile would be holding in cache at the
          resume point are phantom-cached: their first rebuild (on a
          body identical to the preserved result) runs with chain
          counters suppressed and is accounted as a preserved hit.

        Together with per-(scope, ordinal) seeding of the chain tallies
        and cached-query counters for all never-replayed work, every
        aggregate number — unique/cached queries, no-alias counts,
        per-pass attribution — is assembled bit-identical to a full
        compile, so even the session's *final* (report-feeding) compile
        can be incremental.

        A post-run guard replays the argument: each re-optimized
        function must have re-issued exactly the sub-``d`` index
        multiset it was predicted to.  Any violation — e.g. the
        pointer-pair cache sharing an entry across functions (only
        same-named globals can form such pairs, and the chain answers
        those before ORAQL) — trips the guard and falls back to a full
        compile.

        On top of the conservative set, a *narrow* first attempt: only
        the scopes whose own recorded answers actually changed re-run,
        each resuming at its first changed record, and everything else
        — including scopes owning post-``d`` records — is spliced.
        That is sound only if every re-run replays its predicted stream
        shape, so the restricted run carries a per-miss replay schedule
        (scope and pipeline ordinal of every predicted reissue); the
        first divergent miss raises :class:`ReplayDivergence`, the
        attempt is abandoned mid-run, the flipped indices are marked
        volatile (future compiles go straight to the conservative set),
        and the retry is charged the aborted run's pass executions.
        """
        self.incremental_attempts += 1
        base_oraql = baseline.oraql
        if (base_oraql is None or baseline.config is not config
                or not baseline.fn_hashes):
            return None
        if not (config.lto or len(config.sources) == 1):
            # per-TU pipelines interleave one shared sequence across
            # modules; splicing there needs per-TU provenance we do not
            # keep — take the audited full path
            return None
        pipeline = build_pipeline(config.opt_level)
        if any(isinstance(p, ModulePass) for p in pipeline):
            return None
        can_inline = any(isinstance(p, Inliner) for p in pipeline)

        records = base_oraql.records
        delta = decision_delta(records, sequence.bits)

        narrow = None
        if delta is not None and not can_inline:
            # inlining dissolves the per-scope stream argument narrow
            # mode rests on; the conservative path widens instead
            narrow = self._narrow_plan(config, records, sequence.bits,
                                       delta)
        wasted = 0
        if narrow is not None:
            try:
                return self._splice_compile(
                    config, sequence, baseline, invalidation,
                    collect_resume, pipeline, can_inline, records, delta,
                    narrow=narrow)
            except ReplayDivergence as e:
                # one of the flipped answers is load-bearing for its
                # owner's query stream: remember the indices so future
                # compiles skip the attempt, and charge the aborted
                # run's pass executions to the conservative retry
                self._volatile.setdefault(
                    config_fingerprint(config), set()).update(narrow.changed)
                wasted = e.pass_executions
        prog = self._splice_compile(
            config, sequence, baseline, invalidation, collect_resume,
            pipeline, can_inline, records, delta, narrow=None)
        if prog is not None and wasted:
            prog.ctx.pass_executions += wasted
        return prog

    def _narrow_plan(self, config: BenchmarkConfig, records, bits,
                     delta: int) -> Optional[NarrowPlan]:
        """The optimistic narrow affected set for this delta, or None
        when it cannot beat the conservative set (every post-delta
        scope changed an answer) or a previous aborted attempt marked
        one of the flipped indices volatile."""
        changed = [rec for rec in records
                   if rec.optimistic != effective_bit(bits, rec.index)]
        scopes = {rec.scope for rec in changed}
        if "<module>" in scopes:
            return None
        if scopes >= affected_functions(records, delta):
            return None
        indices = {rec.index for rec in changed}
        if indices & self._volatile.get(config_fingerprint(config), set()):
            return None
        first_changed: Dict[str, int] = {}
        for rec in changed:
            if rec.scope not in first_changed:
                first_changed[rec.scope] = rec.ordinal
        return NarrowPlan(scopes, first_changed, indices)

    def _splice_compile(self, config: BenchmarkConfig,
                        sequence: DecisionSequence,
                        baseline: CompiledProgram,
                        invalidation: str,
                        collect_resume: bool,
                        pipeline,
                        can_inline: bool,
                        records,
                        delta: Optional[int],
                        narrow: Optional[NarrowPlan]
                        ) -> Optional[CompiledProgram]:
        """One splice/resume attempt against ``baseline`` — narrow when
        a :class:`NarrowPlan` is given, conservative otherwise.  None
        means "take the full path"; :class:`ReplayDivergence` (narrow
        only) means "retry me conservatively"."""
        base_oraql = baseline.oraql
        if delta is None:
            affected: set = set()
        elif narrow is not None:
            affected = set(narrow.scopes)
        else:
            affected = affected_functions(records, delta)
            if "<module>" in affected:
                return None

        # frontend + link, exactly as the full path
        modules: List[Module] = []
        for src in config.sources:
            modules.append(compile_source(src.text, src.name,
                                          options=self.frontend_options))
        main = modules[0]
        for other in modules[1:]:
            main.link(other)
        verify_module(main)

        widened = False
        if can_inline and affected:
            # inlining dissolves function boundaries: widen through the
            # call graph (both directions, union of the fresh and the
            # baseline edges) so every body an affected function could
            # exchange code with is re-derived too — and re-derived from
            # the top (a snapshot of one function says nothing about the
            # callee bodies inlining would splice into it)
            affected = call_graph_closure([main, baseline.module], affected)
            widened = True

        base_fns = baseline.module.functions
        if list(main.functions) != list(base_fns):
            if narrow is None:
                self.incremental_fallbacks += 1
            return None

        delta_eff = delta if delta is not None else (
            records[-1].index + 1 if records else 0)

        # mid-pipeline resume points: an affected function's stream can
        # first change at the ordinal of its first record at index ≥ d
        # (per-function record order is execution order, so all earlier
        # ordinals are sub-d and replay exactly).  The latest baseline
        # snapshot at or below that ordinal is a valid restart body;
        # no snapshot means ordinal 0 — re-run from the frontend body.
        base_resume = baseline.resume
        resume_at: Dict[str, int] = {}
        if affected and not widened:
            if narrow is not None:
                # resume at the first *changed* record: the unchanged
                # post-delta prefix replays under the schedule guard
                first_ord = dict(narrow.first_changed)
            else:
                first_ord = {}
                for rec in records:
                    if rec.scope in affected and rec.index >= delta_eff \
                            and rec.scope not in first_ord:
                        first_ord[rec.scope] = rec.ordinal
            for name, desired in first_ord.items():
                st = base_resume.get(name)
                if st is not None:
                    j = st.best_ordinal(desired)
                    if j > 0:
                        resume_at[name] = j

        # splice every unaffected defined function (a clone of its
        # baseline-optimized body; dict assignment at the existing key
        # preserves module order, hence print order) and restore each
        # resuming function's snapshot body
        spliced: List[str] = []
        restore_maps: Dict[str, tuple] = {}
        for name in list(main.functions):
            fn = main.functions[name]
            bfn = base_fns[name]
            if fn.is_declaration != bfn.is_declaration:
                if narrow is None:
                    self.incremental_fallbacks += 1
                return None
            if fn.is_declaration:
                continue
            if name in affected:
                j = resume_at.get(name, 0)
                if j > 0:
                    st = base_resume[name]
                    rv: Dict[int, object] = {}
                    main.functions[name] = clone_function_into(
                        st.snapshots[j], main, value_map=rv)
                    # replay the captured use-list order: passes past
                    # the resume point iterate ``users`` and must see
                    # exactly what the full compile would have
                    mirror_use_order(st.snapshots[j], rv)
                    restore_maps[name] = (st.capture_maps[j], rv)
                continue
            main.functions[name] = clone_function_into(bfn, main)
            spliced.append(name)
        repoint_functions(main)
        verify_module(main)

        def reissued(rec) -> bool:
            """Will the restricted run replay this baseline record?"""
            return rec.scope in affected and \
                rec.ordinal >= resume_at.get(rec.scope, 0)

        # restricted pipeline run over the affected set, with the index
        # space remapped onto the baseline's: the run's n-th miss takes
        # the n-th sub-d index it actually re-issues, then continues at d
        if narrow is not None:
            # narrow mode reissues a non-contiguous index set, so every
            # reissue is scheduled: the n-th miss must come from the
            # predicted (scope, ordinal) and lands on that record's
            # baseline index; the first mismatch aborts the attempt
            reissue = sorted((rec for rec in records if reissued(rec)),
                             key=lambda r: r.index)
            sub = [rec.index for rec in reissue]
            remapped = RemappedDecisionSequence(
                sequence.bits, sub, records[-1].index + 1,
                schedule=[(rec.scope, rec.ordinal) for rec in reissue])
        else:
            sub = sorted(rec.index for rec in records
                         if rec.index < delta_eff and reissued(rec))
            remapped = RemappedDecisionSequence(sequence.bits, sub,
                                                delta_eff)
        oraql = OraqlAAPass(
            sequence=remapped,
            target_filter=config.target_filter,
            probe_functions=config.probe_function_set(),
            probe_files=config.probe_file_set(),
        )
        # seed the never-replayed work's bookkeeping from the baseline —
        # spliced functions entirely, resumed functions' pre-resume
        # prefix — so unique_queries (the driver's index-space size) and
        # the record list match a full compile
        for rec in records:
            if reissued(rec):
                continue
            if rec.optimistic:
                oraql.opt_unique += 1
            else:
                oraql.pess_unique += 1
            oraql.unique_by_pass[rec.issuing_pass] = \
                oraql.unique_by_pass.get(rec.issuing_pass, 0) + 1
            oraql.records.append(rec)
        seeded = len(oraql.records)
        # ...and the cached-query tallies that work would have produced
        for key, t in base_oraql.cached_by.items():
            scope, ordinal = key
            if scope in affected and ordinal >= resume_at.get(scope, 0):
                continue
            mine = oraql.cached_by.get(key)
            if mine is None:
                mine = [0, 0]
                oraql.cached_by[key] = mine
            mine[0] += t[0]
            mine[1] += t[1]
            oraql.opt_cached += t[0]
            oraql.pess_cached += t[1]

        # warm the pointer-pair cache with each resumed function's
        # pre-resume answers: a post-divergence re-query of such a pair
        # must hit the cache exactly as it would in a full compile (a
        # miss would consume a sequence slot the full compile never
        # consumed).  Keys translate capture ∘ restore into the restored
        # body's value space; untranslatable keys reference values dead
        # at the snapshot point, which the full compile — whose body
        # evolves identically up to there — can never re-query either.
        for name, j in resume_at.items():
            st = base_resume[name]
            cap, rv = restore_maps[name]
            for rec in records:
                if rec.scope != name or rec.ordinal >= j:
                    continue
                key_sym = st.seed_keys.get(rec.index)
                if key_sym is None:
                    continue
                ta = translate_entry(key_sym[0], main, cap, rv)
                tb = translate_entry(key_sym[1], main, cap, rv)
                if ta is None or tb is None:
                    continue
                ids = resolve_key((ta, tb), main)
                if ids is not None:
                    oraql.cache[ids] = (rec.optimistic, rec.index)

        chain = tuple(config.aa_chain) if config.aa_chain \
            else DEFAULT_AA_CHAIN
        ctx = CompilationContext(main, aa_chain=chain, oraql=oraql,
                                 invalidation=invalidation)
        # phantom-cache the analyses the full compile would be holding
        # at each resume point (this run's manager starts cold): their
        # rebuilds run counter-suppressed, keeping the aggregates exact
        for name, j in resume_at.items():
            valid = base_resume[name].valid_at.get(j)
            fn = main.functions.get(name)
            if valid and fn is not None:
                ctx.am.mark_phantom(fn, valid)
        if collect_resume:
            ctx.resume_collector = SnapshotCollector(oraql, main, ctx)
        try:
            PassManager(ctx).run(
                pipeline, only={name: resume_at.get(name, 0)
                                for name in affected})
        except ReplayDivergence as e:
            # abort mid-run: carry the wasted work so the retry can
            # charge it
            e.pass_executions = ctx.pass_executions
            raise
        verify_module(main)

        # seed the chain-query tallies of the never-replayed work (the
        # run above added its own): no-alias / total counters and their
        # per-pass attribution now equal a full compile's
        for key, t in baseline.ctx.aa.scope_counts.items():
            scope, ordinal = key
            if scope in affected and ordinal >= resume_at.get(scope, 0):
                continue
            ctx.aa.seed_tally(key, t)

        if narrow is not None:
            # the schedule validated each miss in flight; completeness:
            # a predicted reissue that never happened (a scope issuing
            # *fewer* queries than the baseline) invalidates the splice
            if remapped.misses != len(sub):
                raise ReplayDivergence(
                    f"replayed {remapped.misses} of {len(sub)} "
                    f"predicted misses", ctx.pass_executions)
        else:
            # replay guard: every re-run function must have re-issued
            # exactly the predicted sub-delta index multiset
            got: Dict[str, List[int]] = {}
            for rec in oraql.records[seeded:]:
                if rec.scope not in affected:
                    self.incremental_fallbacks += 1
                    return None
                if rec.index < delta_eff:
                    got.setdefault(rec.scope, []).append(rec.index)
            want: Dict[str, List[int]] = {}
            for rec in records:
                if rec.index < delta_eff and reissued(rec):
                    want.setdefault(rec.scope, []).append(rec.index)
            if {k: sorted(v) for k, v in got.items()} != want:
                self.incremental_fallbacks += 1
                return None
        inherited = oraql.records[:seeded]
        inherited_ids = set(map(id, inherited))
        # index-sorted records make this program chainable as the next
        # baseline (and match a full compile's emission order)
        oraql.records.sort(key=lambda r: r.index)

        # codegen: spliced bodies reuse the baseline's hashes — they are
        # print-identical by construction — so neither the text nor the
        # artifacts are re-derived for them
        spliced_set = set(spliced)
        fn_hashes: Dict[str, str] = {}
        for name, fn in main.functions.items():
            if name in spliced_set and name in baseline.fn_hashes:
                fn_hashes[name] = baseline.fn_hashes[name]
            else:
                fn_hashes[name] = function_hash(fn)
        hits0, misses0 = self.codegen_hits, self.codegen_misses
        codegen = self._codegen_cached(main, ctx.stats, fn_hashes)
        kernels = self._kernels_cached(main, fn_hashes)
        for name, ki in kernels.items():
            ctx.stats.add("asm printer", "# machine instructions generated",
                          ki.machine_insts)
        exe_hash = self._hash(main, kernels, fn_hashes)

        # assemble this program's own resume material so it can serve as
        # the next baseline.  The invariant: per function, records,
        # snapshots and seed keys all live in ONE value space.
        resume: Dict[str, ResumeState] = {}
        if ctx.resume_collector is not None:
            resume = ctx.resume_collector.states
            # re-issued records: keys in this program's own value space,
            # matching the fresh snapshots' capture maps
            for rec in oraql.records:
                if id(rec) in inherited_ids:
                    continue
                st = resume.setdefault(rec.scope, ResumeState())
                st.seed_keys[rec.index] = seed_key_for(rec)
            # a resumed function's inherited pre-resume records:
            # translate the baseline's keys into this program's space
            # (an untranslatable key is dropped — the dead-value
            # argument above says no future compile can re-query it)
            for name, j in resume_at.items():
                bst = base_resume[name]
                cap, rv = restore_maps[name]
                st = resume.setdefault(name, ResumeState())
                for rec in inherited:
                    if rec.scope != name:
                        continue
                    key_sym = bst.seed_keys.get(rec.index)
                    if key_sym is None:
                        continue
                    ta = translate_entry(key_sym[0], main, cap, rv)
                    tb = translate_entry(key_sym[1], main, cap, rv)
                    if ta is not None and tb is not None:
                        st.seed_keys[rec.index] = (ta, tb)
            # spliced functions share the baseline's state wholesale:
            # their inherited records, snapshots and keys already live
            # consistently in the baseline's value space
            for name in spliced:
                bst = base_resume.get(name)
                if bst is not None and name not in resume:
                    resume[name] = bst

        defined = {fn.name for fn in main.defined_functions()}
        outcome = IncrementalOutcome(
            delta=delta,
            reoptimized=len(affected & defined),
            spliced=len(spliced),
            total_functions=len(defined),
            codegen_hits=self.codegen_hits - hits0,
            codegen_misses=self.codegen_misses - misses0,
            widened=widened,
            resumed=len(resume_at),
            passes_resumed_past=sum(resume_at.values()),
            narrowed=narrow is not None,
        )
        return CompiledProgram(config, main, ctx, oraql, kernels, codegen,
                               exe_hash, fn_hashes=fn_hashes,
                               incremental=outcome, resume=resume)
