"""Feature extraction for the provenance-prior model.

A query's danger (will it end up pinned pessimistic?) correlates with
*where it came from*: the issuing pass, the shape of the pointer pair
(two GEPs off the same base behave very differently from an alloca vs.
a global), and the content fingerprint of the pair.  All three are
available in the :class:`~repro.oraql.pass_.QueryRecord` provenance the
trace layer already captures, so the same featurizer runs offline on
fuzz-campaign traces (fitting) and online on a live session's
all-optimistic compile (scoring).
"""

from __future__ import annotations

from typing import List, Sequence

from ...trace.events import pointer_fingerprint

#: issuing passes seen across the pipeline (QueryRecord.issuing_pass
#: carries display names); unseen passes land in the out-of-vocabulary
#: slot
PASS_VOCAB: List[str] = [
    "Global Value Numbering", "Loop Invariant Code Motion",
    "Dead Store Elimination", "Loop Vectorizer", "SLP Vectorizer",
    "MemCpy Optimization", "Combine redundant instructions",
    "Early CSE", "Loop Load Elimination", "Delete dead loops",
    "Machine code sinking", "Dead Code Elimination",
    "Simplify the CFG", "Promote Memory to Register",
    "Function Integration/Inlining", "Memory SSA",
]

#: unordered pointer-kind pair categories (the "hazard shape")
SHAPE_VOCAB: List[str] = [
    "gep-gep-samebase", "gep-gep", "gep-argument", "gep-global",
    "gep-alloca", "gep-load", "gep-phi", "gep-other",
    "argument-argument", "argument-global", "argument-alloca",
    "argument-other", "global-global", "alloca-alloca", "load-load",
    "phi-phi", "other-other",
]

#: content-fingerprint hash buckets (a weak per-pair identity feature)
FP_BUCKETS = 16


def _ptr_kind(ptr) -> str:
    opcode = getattr(ptr, "opcode", None)
    if opcode is not None:
        if opcode == "getelementptr":
            return "gep"
        if opcode in ("load", "phi", "alloca", "cast", "call", "select"):
            return opcode
        return "inst"
    return type(ptr).__name__.lower()


def _base_of(ptr):
    """The base pointer a GEP indexes off, else the value itself."""
    while getattr(ptr, "opcode", None) in ("getelementptr", "cast") \
            and getattr(ptr, "operands", None):
        ptr = ptr.operands[0]
    return ptr


_KNOWN_KINDS = {"gep", "argument", "globalvariable", "alloca", "load",
                "phi"}
_KIND_ALIAS = {"globalvariable": "global"}


def hazard_shape(rec) -> str:
    """The unordered pointer-kind pair of a record, e.g. ``gep-gep`` or
    ``gep-argument``; same-base GEP pairs get their own category."""
    ka, kb = _ptr_kind(rec.a.ptr), _ptr_kind(rec.b.ptr)
    if ka == kb == "gep" and _base_of(rec.a.ptr) is _base_of(rec.b.ptr):
        return "gep-gep-samebase"
    names = []
    for k in (ka, kb):
        if k not in _KNOWN_KINDS:
            k = "other"
        names.append(_KIND_ALIAS.get(k, k))
    a, b = sorted(names)
    shape = f"{a}-{b}"
    if shape in SHAPE_VOCAB:
        return shape
    # collapse unseen mixed pairs onto the dominant side
    for k in (a, b):
        if f"{k}-other" in SHAPE_VOCAB:
            return f"{k}-other"
    return "other-other"


def fingerprint_bucket(rec, buckets: int = FP_BUCKETS) -> int:
    """A stable hash bucket of the pair's content fingerprint.  Bucket
    0 doubles as the unknown slot: records are featurized after the
    full pipeline ran, and a later pass may have erased the recorded
    instruction (dropping its operands), making it unprintable."""
    try:
        return int(pointer_fingerprint(rec.a, rec.b), 16) % buckets
    except (AttributeError, IndexError, TypeError):
        return 0


#: total feature-vector width: bias + pass one-hot (+oov) + shape
#: one-hot + fingerprint buckets
def vector_width(buckets: int = FP_BUCKETS) -> int:
    return 1 + len(PASS_VOCAB) + 1 + len(SHAPE_VOCAB) + buckets


def feature_indices(rec, buckets: int = FP_BUCKETS) -> List[int]:
    """The active (one-hot) indices of a record's feature vector."""
    active = [0]  # bias
    base = 1
    pass_name = rec.issuing_pass
    if pass_name in PASS_VOCAB:
        active.append(base + PASS_VOCAB.index(pass_name))
    else:
        active.append(base + len(PASS_VOCAB))  # oov slot
    base += len(PASS_VOCAB) + 1
    active.append(base + SHAPE_VOCAB.index(hazard_shape(rec)))
    base += len(SHAPE_VOCAB)
    active.append(base + fingerprint_bucket(rec, buckets))
    return active


def featurize(records: Sequence[object],
              buckets: int = FP_BUCKETS) -> List[List[int]]:
    return [feature_indices(r, buckets) for r in records]
