"""Strategy registry: every probing strategy, addressable by name.

Adding a strategy is three steps (DESIGN.md §5h): subclass
:class:`~repro.oraql.strategies.base.Strategy` (usually
:class:`~repro.oraql.strategies.base.GeneratorStrategy`), give it a
``name``, and :func:`register` it here.  The CLI ``--strategy``
choices, the service's submit validation, the fuzz oracle's
``--strategies all`` cross-check, and the benchmark matrix all derive
from this registry, so a new strategy shows up everywhere at once.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import (GeneratorStrategy, Probe, SearchState, Strategy,
                   StrategyContext)
from .chunked import ChunkedStrategy
from .frequency import FrequencyStrategy
from .mcts import MCTSStrategy
from .prior import PriorModel, PriorStrategy

_REGISTRY: Dict[str, Type[Strategy]] = {}


def register(cls: Type[Strategy]) -> Type[Strategy]:
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate strategy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> List[str]:
    """Registered strategy names, stable order (paper's two first)."""
    first = [n for n in ("chunked", "frequency") if n in _REGISTRY]
    rest = sorted(n for n in _REGISTRY if n not in first)
    return first + rest


def create_strategy(name: str, seed: int = 0) -> Strategy:
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown strategy {name!r} (known: "
            f"{', '.join(strategy_names())})")
    return cls(seed=seed)


def strategy_supports_speculation(name: str) -> bool:
    cls = _REGISTRY.get(name)
    return bool(cls is not None and cls.supports_speculation)


for _cls in (ChunkedStrategy, FrequencyStrategy, PriorStrategy,
             MCTSStrategy):
    register(_cls)

__all__ = [
    "GeneratorStrategy", "Probe", "PriorModel", "SearchState", "Strategy",
    "StrategyContext", "create_strategy", "register", "strategy_names",
    "strategy_supports_speculation",
]
