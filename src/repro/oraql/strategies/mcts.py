"""Monte-Carlo tree search over decision subsets.

Each chunked-skeleton round must isolate the smallest failing ``k`` in
an interval — a sequential decision problem: which split point to probe
next, given that every probe costs a compile and the payoff is pinning
the dangerous query.  This strategy runs a seeded MCTS over that
problem: actions are split-point selectors from :data:`ACTION_LIBRARY`,
simulations sample a hypothetical boundary position, rollouts play
random actions to termination, and :func:`compute_reward` scores each
playout as pinned-query isolation minus compile cost.  The chosen
action is then executed as the real probe and the tree re-rooted on the
observed outcome.

Determinism: all randomness flows from one ``random.Random(seed)``
consumed in a fixed order, so two runs with the same seed propose
identical probe sequences (the CI determinism check).  Convergence:
every action probes strictly inside the open interval, so the interval
shrinks each step and the same boundary is found as chunked's binary
search — the final pessimistic set is bit-identical by construction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ProbingError
from ..sequence import DecisionSequence
from .base import GeneratorStrategy, Probe, SearchGen, StrategyContext

#: split-point selectors over an open interval (lo, hi); the searchable
#: action space (querytorque's TRANSFORMATION_LIBRARY idiom)
ACTION_LIBRARY: Tuple[str, ...] = (
    "midpoint", "quarter", "three-quarter", "low-edge", "high-edge")


def split_point(action: str, lo: int, hi: int) -> int:
    """The probe point an action denotes, clamped to ``lo < k < hi``."""
    k = {
        "midpoint": (lo + hi) // 2,
        "quarter": lo + (hi - lo) // 4,
        "three-quarter": lo + (3 * (hi - lo)) // 4,
        "low-edge": lo + 1,
        "high-edge": hi - 1,
    }[action]
    return max(lo + 1, min(hi - 1, k))


@dataclass
class RewardConfig:
    """Scoring knobs: isolating the pinned query is the prize, every
    compile the search spends comes off it."""

    isolation_reward: float = 10.0
    compile_cost: float = 1.0


def compute_reward(isolated: bool, compiles: int,
                   config: RewardConfig) -> float:
    return (config.isolation_reward if isolated else 0.0) \
        - config.compile_cost * compiles


class MCTSNode:
    """One search node: an interval state plus visit statistics."""

    __slots__ = ("lo", "hi", "visits", "value", "children")

    def __init__(self, lo: int, hi: int):
        self.lo = lo
        self.hi = hi
        self.visits = 0
        self.value = 0.0
        #: action -> (probe point, {outcome-ok: child})
        self.children: Dict[str, Tuple[int, Dict[bool, "MCTSNode"]]] = {}

    def terminal(self) -> bool:
        return self.hi - self.lo <= 1

    def ucb_action(self, c: float, rng: random.Random) -> str:
        """UCB1 over the distinct probe points this interval offers."""
        untried = [a for a in ACTION_LIBRARY if a not in self.children]
        if untried:
            return untried[0]
        best, best_score = None, -math.inf
        log_n = math.log(max(1, self.visits))
        for action in ACTION_LIBRARY:
            _, branches = self.children[action]
            n = sum(ch.visits for ch in branches.values())
            if n == 0:
                return action
            q = sum(ch.value for ch in branches.values()) / n
            score = q + c * math.sqrt(log_n / n)
            if score > best_score:
                best, best_score = action, score
        return best


class MCTSTree:
    """Seeded MCTS over interval-narrowing (querytorque's idiom: a
    tree of states, UCB selection, random rollouts, mean backup)."""

    def __init__(self, lo: int, hi: int, rng: random.Random,
                 reward: Optional[RewardConfig] = None,
                 exploration: float = 1.4):
        self.root = MCTSNode(lo, hi)
        self.rng = rng
        self.reward = reward or RewardConfig()
        self.exploration = exploration

    # -- simulation -------------------------------------------------------
    def _sample_boundary(self, lo: int, hi: int) -> int:
        """A hypothetical smallest failing k, uniform over (lo, hi]."""
        return self.rng.randint(lo + 1, hi)

    def _rollout(self, lo: int, hi: int, boundary: int,
                 compiles: int) -> float:
        while hi - lo > 1:
            action = self.rng.choice(ACTION_LIBRARY)
            k = split_point(action, lo, hi)
            compiles += 1
            if k < boundary:   # g(k) ok
                lo = k
            else:
                hi = k
        return compute_reward(True, compiles, self.reward)

    def simulate(self) -> None:
        """One playout: select down the tree against a sampled
        boundary, expand, rollout, back up the reward."""
        node = self.root
        boundary = self._sample_boundary(node.lo, node.hi)
        path: List[MCTSNode] = [node]
        compiles = 0
        while not node.terminal():
            action = node.ucb_action(self.exploration, self.rng)
            if action not in node.children:
                node.children[action] = (split_point(action, node.lo,
                                                     node.hi), {})
            k, branches = node.children[action]
            ok = k < boundary
            compiles += 1
            child = branches.get(ok)
            if child is None:
                child = MCTSNode(k, node.hi) if ok \
                    else MCTSNode(node.lo, k)
                branches[ok] = child
                path.append(child)
                reward = self._rollout(child.lo, child.hi, boundary,
                                       compiles)
                break
            node = child
            path.append(node)
        else:
            reward = compute_reward(True, compiles, self.reward)
        for visited in path:
            visited.visits += 1
            visited.value += reward

    def search(self, simulations: int) -> str:
        for _ in range(simulations):
            self.simulate()
        # the robust child: most-visited action
        def visits(action: str) -> int:
            if action not in self.root.children:
                return -1
            _, branches = self.root.children[action]
            return sum(ch.visits for ch in branches.values())
        return max(ACTION_LIBRARY, key=visits)

    def advance(self, action: str, ok: bool) -> None:
        """Re-root on the observed outcome of the executed action."""
        k, branches = self.root.children[action]
        child = branches.get(ok)
        if child is None:
            child = MCTSNode(k, self.root.hi) if ok \
                else MCTSNode(self.root.lo, k)
        self.root = child


class MCTSStrategy(GeneratorStrategy):
    """Chunked skeleton with MCTS-chosen narrowing probes."""

    name = "mcts"
    supports_speculation = False

    #: playouts per real probe (simulations are in-memory and free;
    #: only the chosen action costs a compile)
    SIMULATIONS = 64

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.rng = random.Random(seed)

    def _search(self, ctx: StrategyContext) -> SearchGen:
        state = self.state
        tail_pad = ctx.tail_pad
        decided: List[int] = []
        while True:
            state.best = {i for i, b in enumerate(decided) if b == 0}
            state.pinned = set(state.best)
            t = yield Probe(DecisionSequence(decided))
            if t.ok:
                state.candidates = set()
                return {i for i, b in enumerate(decided) if b == 0}
            n = t.unique_queries
            state.candidates = set(range(len(decided), n))
            span = n - len(decided)
            if span <= 0:
                for i in range(len(decided) - 1, -1, -1):
                    if decided[i] == 1:
                        decided[i] = 0
                        break
                else:
                    raise ProbingError(
                        "all-pessimistic sequence fails tests — the "
                        "benchmark does not verify even with every query "
                        "answered may-alias",
                        outcome=t,
                        explain=ctx.explain(t) if ctx.explain else None)
                continue

            def g_bits(k: int) -> List[int]:
                return decided + [1] * k + [0] * (span - k + tail_pad)

            t = yield Probe(DecisionSequence(g_bits(span)))
            if t.ok:
                decided.extend([1] * span)
                continue
            # MCTS-narrow the smallest k with g(k)=False
            lo, hi = 0, span  # g(lo)=True, g(hi)=False
            tree = MCTSTree(lo, hi, self.rng)
            while hi - lo > 1:
                action = tree.search(self.SIMULATIONS)
                mid = split_point(action, lo, hi)
                t = yield Probe(DecisionSequence(g_bits(mid)))
                if t.ok:
                    lo = mid
                else:
                    hi = mid
                    state.deduced += 1
                tree.advance(action, t.ok)
            decided.extend([1] * lo)
            decided.append(0)
