"""The pluggable probing-strategy interface.

A :class:`Strategy` is the search policy of a probing session: given the
failed all-optimistic attempt it repeatedly *proposes* a
:class:`~repro.oraql.sequence.DecisionSequence` to test, *observes* the
verdict, and is *done* when it has isolated a locally-maximal safe
optimistic set.  The driver owns everything else — compilation, verdict
caching, journaling, budgets — so a strategy is a pure search policy
over decision subsets:

    strategy.start(ctx)            # ctx carries the first failing probe
    while not strategy.done():
        probe = strategy.propose()
        outcome = <compile + test probe.sequence>
        strategy.observe(probe, outcome)
    pessimistic = strategy.result()

Contract highlights (tests/test_strategy_properties.py holds every
registered strategy to these):

* **determinism** — a strategy is a pure function of (seed, observed
  outcomes); replaying the same verdicts reproduces the same probes
  bit for bit (what makes journal ``--resume`` work unchanged);
* **progress** — :meth:`pinned` grows monotonically and
  :meth:`candidates` shrinks within an :attr:`epoch` (a fallback or
  restart starts a new epoch);
* **no repeats** — no two probes of a session carry the same bits;
* **budget grace** — :meth:`best_known` is always the best partial
  answer, so the driver can report progress when the test budget dies
  mid-search.

The imperative strategies are written as generator coroutines
(``outcome = yield Probe(sequence)``) driven by
:class:`GeneratorStrategy` — a 1:1 transcription of the pre-refactor
in-driver search loops, which is what keeps the ported chunked and
frequency strategies probe-for-probe identical to the originals
(``tests/goldens/strategy_probes_*.txt``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (Callable, ClassVar, Generator, List, Optional, Sequence,
                    Set)

from ..sequence import DecisionSequence

#: sequence padding so "everything beyond the known range" stays
#: pessimistic while probing (mirrors ``ProbingDriver.TAIL_PAD``)
TAIL_PAD = 4


@dataclass
class Probe:
    """One proposed test: the sequence to try, plus optional speculation
    hints (sequences likely to be tested next, for the parallel
    engine's look-ahead workers)."""

    sequence: DecisionSequence
    speculations: List[DecisionSequence] = field(default_factory=list)


@dataclass
class StrategyContext:
    """What the driver hands a strategy at :meth:`Strategy.start`."""

    #: the failed all-optimistic attempt (``.ok``/``.unique_queries``)
    first: object
    #: per-query provenance from the all-optimistic compile — the
    #: feature source for learned strategies (may be empty when the
    #: compile happened in another process)
    records: Sequence[object] = ()
    tail_pad: int = TAIL_PAD
    #: driver callback rendering a human explanation of a failing
    #: outcome (used in raised ProbingErrors)
    explain: Optional[Callable[[object], Optional[str]]] = None


@dataclass
class SearchState:
    """Book-keeping a generator search shares with its wrapper."""

    #: best-known pessimistic set so far (budget-grace currency);
    #: updated at exactly the program points the pre-refactor driver
    #: updated ``_best_pessimistic``
    best: Set[int] = field(default_factory=set)
    #: indices unconditionally OR-ed into :meth:`Strategy.best_known`
    #: (the frequency fallback's "keep the dangerous set on exhaustion")
    extra: Set[int] = field(default_factory=set)
    #: binary-search outcomes implied by a sibling rather than tested
    deduced: int = 0
    #: indices proven pessimistic (grows monotonically per epoch)
    pinned: Set[int] = field(default_factory=set)
    #: indices still undecided (shrinks monotonically per epoch)
    candidates: Set[int] = field(default_factory=set)
    #: bumped when the search falls back / restarts (new epoch)
    epoch: int = 0


class Strategy(ABC):
    """Base class for probing strategies (see module docstring)."""

    #: registry name; subclasses set it and register themselves
    name: ClassVar[str] = "?"
    #: whether the strategy emits useful :attr:`Probe.speculations`
    #: (gates the parallel engine's speculative-bisection path)
    supports_speculation: ClassVar[bool] = False

    def __init__(self, seed: int = 0):
        self.seed = seed

    @abstractmethod
    def start(self, ctx: StrategyContext) -> None:
        """Begin the search from the failed all-optimistic attempt."""

    @abstractmethod
    def propose(self) -> Probe:
        """The next sequence to test.  Only valid while not :meth:`done`;
        must be followed by :meth:`observe` before the next propose."""

    @abstractmethod
    def observe(self, probe: Probe, outcome) -> None:
        """Feed back the verdict for the proposed probe."""

    @abstractmethod
    def done(self) -> bool:
        """True once the pessimistic set has been isolated."""

    @abstractmethod
    def result(self) -> Set[int]:
        """The final pessimistic set.  Only valid once :meth:`done`."""

    def best_known(self) -> Set[int]:
        """Best partial answer right now (budget-grace reporting)."""
        return set()

    def pinned(self) -> Set[int]:
        """Indices proven pessimistic so far."""
        return set()

    def candidates(self) -> Set[int]:
        """Indices still under consideration."""
        return set()

    @property
    def epoch(self) -> int:
        """Fallbacks/restarts bump this; progress invariants hold
        within one epoch."""
        return 0

    @property
    def deduced(self) -> int:
        """Verdicts implied (not tested) so far — report bookkeeping."""
        return 0


#: a generator search: yields Probes, receives outcomes, returns the set
SearchGen = Generator[Probe, object, Set[int]]


class GeneratorStrategy(Strategy):
    """Drives a generator-coroutine search through the lifecycle.

    Subclasses implement :meth:`_search` as a generator that yields
    :class:`Probe` objects and receives each probe's outcome from the
    matching ``yield``; its ``return`` value is the pessimistic set.
    """

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.state = SearchState()
        self._gen: Optional[SearchGen] = None
        self._pending: Optional[Probe] = None
        self._result: Optional[Set[int]] = None

    @abstractmethod
    def _search(self, ctx: StrategyContext) -> SearchGen:
        """The search coroutine (see class docstring)."""

    def _advance(self, send_value) -> None:
        try:
            if send_value is None:
                self._pending = next(self._gen)
            else:
                self._pending = self._gen.send(send_value)
        except StopIteration as stop:
            self._pending = None
            self._result = set(stop.value if stop.value is not None
                               else self.state.best)

    def start(self, ctx: StrategyContext) -> None:
        self._gen = self._search(ctx)
        self._advance(None)

    def propose(self) -> Probe:
        if self._pending is None:
            raise RuntimeError(f"strategy {self.name!r}: propose() after "
                               f"done()")
        return self._pending

    def observe(self, probe: Probe, outcome) -> None:
        if probe is not self._pending:
            raise RuntimeError(f"strategy {self.name!r}: observe() for a "
                               f"probe it did not propose")
        self._advance(outcome)

    def done(self) -> bool:
        return self._pending is None

    def result(self) -> Set[int]:
        if self._result is None:
            raise RuntimeError(f"strategy {self.name!r}: result() before "
                               f"done()")
        return set(self._result)

    def best_known(self) -> Set[int]:
        return set(self.state.best) | set(self.state.extra)

    def pinned(self) -> Set[int]:
        return set(self.state.pinned)

    def candidates(self) -> Set[int]:
        return set(self.state.candidates)

    @property
    def epoch(self) -> int:
        return self.state.epoch

    @property
    def deduced(self) -> int:
        return self.state.deduced
