"""Chunked prefix bisection (paper §IV-B, the winning strategy).

A 1:1 generator transcription of the pre-refactor
``ProbingDriver._probe_chunked`` — every ``self._test(X)`` became
``yield Probe(X)`` and nothing else moved, which is what the parity
goldens (``tests/goldens/strategy_probes_chunked.txt``) prove.
"""

from __future__ import annotations

from typing import List

from ..errors import ProbingError
from ..sequence import DecisionSequence
from .base import (GeneratorStrategy, Probe, SearchGen, SearchState,
                   StrategyContext)


def chunked_search(state: SearchState, ctx: StrategyContext) -> SearchGen:
    """Left-to-right prefix fixing with binary search per dangerous
    query.  Exploits prefix stability: the k-th unique query depends
    only on the answers to queries 0..k-1.

    Shared with the frequency strategy, whose closing-sweep fallback
    delegates here via ``yield from``."""
    tail_pad = ctx.tail_pad
    decided: List[int] = []  # final bits for the prefix
    while True:
        state.best = {i for i, b in enumerate(decided) if b == 0}
        state.pinned = set(state.best)
        # everything after the prefix optimistic
        t = yield Probe(DecisionSequence(decided))
        if t.ok:
            state.candidates = set()
            return {i for i, b in enumerate(decided) if b == 0}
        n = t.unique_queries
        state.candidates = set(range(len(decided), n))
        span = n - len(decided)
        if span <= 0:
            # the prefix itself fails: the most recent optimistic
            # decision is the culprit of an interaction — flip the
            # last optimistic bit (rare; keeps termination)
            for i in range(len(decided) - 1, -1, -1):
                if decided[i] == 1:
                    decided[i] = 0
                    break
            else:
                raise ProbingError(
                    "all-pessimistic sequence fails tests — the "
                    "benchmark does not verify even with every query "
                    "answered may-alias",
                    outcome=t,
                    explain=ctx.explain(t) if ctx.explain else None)
            continue

        # g(k): prefix + k optimistic + pessimistic tail
        def g_bits(k: int) -> List[int]:
            return decided + [1] * k + [0] * (span - k + tail_pad)

        t = yield Probe(DecisionSequence(g_bits(span)))
        if t.ok:
            # the failure needed the optimistic tail beyond n; fix
            # this whole span optimistic and continue outward
            decided.extend([1] * span)
            continue
        # binary search the smallest k with g(k) == False;
        # g(0) == True because the all-pessimistic tail is the baseline
        lo, hi = 0, span  # g(lo)=True (invariant), g(hi)=False
        while hi - lo > 1:
            mid = (lo + hi) // 2
            # both continuations of g(mid) are known in advance:
            # ok ⇒ next probe is the midpoint of [mid, hi), not ok ⇒
            # the midpoint of [lo, mid) — offer them for speculation
            spec = [DecisionSequence(g_bits((nlo + nhi) // 2))
                    for nlo, nhi in ((mid, hi), (lo, mid))
                    if nhi - nlo > 1]
            t = yield Probe(DecisionSequence(g_bits(mid)),
                            speculations=spec)
            if t.ok:
                lo = mid
            else:
                hi = mid
                # the sibling [mid, old hi) need not be tested: the
                # parent fails and the left part alone already fails
                state.deduced += 1
        # the query at index len(decided)+hi-1 is dangerous in this
        # context: fix prefix as lo optimistic + that one pessimistic
        decided.extend([1] * lo)
        decided.append(0)


class ChunkedStrategy(GeneratorStrategy):
    """The paper's chunked strategy behind the pluggable interface."""

    name = "chunked"
    supports_speculation = True

    def _search(self, ctx: StrategyContext) -> SearchGen:
        return (yield from chunked_search(self.state, ctx))
