"""Frequency-space residue-class bisection (paper §IV-B).

A 1:1 generator transcription of the pre-refactor
``ProbingDriver._probe_frequency`` (parity golden:
``tests/goldens/strategy_probes_frequency.txt``).  The closing-sweep
fallback delegates to the chunked search via ``yield from``, exactly as
the original called ``self._probe_chunked``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set, Tuple

from ..sequence import sequence_from_pessimistic_set
from ..sequence import DecisionSequence
from .base import GeneratorStrategy, Probe, SearchGen, StrategyContext
from .chunked import chunked_search


class FrequencyStrategy(GeneratorStrategy):
    """Residue-class bisection (paper's first strategy).

    A class is (modulus, residue).  Greedily grow the accepted
    optimistic set: test accepted ∪ candidate-class; on failure split
    the class by doubling the modulus; a failing singleton is a
    dangerous query, answered pessimistically."""

    name = "frequency"
    supports_speculation = False

    def _search(self, ctx: StrategyContext) -> SearchGen:
        state = self.state
        tail_pad = ctx.tail_pad
        # length estimate grows as pessimistic answers change the stream
        n_est = max(ctx.first.unique_queries, 1)

        def indices_of(mod: int, res: int, n: int) -> List[int]:
            return list(range(res, n, mod))

        accepted: Set[int] = set()      # optimistic indices
        dangerous: Set[int] = set()

        def bits_with(extra: Set[int]) -> List[int]:
            opt = accepted | extra
            length = max(n_est, max(opt) + 1 if opt else 0) + tail_pad
            return [1 if i in opt else 0 for i in range(length)]

        work: Deque[Tuple[int, int]] = deque([(1, 0)])
        while work:
            mod, res = work.popleft()
            state.best = set(dangerous)
            state.pinned = set(dangerous)
            state.candidates = {i for i in range(n_est)
                                if i not in accepted and i not in dangerous}
            idxs = [i for i in indices_of(mod, res, n_est)
                    if i not in accepted and i not in dangerous]
            if not idxs:
                continue
            t = yield Probe(DecisionSequence(bits_with(set(idxs))))
            n_est = max(n_est, t.unique_queries)
            if t.ok:
                accepted |= set(idxs)
                continue
            if len(idxs) == 1:
                dangerous.add(idxs[0])
                continue
            work.append((mod * 2, res))
            work.append((mod * 2, res + mod))

        # closing sweep: some indices past the original estimate may
        # remain; try them optimistically as one block
        state.best = set(dangerous)
        state.pinned = set(dangerous)
        state.candidates = set()
        t = yield Probe(sequence_from_pessimistic_set(
            dangerous, max(n_est, max(dangerous) + 1 if dangerous else 0)))
        if not t.ok:
            # fall back to chunked refinement from what we learned; on
            # budget exhaustion inside the fallback the dangerous set
            # must survive into best_known() (state.extra)
            state.epoch += 1
            state.extra = set(dangerous)
            rest = yield from chunked_search(state, ctx)
            return rest | dangerous
        return dangerous
