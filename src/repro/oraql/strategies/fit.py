"""Offline fitting of the provenance-prior model.

Mines fuzz-campaign programs for training data: every seeded program is
compiled all-optimistically to collect its query provenance; programs
whose optimistic run diverges from the O0 reference are probed with the
chunked driver to label exactly which queries had to be pinned
pessimistic (the positives).  The resulting (features, dangerous)
samples feed :meth:`~repro.oraql.strategies.prior.PriorModel.fit`.

Entry point: ``python -m repro.oraql fit-prior`` — regenerates the
checked-in ``prior_model.json`` artifact.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .features import feature_indices
from .prior import PriorModel

#: every other mined seed runs the generator's hazard mode — danger
#: labels need positives, and hazard programs supply nearly all of them
HAZARD_EVERY = 2


def _mine_seed(seed: int, opt_level: int,
               max_tests: int) -> Tuple[List[Tuple[List[int], bool]], bool]:
    """Samples for one fuzz seed: (features, dangerous) per unique
    query, plus whether the program diverged at all."""
    from ...fuzz.generator import GeneratorOptions, generate_program
    from ...fuzz.oracle import base_config
    from ..compiler import Compiler
    from ..driver import ProbingDriver
    from ..errors import ProbingError

    hazard = seed % HAZARD_EVERY == 0
    program = generate_program(seed, GeneratorOptions(hazard=hazard))
    cfg = base_config(seed, program.source, opt_level)
    compiler = Compiler()
    ref = compiler.compile(
        dataclasses.replace(cfg, opt_level=0)).run()
    if not ref.ok:
        return [], False
    cfg = dataclasses.replace(cfg, reference_outputs=[ref.stdout])

    # all-optimistic compile: the provenance the live strategy sees
    opt = compiler.compile(cfg, oraql_enabled=True)
    records = [r for r in opt.oraql.records
               if r.index >= 0 and not r.cached]
    if not records:
        return [], False
    run = opt.run()
    diverged = not (run.ok and run.stdout == ref.stdout)
    dangerous: set = set()
    if diverged:
        try:
            report = ProbingDriver(cfg, strategy="chunked",
                                   max_tests=max_tests).run()
            dangerous = set(report.pessimistic_indices)
        except ProbingError:
            return [], True
    samples = [(feature_indices(rec), rec.index in dangerous)
               for rec in records]
    return samples, diverged


def fit_prior(seeds: Iterable[int], opt_level: int = 3,
              epochs: int = 300, max_tests: int = 2000,
              log: Optional[Callable[[str], None]] = None
              ) -> Tuple[PriorModel, Dict[str, object]]:
    """Mine the seeds, fit the logistic model, and report stats."""
    samples: List[Tuple[List[int], bool]] = []
    programs = divergent = 0
    seeds = list(seeds)
    for i, seed in enumerate(seeds):
        mined, did_diverge = _mine_seed(seed, opt_level, max_tests)
        if mined:
            programs += 1
            samples.extend(mined)
        if did_diverge:
            divergent += 1
        if log is not None and (i + 1) % 25 == 0:
            print_args = (f"fit-prior: {i + 1}/{len(seeds)} seeds, "
                          f"{len(samples)} samples, "
                          f"{sum(1 for _, y in samples if y)} dangerous")
            log(print_args)
    model = PriorModel.fit(samples, epochs=epochs)
    positives = sum(1 for _, y in samples if y)
    model.meta.update({
        "seeds": [int(seeds[0]), int(seeds[-1])] if seeds else [],
        "opt_level": opt_level,
        "programs": programs,
        "divergent": divergent,
    })
    stats = {"samples": len(samples), "positives": positives,
             "programs": programs, "divergent": divergent,
             "auc": model.auc(samples)}
    return model, stats
