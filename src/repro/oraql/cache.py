"""Persistent verdict cache (paper §IV-B, "every candidate executable
is hashed ... reuses the recorded test verdict").

The in-driver executable-hash cache dies with the process, which makes
re-probing after a restart pay the full test bill again.  This module
stores verdicts durably on disk so they are shared across benchmark
configurations, probing strategies, driver restarts, and worker
processes of the parallel engine.

Key scheme
----------
A verdict is keyed by ``<config fingerprint>:<exe hash>``:

* the **config fingerprint** hashes the serialized
  :class:`~repro.oraql.config.BenchmarkConfig` together with a cache
  schema version, so verdicts can never leak between benchmarks whose
  sources, flags, or run setup differ, nor across incompatible cache
  layouts;
* the **exe hash** is the compiler's deterministic content hash of the
  produced executable (same config + same sequence ⇒ same hash, the
  invariant ``tests/test_oraql_parallel.py`` pins down).

Storage is append-only JSON-lines: one ``{"v": ..., "key": ...,
"ok": ...}`` record per line.  Appends of a single short line are
atomic enough for concurrent writers on POSIX (each worker of the
parallel engine opens the file in append mode and writes one line per
verdict); torn or foreign lines are skipped on load.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from .config import BenchmarkConfig

#: bump when the key scheme or record layout changes; old records are
#: ignored rather than misinterpreted
CACHE_SCHEMA_VERSION = 1

#: default file name inside ``--cache-dir``
CACHE_FILENAME = "verdicts.jsonl"


def config_fingerprint(config: BenchmarkConfig) -> str:
    """Stable digest identifying one benchmark configuration.

    Hashes the full JSON serialization (sources, flags, argv, probe
    scope, references, ...) plus the cache schema version: any change
    that could alter compilation or verification changes the key space.
    """
    h = hashlib.sha256()
    h.update(f"oraql-verdict-cache-v{CACHE_SCHEMA_VERSION}\n".encode())
    h.update(config.to_json().encode())
    return h.hexdigest()[:16]


class VerdictCache:
    """On-disk test-verdict store shared across configs and restarts."""

    def __init__(self, cache_dir: str, filename: str = CACHE_FILENAME):
        self.cache_dir = cache_dir
        self.path = os.path.join(cache_dir, filename)
        self._mem: Dict[str, bool] = {}
        self.hits = 0
        self.misses = 0
        os.makedirs(cache_dir, exist_ok=True)
        self._load()

    # -- persistence -----------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn concurrent write; skip
                if not isinstance(rec, dict) \
                        or rec.get("v") != CACHE_SCHEMA_VERSION:
                    continue
                key, ok = rec.get("key"), rec.get("ok")
                if isinstance(key, str) and isinstance(ok, bool):
                    self._mem[key] = ok

    def refresh(self) -> None:
        """Re-read records other processes appended since the load."""
        self._load()

    # -- the cache interface ---------------------------------------------
    @staticmethod
    def key(fingerprint: str, exe_hash: str) -> str:
        return f"{fingerprint}:{exe_hash}"

    def get(self, key: str) -> Optional[bool]:
        verdict = self._mem.get(key)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def put(self, key: str, ok: bool) -> None:
        if self._mem.get(key) == ok:
            return
        self._mem[key] = ok
        rec = json.dumps({"v": CACHE_SCHEMA_VERSION, "key": key, "ok": ok},
                         separators=(",", ":"))
        with open(self.path, "a") as f:
            f.write(rec + "\n")

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem
