"""Persistent verdict cache (paper §IV-B, "every candidate executable
is hashed ... reuses the recorded test verdict").

The in-driver executable-hash cache dies with the process, which makes
re-probing after a restart pay the full test bill again.  This module
stores verdicts durably on disk so they are shared across benchmark
configurations, probing strategies, driver restarts, and worker
processes of the parallel engine.

Key scheme
----------
A verdict is keyed by ``<config fingerprint>:<exe hash>``:

* the **config fingerprint** hashes the serialized
  :class:`~repro.oraql.config.BenchmarkConfig` together with a cache
  schema version, so verdicts can never leak between benchmarks whose
  sources, flags, or run setup differ, nor across incompatible cache
  layouts;
* the **exe hash** is the compiler's deterministic content hash of the
  produced executable (same config + same sequence ⇒ same hash, the
  invariant ``tests/test_oraql_parallel.py`` pins down).

Storage is append-only JSON-lines: one ``{"v": ..., "key": ...,
"ok": ...}`` record per line.  Appends of a single short line are
atomic enough for concurrent writers on POSIX (each worker of the
parallel engine opens the file in append mode and writes one line per
verdict).

Robustness: a shared mutable file on a fleet *will* get torn appends,
truncated tails, and bit rot.  New records therefore carry a CRC-32 of
their canonical serialization; on load, undecodable lines, CRC
mismatches, and malformed records are skipped and counted
(:attr:`VerdictCache.corrupt_records`) — never trusted, never fatal.
``OSError`` during load/refresh degrades to an empty view instead of
killing the probing session, and :meth:`VerdictCache.compact` rewrites
the append log to one valid record per key (atomic rename).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from typing import Dict, Optional, Tuple

from .config import BenchmarkConfig

#: bump when the key scheme or record layout changes; old records are
#: ignored rather than misinterpreted
CACHE_SCHEMA_VERSION = 1

#: default file name inside ``--cache-dir``
CACHE_FILENAME = "verdicts.jsonl"


def config_fingerprint(config: BenchmarkConfig) -> str:
    """Stable digest identifying one benchmark configuration.

    Hashes the full JSON serialization (sources, flags, argv, probe
    scope, references, ...) plus the cache schema version: any change
    that could alter compilation or verification changes the key space.
    """
    h = hashlib.sha256()
    h.update(f"oraql-verdict-cache-v{CACHE_SCHEMA_VERSION}\n".encode())
    h.update(config.to_json().encode())
    return h.hexdigest()[:16]


def _record_crc(rec: dict) -> int:
    canon = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode())


class VerdictCache:
    """On-disk test-verdict store shared across configs and restarts."""

    def __init__(self, cache_dir: str, filename: str = CACHE_FILENAME):
        self.cache_dir = cache_dir
        self.path = os.path.join(cache_dir, filename)
        #: key -> (ok, triage or None)
        self._mem: Dict[str, Tuple[bool, Optional[str]]] = {}
        self.hits = 0
        self.misses = 0
        #: undecodable / CRC-failed / malformed lines skipped on load
        self.corrupt_records = 0
        #: appends lost to OSError (the session keeps going)
        self.dropped_writes = 0
        #: load/refresh attempts that failed wholesale with OSError
        self.load_errors = 0
        os.makedirs(cache_dir, exist_ok=True)
        self._load()

    @classmethod
    def shard_for(cls, root_dir: str, fingerprint: str) -> "VerdictCache":
        """The per-config-fingerprint cache shard under ``root_dir``.

        The service keys its verdict store by fingerprint so concurrent
        sessions only contend on the shard of the configuration they are
        actually probing: shard files live at
        ``root_dir/<fp[:2]>/<fp>.jsonl`` (the two-character fan-out keeps
        any one directory small on wide fleets).  Every session of the
        same configuration — concurrent or not — opens the same shard,
        which is what makes N simultaneous sessions of one workload
        share verdicts instead of re-paying the test bill N times."""
        return cls(os.path.join(root_dir, fingerprint[:2]),
                   filename=f"{fingerprint}.jsonl")

    # -- persistence -----------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        self.corrupt_records = 0
        try:
            with open(self.path, "r") as f:
                for line in f:
                    self._ingest_line(line)
        except OSError:
            # an unreadable cache is a cold cache, not a crash
            self.load_errors += 1

    def _ingest_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        try:
            rec = json.loads(line)
        except ValueError:
            # torn concurrent write or truncated final line
            self.corrupt_records += 1
            return
        if not isinstance(rec, dict):
            self.corrupt_records += 1
            return
        if rec.get("v") != CACHE_SCHEMA_VERSION:
            return  # foreign schema: ignored, not corrupt
        crc = rec.pop("crc", None)
        if crc is not None and crc != _record_crc(rec):
            self.corrupt_records += 1
            return
        key, ok = rec.get("key"), rec.get("ok")
        if isinstance(key, str) and isinstance(ok, bool):
            triage = rec.get("triage")
            self._mem[key] = (ok, triage if isinstance(triage, str)
                              else None)
        else:
            self.corrupt_records += 1

    def refresh(self) -> None:
        """Re-read records other processes appended since the load."""
        self._load()

    def compact(self) -> Tuple[int, int]:
        """Rewrite the append log to one valid record per key.

        Drops superseded duplicates, corrupt lines, and foreign-schema
        records; the replacement is atomic (write-temp + rename), so
        concurrent readers see either the old or the new file, never a
        partial one.  Returns ``(lines_before, lines_after)``.

        Concurrent-reader guarantee: compaction never makes a verdict
        another process could already observe disappear or change.  A
        reader that opened the file before the rename keeps reading the
        old inode to its end (POSIX rename semantics — no torn mix of
        old and new bytes); a reader that opens after the rename sees
        the compacted file, which contains every key of the old one
        (compaction drops only *superseded duplicates* of a key, never
        the key's surviving record); and a reader's :meth:`refresh` at
        any point around the rename therefore yields the same
        ``get``/``get_record`` answers.  Writers racing a compaction can
        lose *their in-flight append* (the rename replaces the file they
        appended to) — re-putting after :meth:`refresh` restores it —
        so the service runs compaction only from the cache owner, never
        from probing workers."""
        self.refresh()
        before = 0
        if os.path.exists(self.path):
            try:
                with open(self.path, "r") as f:
                    before = sum(1 for _ in f)
            except OSError:
                self.load_errors += 1
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir,
                                   prefix=".verdicts-compact-")
        try:
            with os.fdopen(fd, "w") as f:
                for key in sorted(self._mem):
                    ok, triage = self._mem[key]
                    f.write(self._encode(key, ok, triage) + "\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except OSError:
            self.dropped_writes += 1
            if os.path.exists(tmp):
                os.unlink(tmp)
        self.corrupt_records = 0
        return before, len(self._mem)

    # -- the cache interface ---------------------------------------------
    @staticmethod
    def key(fingerprint: str, exe_hash: str) -> str:
        return f"{fingerprint}:{exe_hash}"

    @staticmethod
    def _encode(key: str, ok: bool, triage: Optional[str] = None) -> str:
        rec = {"v": CACHE_SCHEMA_VERSION, "key": key, "ok": ok}
        if triage is not None:
            rec["triage"] = triage
        rec["crc"] = _record_crc(rec)
        return json.dumps(rec, sort_keys=True, separators=(",", ":"))

    def get(self, key: str) -> Optional[bool]:
        entry = self._mem.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[0]

    def get_record(self, key: str) -> Optional[Tuple[bool, Optional[str]]]:
        """Like :meth:`get` but returns ``(ok, triage-or-None)``."""
        entry = self._mem.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, ok: bool, triage: Optional[str] = None) -> None:
        prev = self._mem.get(key)
        if prev is not None and prev[0] == ok \
                and (triage is None or prev[1] == triage):
            return
        self._mem[key] = (ok, triage)
        try:
            with open(self.path, "a") as f:
                f.write(self._encode(key, ok, triage) + "\n")
        except OSError:
            # a full/readonly disk must not kill the probing session;
            # the verdict just isn't shared
            self.dropped_writes += 1

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "records": len(self._mem),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_records": self.corrupt_records,
            "dropped_writes": self.dropped_writes,
            "load_errors": self.load_errors,
        }

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        return key in self._mem
