"""Trace event records: typed views over plain JSON-able dicts.

Every record is a flat dict with a ``"t"`` discriminator so the JSONL
log is greppable and the round-trip through any exporter is lossless:

=========  ==========================================================
``t``      record
=========  ==========================================================
``meta``   session header (config name, strategy, format version)
``compile`` compile boundary: label (baseline/probe/final), decision
           bits, monotonically increasing compile number
``q``      one alias query (provenance-tagged)
``r``      one optimization remark, linked to ORAQL query indices
``s``      one pass statistic of the enclosing compile
``done``   session footer: the pinned pessimistic index set
=========  ==========================================================

Query records carry: the issuing pass (top of the pass-context stack),
the full stack (so queries issued by an analysis built *inside* a pass,
e.g. Memory SSA during GVN, keep both attributions), the enclosing
function, a content-based pointer-pair fingerprint, the responding
analysis, the response, and — for queries the ORAQL pass answered —
the unique-query index and cache-hit status.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

TRACE_FORMAT_VERSION = 1

#: responder value for queries no analysis (and no ORAQL pass) answered
RESPONDER_NONE = "none"
#: responder value for queries the override pass forced pessimistic
RESPONDER_OVERRIDE = "override"
#: responder value for ORAQL-answered queries
RESPONDER_ORAQL = "oraql-aa"


def describe_location(loc) -> str:
    """A deterministic, content-based one-line description of a
    :class:`~repro.analysis.memloc.MemoryLocation` (no object ids)."""
    from ..ir.instructions import Instruction
    from ..ir.printer import format_instruction

    ptr = loc.ptr
    if isinstance(ptr, Instruction):
        body = format_instruction(ptr)
    else:
        body = f"{ptr.type} {ptr.short()}"
    return f"{body} [{loc.size}]"


def pointer_fingerprint(a, b) -> str:
    """Unordered, content-based fingerprint of a pointer pair.

    Derived from the rendered location descriptions rather than value
    ids, so two compiles of the same program produce the same
    fingerprints (value ids are process-global and drift)."""
    da, db = describe_location(a), describe_location(b)
    if db < da:
        da, db = db, da
    return hashlib.sha256(f"{da}|{db}".encode()).hexdigest()[:12]


# -- record constructors ------------------------------------------------------

def meta_record(config: str, strategy: str) -> dict:
    return {"t": "meta", "version": TRACE_FORMAT_VERSION,
            "config": config, "strategy": strategy}


def compile_record(n: int, label: str,
                   bits: Optional[Sequence[int]] = None) -> dict:
    rec = {"t": "compile", "n": n, "label": label}
    if bits is not None:
        rec["bits"] = "".join(str(b) for b in bits)
    return rec


def query_record(issuer: str, stack: Sequence[str], function: str,
                 fp: str, responder: str, response: str,
                 cached: bool = False,
                 index: Optional[int] = None,
                 optimistic: Optional[bool] = None) -> dict:
    rec = {"t": "q", "pass": issuer, "stack": list(stack),
           "function": function, "fp": fp,
           "responder": responder, "response": response}
    if responder == RESPONDER_ORAQL:
        rec["cached"] = cached
        rec["index"] = index
        rec["optimistic"] = optimistic
    return rec


def remark_record(pass_name: str, function: str, message: str,
                  queries: Sequence[int] = ()) -> dict:
    return {"t": "r", "pass": pass_name, "function": function,
            "message": message, "queries": list(queries)}


def stat_record(pass_name: str, stat: str, value: int) -> dict:
    return {"t": "s", "pass": pass_name, "stat": stat, "value": value}


def done_record(pessimistic_indices: Sequence[int]) -> dict:
    return {"t": "done", "pessimistic": list(pessimistic_indices)}


def render_remark(rec: dict) -> str:
    """One ``-Rpass``-style line for a remark record."""
    return (f"remark: {rec['pass']}: {rec['function']}: {rec['message']}")


def is_oraql_query(rec: dict) -> bool:
    return rec.get("t") == "q" and rec.get("responder") == RESPONDER_ORAQL


def split_compiles(records: Sequence[dict]) -> List[tuple]:
    """Segment a record stream into ``(label, [records])`` per compile.
    Records before the first compile marker get the label ``"<pre>"``."""
    out: List[tuple] = []
    label, bucket, started = "<pre>", [], False
    for rec in records:
        if rec.get("t") == "compile":
            if started or bucket:
                out.append((label, bucket))
            label, bucket, started = rec.get("label", "?"), [], True
        else:
            bucket.append(rec)
    if started or bucket:
        out.append((label, bucket))
    return out
