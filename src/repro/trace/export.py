"""Trace exporters: JSONL event log and Chrome ``trace_event`` format.

JSONL (``--trace-out``)
    One record per line, written **atomically**: the whole stream is
    serialized to a temp file in the target directory and moved into
    place with :func:`os.replace`.  A probing session killed mid-write
    therefore leaves either no trace file or the previous complete one
    — never a torn or duplicated suffix (the chaos-smoke test pins
    this).

Chrome (``--trace-chrome``)
    A ``{"traceEvents": [...]}`` JSON document loadable in Perfetto /
    ``chrome://tracing``.  Phases become complete (``"ph": "X"``)
    events reconstructed from the timer tree; queries/remarks become
    instant (``"ph": "i"``) events carrying the full original record in
    ``args`` so the export is lossless — :func:`parse_chrome` recovers
    the exact record stream and timer tree (round-trip pinned by a
    property test).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Iterable, List, Optional, Tuple

from .timer import PhaseNode

#: JSON schema for the Chrome trace document (used by the CI
#: ``trace-smoke`` job; ``validate_chrome`` falls back to a structural
#: check when ``jsonschema`` is unavailable).
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents", "displayTimeUnit"],
    "properties": {
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"type": "string", "enum": ["X", "i", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "args": {"type": "object"},
                    "s": {"type": "string"},
                    "cat": {"type": "string"},
                },
            },
        },
    },
}


def _atomic_write(path: str, payload: str) -> None:
    """Write ``payload`` to ``path`` via tmp-file + rename so a fault
    mid-write can never leave a torn file behind."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".trace-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- JSONL --------------------------------------------------------------------

def dump_jsonl(records: Iterable[dict]) -> str:
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


def write_jsonl(path: str, records: Iterable[dict]) -> None:
    _atomic_write(path, dump_jsonl(records))


def parse_jsonl(text: str) -> List[dict]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def read_jsonl(path: str) -> List[dict]:
    with open(path) as f:
        return parse_jsonl(f.read())


# -- Chrome trace_event -------------------------------------------------------

_PID = 1          # the repro is one logical process in the trace view
_EVENT_SPACING = 10.0  # µs between synthetic instant-event timestamps


def chrome_document(records: List[dict],
                    timer_tree: Optional[dict] = None) -> dict:
    """Build a Perfetto-loadable trace document.

    Timer phases are laid out as complete events on tid 0 (children
    packed left-to-right inside their parent's span).  Records become
    instant events on tid 1 at synthetic, evenly spaced timestamps —
    real per-event timestamps are not recorded (the zero-cost contract
    forbids a clock call per query), so ordering, not absolute time,
    is the meaningful axis there.
    """
    events: List[dict] = []
    if timer_tree is not None:
        root = PhaseNode.from_dict(timer_tree)
        cursor = [0.0]

        def emit(node: PhaseNode, start: float) -> None:
            dur = node.total * 1e6  # seconds -> microseconds
            events.append({"ph": "X", "pid": _PID, "tid": 0,
                           "name": node.name, "cat": "phase",
                           "ts": start, "dur": dur,
                           "args": {"count": node.count}})
            child_start = start
            for child in node.children.values():
                emit(child, child_start)
                child_start += child.total * 1e6

        for child in root.children.values():
            emit(child, cursor[0])
            cursor[0] += child.total * 1e6
        # metadata event embedding the exact tree for lossless parse-back
        events.append({"ph": "M", "pid": _PID, "tid": 0,
                       "name": "phase_timer_tree",
                       "args": {"tree": timer_tree}})

    ts = 0.0
    for rec in records:
        name = {"meta": "session", "compile": "compile", "q": "query",
                "r": "remark", "s": "stat", "done": "done"}.get(
                    rec.get("t", "?"), rec.get("t", "?"))
        events.append({"ph": "i", "pid": _PID, "tid": 1, "name": name,
                       "cat": "trace", "s": "t", "ts": ts,
                       "args": {"record": rec}})
        ts += _EVENT_SPACING

    events.append({"ph": "M", "pid": _PID, "tid": 0,
                   "name": "process_name",
                   "args": {"name": "oraql probing session"}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(path: str, records: List[dict],
                 timer_tree: Optional[dict] = None) -> None:
    doc = chrome_document(records, timer_tree)
    _atomic_write(path, json.dumps(doc, sort_keys=True))


def parse_chrome(doc: dict) -> Tuple[List[dict], Optional[dict]]:
    """Recover the original ``(records, timer_tree)`` from a Chrome
    trace document produced by :func:`chrome_document`."""
    records: List[Tuple[float, dict]] = []
    timer_tree: Optional[dict] = None
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "i" and "record" in event.get("args", {}):
            records.append((event.get("ts", 0.0), event["args"]["record"]))
        elif (event.get("ph") == "M"
              and event.get("name") == "phase_timer_tree"):
            timer_tree = event["args"]["tree"]
    records.sort(key=lambda pair: pair[0])
    return [rec for _, rec in records], timer_tree


def read_chrome(path: str) -> Tuple[List[dict], Optional[dict]]:
    with open(path) as f:
        return parse_chrome(json.load(f))


def validate_chrome(doc: dict) -> List[str]:
    """Validate a Chrome trace document; returns a list of problems
    (empty = valid).  Uses ``jsonschema`` when importable, with an
    equivalent structural fallback otherwise so tier-1 carries no hard
    dependency."""
    try:
        import jsonschema
    except ImportError:
        jsonschema = None
    if jsonschema is not None:
        validator = jsonschema.Draft7Validator(CHROME_TRACE_SCHEMA)
        return [f"{'/'.join(str(p) for p in e.absolute_path)}: {e.message}"
                for e in validator.iter_errors(doc)]

    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if not isinstance(doc.get("traceEvents"), list):
        problems.append("traceEvents: missing or not an array")
        return problems
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("displayTimeUnit: missing or invalid")
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"traceEvents/{i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                problems.append(f"traceEvents/{i}: missing '{key}'")
        if event.get("ph") not in ("X", "i", "M"):
            problems.append(f"traceEvents/{i}: bad ph {event.get('ph')!r}")
        for key in ("ts", "dur"):
            if key in event and (not isinstance(event[key], (int, float))
                                 or event[key] < 0):
                problems.append(f"traceEvents/{i}: bad {key}")
    return problems
