"""Reconstruct paper-style tables from a trace file alone.

The point of the provenance layer is that a ``--trace-out`` JSONL file
is a self-contained artifact: :func:`summarize` rebuilds the Fig. 4
query-count columns, a Fig. 6-style pass-statistics table, per-pass
query attribution, the remark log, and the dangerous-query provenance
("why is q17 pessimistic?") without re-running the compiler.

All tables default to the **final** compile of the session (the one the
driver pins the locally-maximal optimistic sequence with), which is
what the paper's figures report.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.tables import render_table
from . import events as ev
from .timer import render_tree


def _select_compile(records: Sequence[dict],
                    label: Optional[str]) -> Tuple[str, List[dict]]:
    """Pick one compile's records: the requested label's last occurrence,
    or the last compile in the stream when no label is given."""
    compiles = ev.split_compiles(records)
    if not compiles:
        return "<empty>", []
    if label is None:
        return compiles[-1]
    for compile_label, bucket in reversed(compiles):
        if compile_label == label:
            return compile_label, bucket
    known = sorted({lab for lab, _ in compiles})
    raise ValueError(f"no compile labelled {label!r} in trace "
                     f"(have: {', '.join(known)})")


def session_meta(records: Sequence[dict]) -> Dict[str, str]:
    for rec in records:
        if rec.get("t") == "meta":
            return {"config": rec.get("config", "?"),
                    "strategy": rec.get("strategy", "?")}
    return {"config": "?", "strategy": "?"}


def pessimistic_set(records: Sequence[dict]) -> Optional[List[int]]:
    for rec in reversed(records):
        if rec.get("t") == "done":
            return list(rec.get("pessimistic", ()))
    return None


# -- Fig. 4-style query counts ------------------------------------------------

def query_counts(records: Sequence[dict],
                 label: Optional[str] = None) -> Dict[str, int]:
    """The Fig. 4 ORAQL columns (OptU/OptC/PessU/PessC) plus the total
    no-alias count across the whole chain, for one compile."""
    _, bucket = _select_compile(records, label)
    counts = {"opt_unique": 0, "opt_cached": 0,
              "pess_unique": 0, "pess_cached": 0,
              "no_alias_total": 0, "queries": 0}
    for rec in bucket:
        if rec.get("t") != "q":
            continue
        counts["queries"] += 1
        if rec.get("response") == "NoAlias":
            counts["no_alias_total"] += 1
        if rec.get("responder") != ev.RESPONDER_ORAQL:
            continue
        kind = "opt" if rec.get("optimistic") else "pess"
        bucket_key = "cached" if rec.get("cached") else "unique"
        counts[f"{kind}_{bucket_key}"] += 1
    return counts


def render_query_table(records: Sequence[dict],
                       label: Optional[str] = None) -> str:
    meta = session_meta(records)
    selected, _ = _select_compile(records, label)
    c = query_counts(records, label)
    headers = ["Config", "Compile", "OptU", "OptC", "PessU", "PessC",
               "NoAlias", "Queries"]
    row = [meta["config"], selected,
           c["opt_unique"], c["opt_cached"],
           c["pess_unique"], c["pess_cached"],
           c["no_alias_total"], c["queries"]]
    return render_table(
        headers, [row],
        title="Alias query statistics (Fig. 4 columns, from trace)")


# -- Fig. 6-style pass statistics ---------------------------------------------

def pass_stats(records: Sequence[dict],
               label: Optional[str] = None) -> List[Tuple[str, str, int]]:
    _, bucket = _select_compile(records, label)
    return [(rec["pass"], rec["stat"], rec["value"])
            for rec in bucket if rec.get("t") == "s"]


def render_stats_table(records: Sequence[dict],
                       label: Optional[str] = None) -> str:
    rows = sorted(pass_stats(records, label))
    return render_table(
        ["Pass", "Statistic", "Value"],
        [[p, s, v] for p, s, v in rows],
        title="Pass statistics (Fig. 6 style, from trace)")


# -- provenance: who asked ----------------------------------------------------

def queries_by_pass(records: Sequence[dict],
                    label: Optional[str] = None) -> "Counter[str]":
    _, bucket = _select_compile(records, label)
    return Counter(rec["pass"] for rec in bucket
                   if ev.is_oraql_query(rec))


def render_attribution_table(records: Sequence[dict],
                             label: Optional[str] = None) -> str:
    counts = queries_by_pass(records, label)
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return render_table(
        ["Issuing pass", "ORAQL queries"], [[p, n] for p, n in rows],
        title="ORAQL query attribution (from trace)")


def explain_query(records: Sequence[dict], index: int,
                  label: Optional[str] = None) -> str:
    """Why is query ``index`` interesting?  Lists every occurrence
    (issuer, function, fingerprint, answer) and every remark whose
    transform the answer enabled — the driver uses this to print why a
    bisected query is dangerous."""
    _, bucket = _select_compile(records, label)
    lines = [f"query q{index}:"]
    for rec in bucket:
        if ev.is_oraql_query(rec) and rec.get("index") == index:
            hit = "cached" if rec.get("cached") else "unique"
            lines.append(
                f"  asked by {rec['pass']} in {rec['function']} "
                f"on pair {rec['fp']} -> {rec['response']} ({hit})")
    for rec in bucket:
        if rec.get("t") == "r" and index in rec.get("queries", ()):
            lines.append(f"  enabled: {ev.render_remark(rec)}")
    if len(lines) == 1:
        lines.append("  (no occurrences in this compile)")
    return "\n".join(lines)


def render_remarks(records: Sequence[dict],
                   label: Optional[str] = None) -> str:
    _, bucket = _select_compile(records, label)
    lines = [ev.render_remark(rec) for rec in bucket
             if rec.get("t") == "r"]
    return "\n".join(lines) if lines else "(no remarks)"


# -- the full summary ---------------------------------------------------------

def summarize(records: Sequence[dict],
              timer_tree: Optional[dict] = None,
              label: Optional[str] = None,
              normalize_times: bool = False) -> str:
    meta = session_meta(records)
    pess = pessimistic_set(records)
    sections = [
        f"=== ORAQL trace summary: {meta['config']} "
        f"(strategy: {meta['strategy']}) ===",
        "",
        render_query_table(records, label),
        "",
        render_attribution_table(records, label),
        "",
        render_stats_table(records, label),
        "",
        "Remarks:",
        render_remarks(records, label),
    ]
    if pess is not None:
        sections += ["", "Pessimistic set: "
                     + (", ".join(f"q{i}" for i in pess) if pess
                        else "(empty — fully optimistic)")]
        for index in pess:
            sections += ["", explain_query(records, index, label)]
    if timer_tree is not None:
        sections += ["", render_tree(timer_tree, normalize=normalize_times)]
    return "\n".join(sections)
