"""``python -m repro.trace`` — work with trace files offline.

Subcommands::

    summarize TRACE.jsonl [--compile LABEL] [--query N]
        Rebuild the Fig. 4/Fig. 6-style tables, remark log, and
        dangerous-query provenance from a JSONL trace alone.

    chrome TRACE.jsonl -o TRACE.json
        Convert a JSONL trace to Chrome trace_event format
        (Perfetto-loadable).

    validate TRACE.json
        JSON-schema-check a Chrome trace document (exit 1 on problems).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import export, summarize as summ


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect and convert ORAQL query-provenance traces.")
    sub = p.add_subparsers(dest="cmd", required=True)

    s = sub.add_parser("summarize",
                       help="render paper-style tables from a JSONL trace")
    s.add_argument("trace", help="JSONL trace file (--trace-out output)")
    s.add_argument("--compile", dest="label", default=None,
                   help="compile label to summarize (default: last "
                        "compile, i.e. 'final' for a full session)")
    s.add_argument("--query", type=int, default=None, metavar="N",
                   help="explain a single query index instead of the "
                        "full summary")
    s.add_argument("--timer", default=None, metavar="JSON",
                   help="phase-timer tree JSON file to append to the "
                        "summary")

    c = sub.add_parser("chrome",
                       help="convert a JSONL trace to Chrome trace_event")
    c.add_argument("trace", help="JSONL trace file")
    c.add_argument("-o", "--output", required=True,
                   help="output .json path")
    c.add_argument("--timer", default=None, metavar="JSON",
                   help="phase-timer tree JSON file to embed")

    v = sub.add_parser("validate",
                       help="schema-check a Chrome trace document")
    v.add_argument("trace", help="Chrome trace .json file")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.cmd == "summarize":
        records = export.read_jsonl(args.trace)
        timer_tree = None
        if args.timer:
            with open(args.timer) as f:
                timer_tree = json.load(f)
        if args.query is not None:
            print(summ.explain_query(records, args.query, args.label))
        else:
            print(summ.summarize(records, timer_tree=timer_tree,
                                 label=args.label))
        return 0

    if args.cmd == "chrome":
        records = export.read_jsonl(args.trace)
        timer_tree = None
        if args.timer:
            with open(args.timer) as f:
                timer_tree = json.load(f)
        export.write_chrome(args.output, records, timer_tree)
        print(f"wrote {args.output}")
        return 0

    if args.cmd == "validate":
        with open(args.trace) as f:
            doc = json.load(f)
        problems = export.validate_chrome(doc)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        n = len(doc.get("traceEvents", ()))
        print(f"valid Chrome trace ({n} events)")
        return 0

    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
