"""Streaming trace sink: QueryTrace events appended to JSONL as they
happen.

The probing service streams job progress to its clients **in the
QueryTrace JSONL schema** (DESIGN.md §5d/§5g): a worker probing a job
runs its driver with a :class:`JsonlStreamingTrace`, which appends each
coarse session event — the ``meta`` header, one ``compile`` record per
compile boundary, the terminal ``done`` record — to an append-only
events file, flushed per record.  The server tails the file and
forwards each line verbatim inside an ``event`` envelope, so a service
client's event stream is readable by the exact tooling that reads
``--trace-out`` files (``python -m repro.trace summarize`` et al.).

The zero-cost contract of the base sink is unchanged: the stream only
*observes*; a streamed session's executables and verdicts are
bit-identical to an untraced one.  Write failures degrade streaming
(``dropped_writes``), never the probing session.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator, List

from .sink import QueryTrace

#: record kinds streamed (and retained) by a non-verbose streaming
#: trace — the per-session skeleton, without the per-query firehose
COARSE_KINDS = frozenset({"meta", "compile", "done"})


class JsonlStreamingTrace(QueryTrace):
    """A :class:`QueryTrace` that appends records to ``path`` live.

    ``verbose=False`` (the service default) streams only
    :data:`COARSE_KINDS`; ``verbose=True`` streams every record the
    base sink would collect, including per-query provenance — the full
    ``--trace-out`` stream, delivered incrementally.
    """

    def __init__(self, path: str, verbose: bool = False,
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock, record_events=True)
        self.path = path
        self.verbose = verbose
        #: records lost to OSError (full/readonly disk); the session
        #: keeps probing, clients just see a gappy stream
        self.dropped_writes = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # one stream per session attempt: a requeued job's retry starts
        # its event log over (tailers handle the shrink by rewinding)
        try:
            with open(path, "w"):
                pass
        except OSError:
            self.dropped_writes += 1

    def _emit(self, rec: dict) -> None:
        if not self.verbose and rec.get("t") not in COARSE_KINDS:
            return
        super()._emit(rec)
        try:
            with open(self.path, "a") as f:
                f.write(json.dumps(rec, sort_keys=True,
                                   separators=(",", ":")) + "\n")
                f.flush()
        except OSError:
            self.dropped_writes += 1


class EventTail:
    """Incremental reader over a streaming events file.

    ``poll()`` returns the complete lines appended since the previous
    poll, parsed; a partial final line (a write in flight) stays
    buffered until its newline arrives.  A file that *shrank* (a
    requeued attempt restarted the stream) rewinds to the start, so the
    tail delivers the retry's events rather than silence."""

    def __init__(self, path: str):
        self.path = path
        self._offset = 0

    def poll(self) -> List[dict]:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0  # stream restarted
        if size == self._offset:
            return []
        try:
            with open(self.path, "r") as f:
                f.seek(self._offset)
                chunk = f.read(size - self._offset)
        except OSError:
            return []
        records: List[dict] = []
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn tail: re-read next poll
            consumed += len(line)
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict):
                records.append(rec)
        self._offset += consumed
        return records


def read_stream(path: str) -> Iterator[dict]:
    """Every complete record currently in a streaming events file."""
    tail = EventTail(path)
    yield from tail.poll()
