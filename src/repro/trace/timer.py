"""Hierarchical phase timer (LLVM's ``-time-passes`` equivalent).

A :class:`PhaseTimer` owns a tree of :class:`PhaseNode`\\ s.  Opening a
phase pushes a node (created on first use, found by name afterwards)
onto a stack; closing it adds the elapsed monotonic time to the node's
total and bumps its entry count.  Because a child only accumulates time
while its parent is open, the tree satisfies two invariants the
property tests pin down:

* ``self_time >= 0`` for every node, and
* ``sum(child.total) <= parent.total`` (up to clock resolution).

The clock is injectable so golden tests can render a bit-deterministic
tree, and trees serialize to plain dicts so parallel workers can ship
their timers back for :meth:`PhaseTimer.merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional


class PhaseNode:
    """One phase: accumulated wall time, entry count, ordered children."""

    __slots__ = ("name", "total", "count", "children")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.children: Dict[str, "PhaseNode"] = {}

    def child(self, name: str) -> "PhaseNode":
        node = self.children.get(name)
        if node is None:
            node = PhaseNode(name)
            self.children[name] = node
        return node

    @property
    def self_time(self) -> float:
        return self.total - sum(c.total for c in self.children.values())

    def merge(self, other: "PhaseNode") -> None:
        self.total += other.total
        self.count += other.count
        for name, child in other.children.items():
            self.child(name).merge(child)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "total": self.total,
            "count": self.count,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @staticmethod
    def from_dict(d: dict) -> "PhaseNode":
        node = PhaseNode(d["name"])
        node.total = float(d["total"])
        node.count = int(d["count"])
        for cd in d.get("children", ()):
            node.children[cd["name"]] = PhaseNode.from_dict(cd)
        return node


class PhaseTimer:
    """Stack-scoped hierarchical timing with an injectable clock."""

    ROOT_NAME = "<session>"

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.root = PhaseNode(self.ROOT_NAME)
        self._stack: List[PhaseNode] = [self.root]

    @contextmanager
    def phase(self, name: str):
        node = self._stack[-1].child(name)
        self._stack.append(node)
        t0 = self.clock()
        try:
            yield node
        finally:
            elapsed = self.clock() - t0
            if elapsed > 0:
                node.total += elapsed
            node.count += 1
            self._stack.pop()

    # -- merging across workers / compiles --------------------------------
    def merge(self, other: "PhaseTimer") -> None:
        self.root.merge(other.root)

    def merge_dict(self, tree: Optional[dict]) -> None:
        if tree:
            self.root.merge(PhaseNode.from_dict(tree))

    def to_dict(self) -> dict:
        return self.root.to_dict()

    @staticmethod
    def from_dict(tree: dict) -> "PhaseTimer":
        t = PhaseTimer()
        t.root = PhaseNode.from_dict(tree)
        t._stack = [t.root]
        return t

    # -- rendering ---------------------------------------------------------
    def render(self, normalize: bool = False) -> str:
        return render_tree(self.to_dict(), normalize=normalize)


def render_tree(tree: dict, normalize: bool = False) -> str:
    """Render a serialized timer tree like ``-time-passes``.

    ``normalize=True`` replaces wall-clock numbers with ``*`` so the
    shape (nesting, ordering, counts) can be golden-tested while the
    timings, which vary run to run, cannot fail the comparison.
    """
    root = PhaseNode.from_dict(tree)
    lines = ["===-- Phase timing report --===",
             f"{'total':>10} {'self':>10} {'count':>6}  phase"]

    def fmt(seconds: float) -> str:
        return "*" if normalize else f"{seconds:.4f}"

    def walk(node: PhaseNode, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{fmt(node.total):>10} {fmt(node.self_time):>10} "
                     f"{node.count:>6}  {indent}{node.name}")
        for child in node.children.values():
            walk(child, depth + 1)

    for child in root.children.values():
        walk(child, 0)
    return "\n".join(lines)
