"""Query-provenance observability: tracing, time-passes, remarks.

See DESIGN.md §5d.  The layer is strictly observational — with
``trace=None`` (the default everywhere) no event is recorded, no clock
is read per query, and compiled artifacts are bit-identical to a traced
run (pinned by ``tests/test_trace_differential.py``).
"""

from .events import (RESPONDER_NONE, RESPONDER_ORAQL, RESPONDER_OVERRIDE,
                     TRACE_FORMAT_VERSION)
from .export import (read_chrome, read_jsonl, validate_chrome, write_chrome,
                     write_jsonl)
from .sink import QueryTrace
from .stream import EventTail, JsonlStreamingTrace
from .timer import PhaseNode, PhaseTimer, render_tree

__all__ = [
    "QueryTrace", "PhaseTimer", "PhaseNode", "render_tree",
    "JsonlStreamingTrace", "EventTail",
    "write_jsonl", "read_jsonl", "write_chrome", "read_chrome",
    "validate_chrome",
    "RESPONDER_NONE", "RESPONDER_ORAQL", "RESPONDER_OVERRIDE",
    "TRACE_FORMAT_VERSION",
]
