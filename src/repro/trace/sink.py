"""The query-provenance trace sink.

A :class:`QueryTrace` is threaded through
:class:`~repro.passes.pass_manager.CompilationContext` (``ctx.trace``)
and from there into the AA chain and the ORAQL pass.  It records

* every alias query, tagged with the pass-context stack the pass
  manager maintains (so a query issued while Memory SSA is being built
  inside GVN keeps both attributions),
* optimization remarks the transformation passes emit when they commit
  a change, linked back to the ORAQL query indices observed during the
  legality window (:meth:`mark` / :meth:`remark`),
* per-compile boundaries, per-compile pass statistics, and the final
  pessimistic index set, and
* a hierarchical :class:`~repro.trace.timer.PhaseTimer`.

**Zero-cost contract**: tracing is off when ``ctx.trace is None`` —
every emission site guards on that, so a traced and an untraced compile
execute the same query stream and produce bit-identical executables.
The sink only *observes*; it never influences an answer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple

from . import events as ev
from .timer import PhaseTimer


class QueryTrace:
    """Event sink + phase timer for one probing (or compile) session.

    ``record_events=False`` turns the sink into a timer-only shell,
    which is what parallel workers use: full event streams do not
    survive (or justify) pickling across process boundaries, but the
    phase timers merge cheaply.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 record_events: bool = True):
        self.timer = PhaseTimer(clock)
        self.record_events = record_events
        self.records: List[dict] = []
        #: the live pass-context stack of the currently bound
        #: CompilationContext (shared list, mutated by push/pop)
        self._stack: Sequence[str] = ()
        #: (index, optimistic) of ORAQL answers in the current compile,
        #: consumed by the remark machinery's mark/since protocol
        self._oraql_log: List[Tuple[int, bool]] = []
        self._compile_count = 0

    # -- wiring ------------------------------------------------------------
    def _emit(self, rec: dict) -> None:
        """Record one event.  The single funnel every record constructor
        goes through; streaming subclasses override it to also ship the
        record out (``repro.trace.stream``)."""
        self.records.append(rec)

    def bind_context(self, ctx) -> None:
        """Adopt ``ctx``'s live pass stack for event attribution."""
        self._stack = ctx.pass_stack

    def session(self, config_name: str, strategy: str) -> None:
        if self.record_events:
            self._emit(ev.meta_record(config_name, strategy))

    def begin_compile(self, label: str,
                      bits: Optional[Sequence[int]] = None) -> None:
        self._compile_count += 1
        self._oraql_log.clear()
        if self.record_events:
            self._emit(
                ev.compile_record(self._compile_count, label, bits))

    # -- query events ------------------------------------------------------
    def _issuer(self) -> str:
        return self._stack[-1] if self._stack else "<none>"

    def chain_query(self, function: str, a, b, responder: str,
                    response: str) -> None:
        """A query resolved before (or without) the ORAQL pass."""
        if not self.record_events:
            return
        self._emit(ev.query_record(
            self._issuer(), self._stack, function,
            ev.pointer_fingerprint(a, b), responder, response))

    def oraql_query(self, function: str, a, b, optimistic: bool,
                    cached: bool, index: int) -> None:
        """A query the ORAQL pass answered (uniquely or from its cache)."""
        self._oraql_log.append((index, optimistic))
        if not self.record_events:
            return
        self._emit(ev.query_record(
            self._issuer(), self._stack, function,
            ev.pointer_fingerprint(a, b), ev.RESPONDER_ORAQL,
            "NoAlias" if optimistic else "MayAlias",
            cached=cached, index=index, optimistic=optimistic))

    def oraql_skip(self, function: str, a, b) -> None:
        """A query that reached the ORAQL pass but fell outside its
        probing scope (target filter, function/file restriction)."""
        if not self.record_events:
            return
        self._emit(ev.query_record(
            self._issuer(), self._stack, function,
            ev.pointer_fingerprint(a, b), ev.RESPONDER_NONE, "MayAlias"))

    # -- remarks -----------------------------------------------------------
    def mark(self) -> int:
        """Checkpoint the ORAQL answer log; pass the result to
        :meth:`remark` to link a transform to the answers that enabled
        it."""
        return len(self._oraql_log)

    def remark(self, pass_name: str, function: str, message: str,
               since: Optional[int] = None) -> None:
        queries: List[int] = []
        if since is not None:
            seen = set()
            for index, optimistic in self._oraql_log[since:]:
                if optimistic and index not in seen:
                    seen.add(index)
                    queries.append(index)
            queries.sort()
            if queries:
                message += (" because ORAQL said no-alias("
                            + ", ".join(f"q{i}" for i in queries) + ")")
        if self.record_events:
            self._emit(
                ev.remark_record(pass_name, function, message, queries))

    # -- per-compile bookkeeping -------------------------------------------
    def record_stats(self, stats) -> None:
        """Snapshot a compile's pass statistics into the stream (the raw
        material for Fig. 6-style tables from the trace alone)."""
        if not self.record_events:
            return
        for pass_name, stat, value in stats.rows():
            self._emit(ev.stat_record(pass_name, stat, value))

    def record_done(self, pessimistic_indices: Sequence[int]) -> None:
        if self.record_events:
            self._emit(ev.done_record(pessimistic_indices))

    # -- timing ------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        with self.timer.phase(name) as node:
            yield node

    # -- views -------------------------------------------------------------
    def remark_lines(self, label: Optional[str] = None) -> List[str]:
        """Rendered ``-Rpass``-style lines, optionally restricted to the
        compile(s) with the given label."""
        lines: List[str] = []
        for compile_label, records in ev.split_compiles(self.records):
            if label is not None and compile_label != label:
                continue
            lines.extend(ev.render_remark(r) for r in records
                         if r.get("t") == "r")
        return lines

    def query_records(self, label: Optional[str] = None) -> List[dict]:
        out: List[dict] = []
        for compile_label, records in ev.split_compiles(self.records):
            if label is not None and compile_label != label:
                continue
            out.extend(r for r in records if r.get("t") == "q")
        return out
