"""Campaign runner: seed fan-out, time budget, self-test, reporting.

A campaign runs the differential oracle over a seed range.  Like the
PR-1 parallel probing engine, seeds fan out to a
:class:`~concurrent.futures.ProcessPoolExecutor` (each worker opens the
shared persistent :class:`~repro.oraql.cache.VerdictCache` when
``cache_dir`` is given, so bisections triggered by optimistic
divergences reuse verdicts across workers and campaigns), and like the
PR-1 driver the time budget degrades gracefully: when ``time_budget``
runs out, pending seeds are cancelled and the report is flagged
``budget_exhausted`` instead of losing the finished work.

Self-test mode (``--self-test``) is the harness testing *itself*: every
seed is generated in hazard mode, which injects a call from a template
family whose may-alias queries are **known dangerous** — the empty
(all-optimistic) decision sequence forces exactly those queries to
``no-alias``.  The oracle must flag the divergence, the probing
driver's bisection must pin it to a non-empty pessimistic set, and the
reducer must shrink the program to at most
:data:`SELF_TEST_SIZE_LIMIT` structural AST nodes.  Any miss is
reported as a finding, the same as a genuine miscompile.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional

from ..frontend.ast_nodes import TranslationUnit
from ..oraql.cache import VerdictCache
from ..oraql.compiler import Compiler
from ..oraql.sequence import DecisionSequence
from .corpus import CorpusEntry, entry_name, write_entry
from .generator import GeneratorOptions, generate_program
from .oracle import DifferentialOracle, base_config
from .reduce import reduce_program
from .render import ast_size, render_unit

#: the self-test's bar: a caught injection must shrink to this many
#: structural AST nodes or fewer
SELF_TEST_SIZE_LIMIT = 20

#: salt decorrelating the hazard coin-flip from the generator's stream
_HAZARD_SALT = 0x9E3779B9


@dataclass
class CampaignOptions:
    seeds: int = 200
    seed_start: int = 0
    jobs: int = 1
    #: wall-clock budget in seconds; None = run every seed
    time_budget: Optional[float] = None
    #: hazard-mode probability for ordinary campaigns
    hazard_rate: float = 0.25
    #: every seed hazard-mode + assert catch & shrink
    self_test: bool = False
    opt_level: int = 3
    #: reduce findings (and, in self-test, every caught injection)
    reduce: bool = True
    max_reduce_trials: int = 600
    #: probing-driver test budget per bisection
    max_tests: int = 2_000
    cache_dir: Optional[str] = None
    corpus_dir: Optional[str] = None
    #: cap on corpus entries written per campaign
    max_corpus_entries: int = 8
    #: probing strategies for the bisection referee (first = primary,
    #: rest cross-checked per divergent case); None = chunked only
    strategies: Optional[List[str]] = None


@dataclass
class SeedResult:
    seed: int
    hazard: bool
    hazard_calls: List[str] = field(default_factory=list)
    outcomes: dict = field(default_factory=dict)
    #: finding dicts (kind/config_key/detail), empty = clean
    findings: List[dict] = field(default_factory=list)
    optimism_divergent: bool = False
    optimism_caught: bool = False
    pessimistic_indices: List[int] = field(default_factory=list)
    original_size: int = 0
    reduced_size: int = 0
    reduction_trials: int = 0
    compiles: int = 0
    cache_hits: int = 0
    elapsed: float = 0.0
    corpus_entry: Optional[CorpusEntry] = None

    @property
    def clean(self) -> bool:
        return not self.findings


@dataclass
class CampaignReport:
    options: CampaignOptions
    results: List[SeedResult] = field(default_factory=list)
    budget_exhausted: bool = False
    elapsed: float = 0.0
    #: corpus file paths actually written by this campaign
    corpus_written: List[str] = field(default_factory=list)

    # -- aggregates ------------------------------------------------------
    @property
    def seeds_run(self) -> int:
        return len(self.results)

    @property
    def findings(self) -> List[SeedResult]:
        return [r for r in self.results if not r.clean]

    @property
    def unexplained_divergences(self) -> int:
        return sum(len(r.findings) for r in self.results)

    @property
    def optimism_divergent(self) -> List[SeedResult]:
        return [r for r in self.results if r.optimism_divergent]

    @property
    def ok(self) -> bool:
        return self.unexplained_divergences == 0

    def render(self) -> str:
        o = self.options
        caught = [r for r in self.optimism_divergent if r.optimism_caught]
        out = [f"== fuzz campaign: {self.seeds_run}/{o.seeds} seeds "
               f"(start {o.seed_start}, jobs {o.jobs}, "
               f"O{o.opt_level}) in {self.elapsed:.1f}s =="]
        if self.budget_exhausted:
            out.append(f"TIME BUDGET EXHAUSTED after {o.time_budget:.0f}s — "
                       f"partial campaign")
        compiles = sum(r.compiles for r in self.results)
        hits = sum(r.cache_hits for r in self.results)
        out.append(f"compiles           : {compiles}"
                   + (f", {hits} verdict-cache hits" if hits else ""))
        out.append(f"optimistic diverged: {len(self.optimism_divergent)} "
                   f"seeds, {len(caught)} caught by bisection")
        if o.self_test:
            shrunk = [r for r in caught
                      if 0 < r.reduced_size <= SELF_TEST_SIZE_LIMIT]
            out.append(f"self-test          : {len(self.optimism_divergent)} "
                       f"injections, {len(caught)} caught, "
                       f"{len(shrunk)} shrunk to "
                       f"<= {SELF_TEST_SIZE_LIMIT} nodes")
            if caught:
                worst = max(r.reduced_size for r in caught)
                out.append(f"largest reproducer : {worst} nodes")
        out.append(f"unexplained        : {self.unexplained_divergences} "
                   f"divergences")
        for r in self.findings:
            for f in r.findings:
                out.append(f"  seed {r.seed}: [{f['kind']}] "
                           f"{f['config_key']}: {f['detail']}")
        if self.corpus_written:
            out.append(f"corpus             : {len(self.corpus_written)} "
                       f"minimized reproducers written")
        return "\n".join(out)


# -- reduction predicates (module level so they pickle) ----------------------

def _optimism_diverges(unit: TranslationUnit, opt_level: int) -> bool:
    """True iff the all-optimistic build observably diverges from O0."""
    import dataclasses as _dc
    source = render_unit(unit)
    compiler = Compiler()
    cfg = base_config(0, source, opt_level)
    ref = compiler.compile(_dc.replace(cfg, opt_level=0)).run()
    if not ref.ok:
        return False
    opt = compiler.compile(cfg, sequence=DecisionSequence(),
                           oraql_enabled=True).run()
    return (not opt.ok) or opt.stdout != ref.stdout


def _config_diverges(unit: TranslationUnit, opt_level: int,
                     config_key: str) -> bool:
    """True iff the named matrix config still disagrees with O0."""
    import dataclasses as _dc
    source = render_unit(unit)
    compiler = Compiler()
    cfg = base_config(0, source, opt_level)
    ref = compiler.compile(_dc.replace(cfg, opt_level=0)).run()
    if not ref.ok:
        return config_key == "o0"  # reference-failure reproducer
    if config_key == "o0":
        return False
    if config_key == "o2":
        run = compiler.compile(_dc.replace(cfg, opt_level=2)).run()
    elif config_key == "o3":
        run = compiler.compile(cfg).run()
    elif config_key == "o3-coarse":
        fine = compiler.compile(cfg)
        coarse = compiler.compile(cfg, invalidation="coarse")
        if fine.exe_hash != coarse.exe_hash:
            return True
        run = coarse.run()
    elif config_key == "override":
        run = compiler.compile(cfg, suppress_chain=True).run()
    elif config_key == "pessimistic":
        probe = compiler.compile(cfg, sequence=DecisionSequence(),
                                 oraql_enabled=True)
        n = probe.oraql.unique_queries + 8
        run = compiler.compile(cfg, sequence=DecisionSequence([0] * n),
                               oraql_enabled=True).run()
    else:
        return False
    return (not run.ok) or run.stdout != ref.stdout


def _is_hazard_seed(seed: int, opts: CampaignOptions) -> bool:
    if opts.self_test:
        return True
    return random.Random(seed ^ _HAZARD_SALT).random() < opts.hazard_rate


# -- one seed (worker-side entry point) --------------------------------------

def run_seed(seed: int, opts: CampaignOptions) -> SeedResult:
    t0 = time.monotonic()
    hazard = _is_hazard_seed(seed, opts)
    program = generate_program(seed, GeneratorOptions(hazard=hazard))
    result = SeedResult(seed=seed, hazard=hazard,
                        hazard_calls=program.hazard_calls,
                        original_size=program.size)
    cache = VerdictCache(opts.cache_dir) if opts.cache_dir else None
    oracle = DifferentialOracle(verdict_cache=cache,
                                opt_level=opts.opt_level,
                                max_tests=opts.max_tests,
                                strategies=opts.strategies or ["chunked"])
    check = oracle.check(seed, program.source)
    result.outcomes = dict(check.outcomes)
    result.findings = [asdict(f) for f in check.findings]
    result.optimism_divergent = check.optimism_divergent
    result.optimism_caught = (check.optimism_divergent
                              and bool(check.pessimistic_indices))
    result.pessimistic_indices = list(check.pessimistic_indices)
    result.compiles = check.compiles
    result.cache_hits = check.cache_hits

    # what (if anything) to reduce for this seed
    predicate: Optional[Callable[[TranslationUnit], bool]] = None
    kind = config_key = detail = None
    if check.findings:
        f = check.findings[0]
        kind, config_key, detail = f.kind, f.config_key, f.detail
        if f.kind == "unsound-optimism-uncaught":
            predicate = lambda u: _optimism_diverges(u, opts.opt_level)  # noqa: E731
        else:
            predicate = lambda u: _config_diverges(  # noqa: E731
                u, opts.opt_level, f.config_key)
    elif opts.self_test and result.optimism_caught:
        kind, config_key = "optimism-hazard", "optimistic"
        detail = f"pessimistic indices {result.pessimistic_indices}"
        predicate = lambda u: _optimism_diverges(u, opts.opt_level)  # noqa: E731

    if predicate is not None and opts.reduce:
        red = reduce_program(program.unit, predicate,
                             max_trials=opts.max_reduce_trials)
        result.reduced_size = red.final_size
        result.reduction_trials = red.trials
        if opts.self_test and kind == "optimism-hazard" \
                and red.final_size > SELF_TEST_SIZE_LIMIT:
            result.findings.append({
                "kind": "self-test-reduction",
                "config_key": "optimistic",
                "detail": f"reducer stalled at {red.final_size} nodes "
                          f"(> {SELF_TEST_SIZE_LIMIT}) after "
                          f"{red.trials} trials"})
        result.corpus_entry = CorpusEntry(
            name=entry_name(kind, seed), seed=seed, kind=kind,
            config_key=config_key, detail=detail or "",
            hazard_calls=program.hazard_calls,
            original_size=ast_size(program.unit),
            reduced_size=red.final_size,
            reduction_trials=red.trials,
            source=red.source)
    result.elapsed = time.monotonic() - t0
    return result


def _campaign_worker(seed: int, opts: CampaignOptions) -> SeedResult:
    return run_seed(seed, opts)


# -- the campaign ------------------------------------------------------------

def run_campaign(opts: CampaignOptions,
                 progress: Optional[Callable[[SeedResult], None]] = None
                 ) -> CampaignReport:
    t0 = time.monotonic()
    report = CampaignReport(options=opts)
    seeds = list(range(opts.seed_start, opts.seed_start + opts.seeds))
    deadline = (t0 + opts.time_budget) if opts.time_budget else None

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    if opts.jobs <= 1:
        for seed in seeds:
            if out_of_time():
                report.budget_exhausted = True
                break
            r = run_seed(seed, opts)
            report.results.append(r)
            if progress:
                progress(r)
    else:
        jobs = min(opts.jobs, len(seeds), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            pending = {executor.submit(_campaign_worker, s, opts)
                       for s in seeds}
            try:
                while pending:
                    timeout = None if deadline is None \
                        else max(0.0, deadline - time.monotonic())
                    done, pending = wait(pending, timeout=timeout,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        r = fut.result()
                        report.results.append(r)
                        if progress:
                            progress(r)
                    if out_of_time() and pending:
                        report.budget_exhausted = True
                        for fut in pending:
                            fut.cancel()
                        break
            finally:
                for fut in pending:
                    fut.cancel()
        report.results.sort(key=lambda r: r.seed)

    # the parent process writes the corpus (workers only carry entries
    # back), so concurrent campaigns never interleave partial files
    if opts.corpus_dir:
        for r in report.results:
            if r.corpus_entry is None or (r.clean and not opts.self_test):
                continue
            if len(report.corpus_written) >= opts.max_corpus_entries:
                break
            report.corpus_written.append(
                write_entry(r.corpus_entry, opts.corpus_dir))
    report.elapsed = time.monotonic() - t0
    return report
