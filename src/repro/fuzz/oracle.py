"""The multi-configuration differential oracle.

One generated program is compiled under a matrix of configurations and
the outputs are compared against the O0 interpretation, which performs
no transformation and therefore serves as the semantic reference:

========================  =====================================================
key                       what it checks
========================  =====================================================
``o2`` / ``o3``           the plain pipeline may only get faster, never
                          different (classic differential compiler testing)
``o3-coarse``             fine-grained analysis invalidation must be
                          behaviour- *and bit*-identical to coarse (the PR-2
                          contract: same stdout **and** same ``exe_hash``)
``override``              forcing every chain answer pessimistic (§VIII) is
                          always sound — must match O0
``pessimistic``           ORAQL answering **every** last-resort query
                          may-alias must match O0 (the paper's soundness
                          anchor: pessimism never changes behaviour)
``optimistic``            ORAQL answering everything no-alias *may* diverge —
                          but then the probing driver's bisection must catch
                          it: find a non-empty pessimistic set whose final
                          sequence verifies.  A divergence bisection cannot
                          explain is a finding, exactly like a pipeline
                          miscompile.
``incremental``           recompiling against the all-optimistic baseline
                          (splice + mid-pipeline resume) must be
                          bit-identical to the full compile: same
                          ``exe_hash``, per-function hashes, pessimistic
                          set, and unique-query index space
========================  =====================================================

Findings are classified ``miscompile`` (a config that must match O0
does not), ``unsound-optimism-uncaught`` (optimistic divergence the
driver fails to pin down), or ``invalidation-hash`` (fine vs. coarse
hash split).  ``optimism-hazard`` results — optimistic divergence
correctly caught by bisection — are *expected* behaviour and reported
separately (they are what the self-test forces, see
:mod:`repro.fuzz.campaign`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..oraql.cache import VerdictCache, config_fingerprint
from ..oraql.compiler import CompiledProgram, Compiler
from ..oraql.config import BenchmarkConfig, SourceFile
from ..oraql.driver import ProbingDriver, ProbingReport
from ..oraql.sequence import DecisionSequence

#: pessimistic-tail padding past the observed unique-query count (the
#: stream can grow when answers flip; mirrors ProbingDriver.TAIL_PAD)
TAIL_PAD = 8

#: matrix keys whose output must be bit-identical to the O0 reference
MUST_MATCH = ("o2", "o3", "o3-coarse", "override", "pessimistic")


@dataclass
class OracleFinding:
    """One rule violation: the seed is a bug reproducer."""

    kind: str                  # "miscompile" | "unsound-optimism-uncaught"
    #                          # | "invalidation-hash" | "reference-failure"
    #                          # | "incremental-mismatch"
    config_key: str
    detail: str


@dataclass
class OracleResult:
    seed: int
    source: str
    reference_output: str = ""
    #: per-config outcome: "match" | "divergent" | "trapped"
    outcomes: Dict[str, str] = field(default_factory=dict)
    findings: List[OracleFinding] = field(default_factory=list)
    #: the optimistic run diverged and bisection explained it
    optimism_divergent: bool = False
    #: bisection result when the optimistic run diverged
    pessimistic_indices: List[int] = field(default_factory=list)
    unique_queries: int = 0
    compiles: int = 0
    tests_run: int = 0
    cache_hits: int = 0
    #: incremental differentials that fell back to a full compile
    #: (counted, not findings — falling back is always sound)
    incremental_fallbacks: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def base_config(seed: int, source: str, opt_level: int = 3,
                max_steps: int = 4_000_000) -> BenchmarkConfig:
    return BenchmarkConfig(name=f"fuzz-{seed}",
                           sources=[SourceFile("fuzz.c", source)],
                           opt_level=opt_level, max_steps=max_steps)


class DifferentialOracle:
    """Applies the config matrix to one program and classifies the outcome.

    A :class:`~repro.oraql.cache.VerdictCache` may be shared with the
    probing drivers this oracle spawns: the oracle seeds it with the
    optimistic run's verdict, so the driver's step 2 (the empty-sequence
    attempt) is a cache hit instead of a recompile."""

    def __init__(self, compiler: Optional[Compiler] = None,
                 verdict_cache: Optional[VerdictCache] = None,
                 opt_level: int = 3,
                 max_tests: int = 2_000,
                 strategies: Sequence[str] = ("chunked",)):
        self.compiler = compiler or Compiler()
        self.verdict_cache = verdict_cache
        self.opt_level = opt_level
        self.max_tests = max_tests
        #: probing strategies the bisection referee runs; the first is
        #: the primary (its pessimistic set is the reported answer),
        #: the rest are cross-checked against it per divergent case
        self.strategies = list(strategies) or ["chunked"]

    # -- single compile+run -------------------------------------------------
    def _run(self, result: OracleResult, config: BenchmarkConfig,
             **compile_kw):
        result.compiles += 1
        prog = self.compiler.compile(config, **compile_kw)
        return prog, prog.run()

    # -- the oracle ---------------------------------------------------------
    def check(self, seed: int, source: str,
              bisect_divergence: bool = True) -> OracleResult:
        result = OracleResult(seed=seed, source=source)
        cfg = base_config(seed, source, self.opt_level)

        # 0. the reference: O0 interpretation.  A failure here is a
        # generator bug (or frontend/VM crash) — a finding of its own.
        _, ref_run = self._run(result, dataclasses.replace(cfg, opt_level=0))
        if not ref_run.ok:
            result.outcomes["o0"] = "trapped"
            result.findings.append(OracleFinding(
                "reference-failure", "o0",
                f"O0 run failed: {ref_run.state} ({ref_run.error})"))
            return result
        result.outcomes["o0"] = "match"
        result.reference_output = ref_run.stdout

        def judge(key: str, run, must_match: bool = True) -> bool:
            if not run.ok:
                result.outcomes[key] = "trapped"
            elif run.stdout == result.reference_output:
                result.outcomes[key] = "match"
                return True
            else:
                result.outcomes[key] = "divergent"
            if must_match:
                detail = (f"{run.state}: {run.error}" if not run.ok else
                          _first_diff(result.reference_output, run.stdout))
                result.findings.append(
                    OracleFinding("miscompile", key, detail))
            return False

        # 1. the plain pipeline, O2 and O3
        judge("o2", self._run(result, dataclasses.replace(cfg, opt_level=2))[1])
        o3, o3_run = self._run(result, cfg)
        judge("o3", o3_run)

        # 2. fine vs. coarse invalidation: same behaviour, same bits
        coarse, coarse_run = self._run(result, cfg, invalidation="coarse")
        judge("o3-coarse", coarse_run)
        if coarse.exe_hash != o3.exe_hash:
            result.outcomes["o3-coarse"] = "divergent"
            result.findings.append(OracleFinding(
                "invalidation-hash", "o3-coarse",
                f"fine {o3.exe_hash[:12]} != coarse {coarse.exe_hash[:12]}"))

        # 3. override mode: chain forced pessimistic (§VIII)
        judge("override", self._run(result, cfg, suppress_chain=True)[1])

        # 4. ORAQL all-optimistic (the empty sequence); collect resume
        # state so step 7 can use it as an incremental baseline
        opt, opt_run = self._run(result, cfg, sequence=DecisionSequence(),
                                 oraql_enabled=True, collect_resume=True)
        result.unique_queries = opt.oraql.unique_queries
        opt_matches = judge("optimistic", opt_run, must_match=False)

        # 5. ORAQL all-pessimistic: zeros covering the whole stream
        n = opt.oraql.unique_queries + TAIL_PAD
        judge("pessimistic", self._run(
            result, cfg, sequence=DecisionSequence([0] * n),
            oraql_enabled=True)[1])

        # 6. an optimistic divergence must be caught by bisection
        if not opt_matches:
            result.optimism_divergent = True
            if bisect_divergence:
                self._bisect(result, cfg, opt)

        # 7. incremental recompilation against the all-optimistic
        # baseline must be bit-identical to a full compile
        self._check_incremental(result, cfg, opt)
        return result

    def _check_incremental(self, result: OracleResult,
                           cfg: BenchmarkConfig,
                           opt: CompiledProgram) -> None:
        """Incremental-vs-full differential: for representative decision
        deltas (all-pessimistic, flip-first, flip-last) the spliced/
        resumed compile must reproduce the full compile bit for bit —
        executable hash, per-function hashes, the pessimistic record
        set, and the unique-query index space."""
        nq = opt.oraql.unique_queries
        n = nq + TAIL_PAD
        variants = [("all-pessimistic", [0] * n)]
        if nq > 0:
            flip_first = [1] * n
            flip_first[0] = 0
            variants.append(("flip-first", flip_first))
            flip_last = [1] * n
            flip_last[nq - 1] = 0
            variants.append(("flip-last", flip_last))
        ok = True
        for label, bits in variants:
            result.compiles += 2
            inc = self.compiler.compile(
                cfg, sequence=DecisionSequence(list(bits)),
                oraql_enabled=True, baseline=opt)
            full = self.compiler.compile(
                cfg, sequence=DecisionSequence(list(bits)),
                oraql_enabled=True)
            result.incremental_fallbacks += inc.incremental is None
            for what, a, b in (
                    ("exe_hash", inc.exe_hash, full.exe_hash),
                    ("fn_hashes", inc.fn_hashes, full.fn_hashes),
                    ("unique_queries", inc.oraql.unique_queries,
                     full.oraql.unique_queries),
                    ("records", _record_space(inc), _record_space(full)),
                    ("pessimistic", _pessimistic_set(inc),
                     _pessimistic_set(full))):
                if a != b:
                    ok = False
                    result.findings.append(OracleFinding(
                        "incremental-mismatch", f"incremental-{label}",
                        f"{what}: incremental {_short(a)} != full "
                        f"{_short(b)}"))
        result.outcomes["incremental"] = "match" if ok else "divergent"

    def _bisect(self, result: OracleResult, cfg: BenchmarkConfig,
                opt: CompiledProgram) -> None:
        probe_cfg = dataclasses.replace(
            cfg, reference_outputs=[result.reference_output])
        if self.verdict_cache is not None:
            # seed the cache with the verdict we already know so the
            # driver's empty-sequence attempt does not recompile
            fp = config_fingerprint(probe_cfg)
            self.verdict_cache.put(VerdictCache.key(fp, opt.exe_hash), False)
        driver = ProbingDriver(probe_cfg, compiler=self.compiler,
                               strategy=self.strategies[0],
                               max_tests=self.max_tests,
                               verdict_cache=self.verdict_cache)
        try:
            report: ProbingReport = driver.run()
        except Exception as e:  # driver blow-up = uncaught divergence
            result.findings.append(OracleFinding(
                "unsound-optimism-uncaught", "optimistic",
                f"probing driver failed: {e}"))
            return
        result.tests_run += report.tests_run
        result.cache_hits += report.cache_hits
        result.compiles += report.compiles
        if report.fully_optimistic or not report.pessimistic_indices \
                or report.budget_exhausted:
            result.findings.append(OracleFinding(
                "unsound-optimism-uncaught", "optimistic",
                f"divergent run but bisection reported "
                f"fully_optimistic={report.fully_optimistic} "
                f"pessimistic={report.pessimistic_indices} "
                f"budget_exhausted={report.budget_exhausted}"))
            return
        result.pessimistic_indices = list(report.pessimistic_indices)
        self._cross_check_strategies(result, probe_cfg, report)

    #: strategies that share the chunked skeleton and must therefore
    #: land on the primary's exact pessimistic set; frequency explores a
    #: different search space and may legally pin a *different*
    #: locally-maximal set, so it is held to validity, not equality
    EXACT_STRATEGIES = frozenset({"chunked", "provenance-prior", "mcts"})

    def _cross_check_strategies(self, result: OracleResult,
                                probe_cfg: BenchmarkConfig,
                                primary: ProbingReport) -> None:
        """Re-bisect the divergence with every extra registered
        strategy: each must terminate on a verified non-empty
        pessimistic set, and the chunked-skeleton strategies must
        reproduce the primary's set bit for bit."""
        for strategy in self.strategies[1:]:
            key = f"strategy-{strategy}"
            try:
                rep = ProbingDriver(probe_cfg, compiler=self.compiler,
                                    strategy=strategy,
                                    max_tests=self.max_tests,
                                    verdict_cache=self.verdict_cache).run()
            except Exception as e:
                result.findings.append(OracleFinding(
                    "strategy-mismatch", key, f"driver failed: {e}"))
                continue
            result.tests_run += rep.tests_run
            result.cache_hits += rep.cache_hits
            result.compiles += rep.compiles
            if rep.fully_optimistic or not rep.pessimistic_indices \
                    or rep.budget_exhausted:
                result.findings.append(OracleFinding(
                    "strategy-mismatch", key,
                    f"divergent run but {strategy} reported "
                    f"fully_optimistic={rep.fully_optimistic} "
                    f"pessimistic={rep.pessimistic_indices} "
                    f"budget_exhausted={rep.budget_exhausted}"))
                continue
            exact = (strategy in self.EXACT_STRATEGIES
                     and self.strategies[0] in self.EXACT_STRATEGIES)
            if exact and rep.pessimistic_indices \
                    != primary.pessimistic_indices:
                result.findings.append(OracleFinding(
                    "strategy-mismatch", key,
                    f"{strategy} pinned {rep.pessimistic_indices}, "
                    f"{self.strategies[0]} pinned "
                    f"{primary.pessimistic_indices}"))
                continue
            result.outcomes[key] = (
                "match" if rep.pessimistic_indices
                == primary.pessimistic_indices else "valid")


def _record_space(prog: CompiledProgram):
    """The unique-query index space: every record's identity."""
    return sorted((r.index, r.optimistic, r.scope, r.issuing_pass,
                   r.ordinal) for r in prog.oraql.records)


def _pessimistic_set(prog: CompiledProgram):
    return sorted(r.index for r in prog.oraql.records if not r.optimistic)


def _short(v) -> str:
    s = repr(v)
    return s if len(s) <= 120 else s[:117] + "..."


def _first_diff(a: str, b: str) -> str:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            lo = max(0, i - 30)
            return (f"first diff at byte {i}: "
                    f"{a[lo:i + 30]!r} vs {b[lo:i + 30]!r}")
    return f"length {len(a)} vs {len(b)}"
