"""The regression corpus: minimized reproducers under ``fuzz/corpus/``.

Every reducer output the campaign decides to keep is written as a pair
of files — ``<name>.c`` (the rendered minimal MiniC program, runnable by
hand via a ``BenchmarkConfig``) and ``<name>.json`` (metadata: the seed,
the finding kind, the config key that diverged, sizes before/after
reduction).  ``tests/test_fuzz_corpus.py`` auto-collects the directory
and replays every entry through the differential oracle on each tier-1
pytest run, so a fixed bug stays fixed and a caught hazard stays caught.

Entry kinds
-----------
``optimism-hazard``
    the optimistic build diverges from O0 *by design* (a genuinely
    dangerous no-alias answer); regression = the probing driver still
    catches it and the pessimistic build still matches O0.
``miscompile`` / ``invalidation-hash`` / ``reference-failure``
    a genuine pipeline/VM bug, added together with its fix; regression =
    the whole matrix agrees with O0 again.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import List, Optional

#: default corpus location, relative to the repository root
DEFAULT_CORPUS_DIR = os.path.join("fuzz", "corpus")


@dataclass
class CorpusEntry:
    name: str
    seed: int
    kind: str                  # "optimism-hazard" | "miscompile" | ...
    config_key: str            # matrix key that diverged
    detail: str = ""
    hazard_calls: List[str] = field(default_factory=list)
    original_size: int = 0
    reduced_size: int = 0
    reduction_trials: int = 0
    source: str = ""           # filled on load; stored in the .c file

    def meta(self) -> dict:
        d = asdict(self)
        d.pop("source")
        return d


def entry_name(kind: str, seed: int) -> str:
    return f"{kind.replace('_', '-')}-{seed:06d}"


def write_entry(entry: CorpusEntry,
                corpus_dir: str = DEFAULT_CORPUS_DIR) -> str:
    """Persist one minimized reproducer; returns the ``.c`` path."""
    os.makedirs(corpus_dir, exist_ok=True)
    c_path = os.path.join(corpus_dir, entry.name + ".c")
    meta_path = os.path.join(corpus_dir, entry.name + ".json")
    with open(c_path, "w") as f:
        f.write(entry.source)
    with open(meta_path, "w") as f:
        json.dump(entry.meta(), f, indent=2, sort_keys=True)
        f.write("\n")
    return c_path


def load_corpus(corpus_dir: str = DEFAULT_CORPUS_DIR) -> List[CorpusEntry]:
    """Read every ``.c``/``.json`` pair; silently empty when missing."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(corpus_dir):
        return entries
    for fname in sorted(os.listdir(corpus_dir)):
        if not fname.endswith(".json"):
            continue
        meta_path = os.path.join(corpus_dir, fname)
        c_path = meta_path[:-len(".json")] + ".c"
        if not os.path.exists(c_path):
            continue
        with open(meta_path) as f:
            meta = json.load(f)
        with open(c_path) as f:
            source = f.read()
        entries.append(CorpusEntry(source=source, **meta))
    return entries


def find_repo_corpus() -> Optional[str]:
    """The checked-in corpus directory, located relative to this file
    (``src/repro/fuzz/corpus.py`` → ``<root>/fuzz/corpus``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    path = os.path.join(root, "fuzz", "corpus")
    return path if os.path.isdir(path) else None
