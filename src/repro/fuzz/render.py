"""MiniC unparser and AST sizing for the fuzzing subsystem.

The generator and the reducer both work at the frontend-AST level
(``repro.frontend.ast_nodes``); the compiler's entry point is source
text, so every candidate program is rendered back to MiniC before it is
compiled.  Rendered programs must re-parse to an equivalent AST — the
round-trip ``parse(render(unit))`` is pinned by ``tests/test_fuzz_generator.py``.

``ast_size`` counts *structural* nodes — functions, globals, structs,
and statements — which is the granularity the delta-debugging reducer
operates at (it removes statements and functions, never sub-expression
fragments), and the unit in which corpus-entry sizes are reported.
"""

from __future__ import annotations

from typing import List

from ..frontend.ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    GlobalDecl,
    Ident,
    If,
    Index,
    IntLit,
    Member,
    Param,
    Return,
    SizeofExpr,
    Stmt,
    StrLit,
    StructDef,
    Ternary,
    TranslationUnit,
    Unary,
    While,
)

INDENT = "  "


# -- types -------------------------------------------------------------------

def render_type(ty: CType) -> str:
    """The declaration-specifier part of a type (array dims are rendered
    at the declarator, see :func:`_declarator`)."""
    s = ty.base
    if ty.const:
        s = "const " + s
    s += "*" * ty.pointers
    if ty.restrict:
        s += " restrict"
    return s


def _declarator(ty: CType, name: str) -> str:
    s = f"{render_type(ty)} {name}"
    for d in ty.array_dims:
        s += f"[{d}]"
    return s


# -- expressions -------------------------------------------------------------

#: binding strength used to decide where parentheses are required; the
#: renderer is deliberately generous with parentheses inside binary
#: operands (correctness over prettiness)

def _float_text(v: float) -> str:
    # keep a decimal point so the lexer sees a float literal
    text = repr(float(v))
    if "e" not in text and "." not in text and "inf" not in text \
            and "nan" not in text:
        text += ".0"
    return text


def render_expr(e: Expr) -> str:
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, FloatLit):
        return _float_text(e.value)
    if isinstance(e, StrLit):
        return '"' + e.value.replace("\\", "\\\\").replace('"', '\\"') \
            .replace("\n", "\\n").replace("\t", "\\t") + '"'
    if isinstance(e, Ident):
        return e.name
    if isinstance(e, Unary):
        if e.op in ("p++", "p--"):
            return f"({render_expr(e.operand)}){e.op[1:]}"
        return f"{e.op}({render_expr(e.operand)})"
    if isinstance(e, Binary):
        return f"({render_expr(e.lhs)} {e.op} {render_expr(e.rhs)})"
    if isinstance(e, Assign):
        return f"{render_expr(e.target)} {e.op} {render_expr(e.value)}"
    if isinstance(e, Ternary):
        return (f"(({render_expr(e.cond)}) ? ({render_expr(e.then)}) "
                f": ({render_expr(e.other)}))")
    if isinstance(e, Call):
        args = ", ".join(render_expr(a) for a in e.args)
        return f"{e.callee}({args})"
    if isinstance(e, Index):
        return f"{render_expr(e.base)}[{render_expr(e.index)}]"
    if isinstance(e, Member):
        return f"{render_expr(e.base)}{'->' if e.arrow else '.'}{e.name}"
    if isinstance(e, CastExpr):
        return f"(({render_type(e.type)})({render_expr(e.value)}))"
    if isinstance(e, SizeofExpr):
        return f"sizeof({render_type(e.type)})"
    raise TypeError(f"unrenderable expression node: {e!r}")


# -- statements --------------------------------------------------------------

def _render_stmt(s: Stmt, out: List[str], depth: int) -> None:
    pad = INDENT * depth
    if isinstance(s, ExprStmt):
        out.append(f"{pad}{render_expr(s.expr)};")
    elif isinstance(s, DeclStmt):
        line = f"{pad}{_declarator(s.type, s.name)}"
        if s.init is not None:
            line += f" = {render_expr(s.init)}"
        elif s.init_list is not None:
            line += " = {" + ", ".join(
                render_expr(e) for e in s.init_list) + "}"
        out.append(line + ";")
    elif isinstance(s, Block):
        out.append(f"{pad}{{")
        for inner in s.statements:
            _render_stmt(inner, out, depth + 1)
        out.append(f"{pad}}}")
    elif isinstance(s, If):
        out.append(f"{pad}if ({render_expr(s.cond)})")
        _render_braced(s.then, out, depth)
        if s.other is not None:
            out.append(f"{pad}else")
            _render_braced(s.other, out, depth)
    elif isinstance(s, While):
        out.append(f"{pad}while ({render_expr(s.cond)})")
        _render_braced(s.body, out, depth)
    elif isinstance(s, For):
        if s.omp_parallel:
            out.append(f"{pad}#pragma omp parallel for")
        init = ""
        if isinstance(s.init, DeclStmt):
            init = f"{_declarator(s.init.type, s.init.name)}"
            if s.init.init is not None:
                init += f" = {render_expr(s.init.init)}"
        elif isinstance(s.init, ExprStmt):
            init = render_expr(s.init.expr)
        cond = render_expr(s.cond) if s.cond is not None else ""
        step = render_expr(s.step) if s.step is not None else ""
        out.append(f"{pad}for ({init}; {cond}; {step})")
        _render_braced(s.body, out, depth)
    elif isinstance(s, Return):
        if s.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {render_expr(s.value)};")
    elif isinstance(s, Break):
        out.append(f"{pad}break;")
    elif isinstance(s, Continue):
        out.append(f"{pad}continue;")
    else:
        raise TypeError(f"unrenderable statement node: {s!r}")


def _render_braced(s: Stmt, out: List[str], depth: int) -> None:
    """Render a loop/if body, always as a braced block."""
    pad = INDENT * depth
    if isinstance(s, Block):
        _render_stmt(s, out, depth)
    else:
        out.append(f"{pad}{{")
        _render_stmt(s, out, depth + 1)
        out.append(f"{pad}}}")


# -- top level ---------------------------------------------------------------

def render_unit(unit: TranslationUnit) -> str:
    out: List[str] = []
    for st in unit.structs:
        out.append(f"struct {st.name} {{")
        for f in st.fields:
            out.append(f"{INDENT}{_declarator(f.type, f.name)};")
        out.append("};")
        out.append("")
    for g in unit.globals:
        line = _declarator(g.type, g.name)
        if g.init is not None:
            line += f" = {render_expr(g.init)}"
        elif g.init_list is not None:
            line += " = {" + ", ".join(
                render_expr(e) for e in g.init_list) + "}"
        out.append(line + ";")
    if unit.globals:
        out.append("")
    for fn in unit.functions:
        params = ", ".join(_declarator(p.type, p.name) for p in fn.params)
        header = f"{render_type(fn.ret)} {fn.name}({params})"
        if fn.is_kernel:
            header = "__global__ " + header
        if fn.body is None:
            out.append(header + ";")
            continue
        out.append(header)
        _render_stmt(fn.body, out, 0)
        out.append("")
    return "\n".join(out) + "\n"


# -- sizing ------------------------------------------------------------------

def _stmt_count(s: Stmt) -> int:
    if isinstance(s, Block):
        return 1 + sum(_stmt_count(inner) for inner in s.statements)
    if isinstance(s, If):
        n = 1 + _stmt_count(s.then)
        if s.other is not None:
            n += _stmt_count(s.other)
        return n
    if isinstance(s, While):
        return 1 + _stmt_count(s.body)
    if isinstance(s, For):
        n = 1 + _stmt_count(s.body)
        if s.init is not None:
            n += _stmt_count(s.init)
        return n
    return 1


def ast_size(unit: TranslationUnit) -> int:
    """Structural node count: functions + globals + structs + statements.

    This is the reducer's unit of work (expressions sit below its
    operation granularity) and the size quoted for corpus entries."""
    n = len(unit.structs) + len(unit.globals)
    for fn in unit.functions:
        n += 1
        if fn.body is not None:
            n += _stmt_count(fn.body) - 1  # the body block is the function
    return n
