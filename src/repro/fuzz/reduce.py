"""Delta-debugging test-case reducer.

Shrinks a failing generated program to a minimal reproducer while an
*interestingness predicate* (e.g. "the optimistic build still diverges
from O0", see :mod:`repro.fuzz.campaign`) keeps holding.  The reducer
operates at the same structural granularity :func:`repro.fuzz.render.ast_size`
counts — whole statements and whole functions — with five operations:

1. drop helper functions that are no longer referenced;
2. ddmin over every statement list (contiguous chunks, halving
   granularity — Zeller's classic algorithm);
3. hoist the body of a ``for``/``while``/``if`` (or the ``else`` body)
   in place of the construct (removes the control structure but keeps
   its effects as a candidate);
4. drop ``else`` branches;
5. zero out ``printf`` arguments that do not carry the divergence, so
   the def-use chains feeding them become removable.

Every candidate is checked through the predicate on a deep copy; the
predicate is expected to catch compile errors itself (the campaign's
predicates treat *any* exception as "not interesting").  Candidates are
deduplicated by rendered source, so re-testing the same program twice
never burns a trial.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Set

from ..frontend.ast_nodes import (
    Assign,
    Binary,
    Block,
    Call,
    CastExpr,
    Expr,
    ExprStmt,
    For,
    DeclStmt,
    FunctionDef,
    If,
    Index,
    Member,
    Return,
    Stmt,
    Ternary,
    TranslationUnit,
    Unary,
    While,
)
from .render import ast_size, render_unit


@dataclass
class ReductionResult:
    unit: TranslationUnit
    source: str
    initial_size: int
    final_size: int
    trials: int
    rounds: int


# -- AST walking --------------------------------------------------------------

def _sub_exprs(e: Expr) -> Iterator[Expr]:
    if isinstance(e, Unary) and e.operand is not None:
        yield e.operand
    elif isinstance(e, Binary):
        yield e.lhs
        yield e.rhs
    elif isinstance(e, Assign):
        yield e.target
        yield e.value
    elif isinstance(e, Ternary):
        yield e.cond
        yield e.then
        yield e.other
    elif isinstance(e, Call):
        yield from e.args
    elif isinstance(e, Index):
        yield e.base
        yield e.index
    elif isinstance(e, Member):
        yield e.base
    elif isinstance(e, CastExpr):
        yield e.value


def _walk_exprs(e: Optional[Expr]) -> Iterator[Expr]:
    if e is None:
        return
    yield e
    for sub in _sub_exprs(e):
        yield from _walk_exprs(sub)


def _stmt_exprs(s: Stmt) -> Iterator[Expr]:
    if isinstance(s, ExprStmt):
        yield from _walk_exprs(s.expr)
    elif isinstance(s, DeclStmt):
        yield from _walk_exprs(s.init)
        for e in s.init_list or ():
            yield from _walk_exprs(e)
    elif isinstance(s, Block):
        for inner in s.statements:
            yield from _stmt_exprs(inner)
    elif isinstance(s, If):
        yield from _walk_exprs(s.cond)
        yield from _stmt_exprs(s.then)
        if s.other is not None:
            yield from _stmt_exprs(s.other)
    elif isinstance(s, While):
        yield from _walk_exprs(s.cond)
        yield from _stmt_exprs(s.body)
    elif isinstance(s, For):
        if s.init is not None:
            yield from _stmt_exprs(s.init)
        yield from _walk_exprs(s.cond)
        yield from _walk_exprs(s.step)
        yield from _stmt_exprs(s.body)
    elif isinstance(s, Return):
        yield from _walk_exprs(s.value)


def _called_names(unit: TranslationUnit) -> Set[str]:
    names: Set[str] = set()
    for fn in unit.functions:
        if fn.body is not None:
            for e in _stmt_exprs(fn.body):
                if isinstance(e, Call):
                    names.add(e.callee)
    return names


def _blocks_of(s: Stmt) -> Iterator[Block]:
    """Every statement list nested under ``s`` (including ``s`` itself)."""
    if isinstance(s, Block):
        yield s
        for inner in s.statements:
            yield from _blocks_of(inner)
    elif isinstance(s, If):
        yield from _blocks_of(s.then)
        if s.other is not None:
            yield from _blocks_of(s.other)
    elif isinstance(s, (While, For)):
        yield from _blocks_of(s.body)


def _all_blocks(unit: TranslationUnit) -> List[Block]:
    blocks: List[Block] = []
    for fn in unit.functions:
        if fn.body is not None:
            blocks.extend(_blocks_of(fn.body))
    return blocks


# -- the reducer --------------------------------------------------------------

class _Oracle:
    """Trial accounting + source-level dedup around the predicate."""

    def __init__(self, predicate: Callable[[TranslationUnit], bool],
                 max_trials: int):
        self.predicate = predicate
        self.max_trials = max_trials
        self.trials = 0
        self._seen: Set[str] = set()

    def exhausted(self) -> bool:
        return self.trials >= self.max_trials

    def interesting(self, unit: TranslationUnit) -> bool:
        if self.exhausted():
            return False
        try:
            digest = hashlib.sha256(render_unit(unit).encode()).hexdigest()
        except Exception:
            return False
        if digest in self._seen:
            return False
        self._seen.add(digest)
        self.trials += 1
        try:
            return bool(self.predicate(unit))
        except Exception:
            return False


def _ddmin_block(unit: TranslationUnit, block: Block,
                 oracle: _Oracle) -> bool:
    """Minimize one statement list in place; True if anything shrank."""
    shrunk = False
    chunk = max(1, len(block.statements) // 2)
    while chunk >= 1 and not oracle.exhausted():
        i = 0
        progress = False
        while i < len(block.statements):
            saved = block.statements
            candidate = saved[:i] + saved[i + chunk:]
            if len(candidate) == len(saved):
                break
            block.statements = candidate
            if oracle.interesting(unit):
                shrunk = progress = True
                # keep the removal; stay at the same position
            else:
                block.statements = saved
                i += chunk
        if not progress:
            chunk //= 2
    return shrunk


def _drop_unused_functions(unit: TranslationUnit, oracle: _Oracle) -> bool:
    shrunk = False
    for fn in list(unit.functions):
        if fn.name == "main":
            continue
        if fn.name in _called_names(unit):
            continue
        saved = list(unit.functions)
        unit.functions = [f for f in unit.functions if f is not fn]
        if oracle.interesting(unit):
            shrunk = True
        else:
            unit.functions = saved
    return shrunk


def _hoist_structures(unit: TranslationUnit, oracle: _Oracle) -> bool:
    """Try replacing each loop/if with its body, and dropping elses."""
    def as_stmts(body: Stmt) -> List[Stmt]:
        return list(body.statements) if isinstance(body, Block) else [body]

    shrunk = False
    for block in _all_blocks(unit):
        i = 0
        while i < len(block.statements):
            s = block.statements[i]
            replacements: List[List[Stmt]] = []
            if isinstance(s, (While, For)):
                replacements.append(as_stmts(s.body))
            elif isinstance(s, If):
                if s.other is not None:
                    saved_other = s.other
                    s.other = None
                    if oracle.interesting(unit):
                        shrunk = True
                    else:
                        s.other = saved_other
                replacements.append(as_stmts(s.then))
                if s.other is not None:
                    # the interesting behaviour may live in the else
                    replacements.append(as_stmts(s.other))
            hoisted = False
            for replacement in replacements:
                saved = block.statements
                block.statements = saved[:i] + replacement + saved[i + 1:]
                if oracle.interesting(unit):
                    shrunk = hoisted = True
                    break  # re-examine the hoisted statements
                block.statements = saved
            if not hoisted:
                i += 1
    return shrunk


def _literalize_output_args(unit: TranslationUnit, oracle: _Oracle) -> bool:
    """Replace ``printf`` value arguments with ``0.0`` one at a time.

    The checksum epilogue's output arguments are what keep array and
    accumulator declarations alive; zeroing the arguments that do not
    carry the divergence lets the next ddmin round delete their whole
    def-use chains."""
    from ..frontend.ast_nodes import FloatLit, StrLit
    shrunk = False
    for fn in unit.functions:
        if fn.body is None:
            continue
        for block in _blocks_of(fn.body):
            for s in block.statements:
                if not (isinstance(s, ExprStmt) and isinstance(s.expr, Call)
                        and s.expr.callee == "printf"):
                    continue
                for i, arg in enumerate(s.expr.args):
                    if isinstance(arg, (StrLit, FloatLit)):
                        continue
                    s.expr.args[i] = FloatLit(value=0.0)
                    if oracle.interesting(unit):
                        shrunk = True
                    else:
                        s.expr.args[i] = arg
    return shrunk


def reduce_program(unit: TranslationUnit,
                   predicate: Callable[[TranslationUnit], bool],
                   max_trials: int = 600,
                   max_rounds: int = 12) -> ReductionResult:
    """Shrink ``unit`` while ``predicate`` holds; returns the smallest
    interesting program found.  ``unit`` itself is never mutated.

    The caller must ensure ``predicate(unit)`` is True on entry; the
    reducer asserts it (one trial) and returns the input unchanged when
    the assertion fails — a non-reproducing input is not reducible."""
    work = copy.deepcopy(unit)
    initial = ast_size(work)
    oracle = _Oracle(predicate, max_trials)
    if not oracle.interesting(work):
        return ReductionResult(work, render_unit(work), initial, initial,
                               oracle.trials, 0)
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        progress = False
        progress |= _drop_unused_functions(work, oracle)
        for block in _all_blocks(work):
            progress |= _ddmin_block(work, block, oracle)
        progress |= _hoist_structures(work, oracle)
        progress |= _literalize_output_args(work, oracle)
        if not progress or oracle.exhausted():
            break
    return ReductionResult(work, render_unit(work), initial, ast_size(work),
                           oracle.trials, rounds)
