"""``python -m repro.fuzz`` — the differential fuzzing CLI.

Examples::

    python -m repro.fuzz --seeds 500 --jobs 4
    python -m repro.fuzz --seeds 100 --self-test --jobs 4
    python -m repro.fuzz --seeds 10000 --jobs 8 --time-budget 1800 \\
        --cache-dir .fuzz-cache
    python -m repro.fuzz --seeds 50 --corpus-dir fuzz/corpus --self-test
    python -m repro.fuzz --chaos --chaos-injections 200 --jobs 4

Exit status is 0 when the campaign found no unexplained divergences
(and, under ``--self-test``, every injected-unsound sequence was caught
and shrunk), 1 otherwise.  Under ``--chaos`` the campaign instead
injects deterministic faults (compiler crashes, hangs, traps, session
kills, cache/journal truncation) into probing sessions and exits 0 only
when every fault was recovered from or reported with correct triage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .campaign import CampaignOptions, SeedResult, run_campaign


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the ORAQL pipeline: random "
                    "programs, a multi-config oracle (O0 interpretation "
                    "vs. full pipeline, fine vs. coarse invalidation, "
                    "pessimistic AA vs. ORAQL sequences), and a "
                    "delta-debugging reducer.")
    p.add_argument("--seeds", type=int, default=200, metavar="N",
                   help="number of seeds to fuzz (default 200)")
    p.add_argument("--seed-start", type=int, default=0, metavar="S",
                   help="first seed (campaigns are resumable by range)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes (1 = in-process)")
    p.add_argument("--time-budget", type=float, default=None, metavar="SEC",
                   help="wall-clock budget; the campaign reports partial "
                        "results when it runs out")
    p.add_argument("--self-test", action="store_true",
                   help="inject known-dangerous no-alias answers (hazard "
                        "templates) into every seed and require the "
                        "oracle to catch and the reducer to shrink them")
    p.add_argument("--hazard-rate", type=float, default=0.25,
                   metavar="P",
                   help="fraction of seeds biased towards overlapping "
                        "aliasing patterns (default 0.25)")
    p.add_argument("--opt-level", type=int, default=3, choices=[1, 2, 3],
                   help="optimization level under test (default 3)")
    p.add_argument("--no-reduce", action="store_true",
                   help="skip delta-debugging of findings")
    p.add_argument("--max-reduce-trials", type=int, default=600,
                   metavar="N")
    p.add_argument("--max-tests", type=int, default=2_000, metavar="N",
                   help="probing-driver test budget per bisection")
    p.add_argument("--strategies", metavar="S1,S2,...|all",
                   help="probing strategies for the bisection referee: "
                        "'all' for every registered strategy, or a "
                        "comma-separated list; the first is the primary "
                        "and the rest are cross-checked against it per "
                        "divergent case (default: chunked only)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="persistent verdict cache shared with the "
                        "probing drivers (same format as oraql "
                        "--cache-dir)")
    p.add_argument("--corpus-dir", metavar="DIR",
                   help="write minimized reproducers here "
                        "(fuzz/corpus is the checked-in regression set)")
    p.add_argument("--chaos", action="store_true",
                   help="run a fault-injection campaign instead of "
                        "differential fuzzing: seeded faults are planted "
                        "in probing sessions and every one must be "
                        "recovered or reported with correct triage")
    p.add_argument("--chaos-injections", type=int, default=64, metavar="N",
                   help="number of fault injections under --chaos "
                        "(default 64)")
    p.add_argument("--chaos-kinds", metavar="K1,K2,...",
                   help="comma-separated fault kinds to cycle through "
                        "under --chaos (default: all non-worker kinds)")
    p.add_argument("--quiet", "-q", action="store_true",
                   help="suppress per-seed progress lines")
    return p


def _run_chaos(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    from ..faults.chaos import (
        DEFAULT_CHAOS_KINDS,
        ChaosOptions,
        InjectionResult,
        run_chaos,
    )

    kinds = DEFAULT_CHAOS_KINDS
    if args.chaos_kinds:
        kinds = tuple(k.strip() for k in args.chaos_kinds.split(",")
                      if k.strip())
        unknown = sorted(set(kinds) - set(DEFAULT_CHAOS_KINDS))
        if unknown:
            parser.error(f"--chaos-kinds: unknown fault kind(s) "
                         f"{', '.join(unknown)} (choose from "
                         f"{', '.join(DEFAULT_CHAOS_KINDS)})")
    opts = ChaosOptions(injections=args.chaos_injections,
                        seed_start=args.seed_start, jobs=args.jobs,
                        kinds=kinds, time_budget=args.time_budget)

    done = 0

    def progress(r: InjectionResult) -> None:
        nonlocal done
        done += 1
        if args.quiet:
            return
        tag = r.outcome.upper() if not r.ok else r.outcome
        print(f"seed {r.seed:>6}: {done}/{opts.injections} "
              f"{r.kind}@{r.at} on {r.workload}/{r.strategy}: {tag} "
              f"({r.elapsed:.2f}s)", file=sys.stderr)

    report = run_chaos(opts, progress=progress)
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1 (got {args.seeds})")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1 (got {args.jobs})")
    if not (0.0 <= args.hazard_rate <= 1.0):
        parser.error("--hazard-rate must be within [0, 1]")
    if args.cache_dir and os.path.exists(args.cache_dir) \
            and not os.path.isdir(args.cache_dir):
        parser.error(f"--cache-dir is not a directory: {args.cache_dir}")
    if args.chaos_injections < 1:
        parser.error(f"--chaos-injections must be >= 1 "
                     f"(got {args.chaos_injections})")

    strategies = None
    if args.strategies:
        from ..oraql.strategies import strategy_names
        if args.strategies.strip() == "all":
            strategies = strategy_names()
        else:
            strategies = [s.strip() for s in args.strategies.split(",")
                          if s.strip()]
            unknown = sorted(set(strategies) - set(strategy_names()))
            if unknown:
                parser.error(f"--strategies: unknown strategy(ies) "
                             f"{', '.join(unknown)} (choose from "
                             f"{', '.join(strategy_names())})")

    if args.chaos:
        return _run_chaos(args, parser)

    opts = CampaignOptions(
        seeds=args.seeds, seed_start=args.seed_start, jobs=args.jobs,
        time_budget=args.time_budget, self_test=args.self_test,
        hazard_rate=args.hazard_rate, opt_level=args.opt_level,
        reduce=not args.no_reduce,
        max_reduce_trials=args.max_reduce_trials,
        max_tests=args.max_tests, cache_dir=args.cache_dir,
        corpus_dir=args.corpus_dir, strategies=strategies)

    done = 0

    def progress(r: SeedResult) -> None:
        nonlocal done
        done += 1
        if args.quiet:
            return
        flags = []
        if r.optimism_divergent:
            flags.append("caught" if r.optimism_caught else "UNCAUGHT")
        if r.reduced_size:
            flags.append(f"reduced {r.original_size}->{r.reduced_size}")
        if not r.clean:
            flags.append("FINDING: " + ", ".join(
                f["kind"] for f in r.findings))
        tag = f" [{'; '.join(flags)}]" if flags else ""
        print(f"seed {r.seed:>6}: {done}/{args.seeds}"
              f" ({r.elapsed:.2f}s){tag}", file=sys.stderr)

    report = run_campaign(opts, progress=progress)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
