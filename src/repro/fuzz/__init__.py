"""repro.fuzz — differential fuzzing subsystem.

A randomized differential harness that turns the compilation pipeline
into its own oracle (SQLancer-style): a seeded grammar-aware program
generator (:mod:`.generator`), a multi-configuration differential
oracle (:mod:`.oracle`), a delta-debugging test-case reducer
(:mod:`.reduce`), a persistent regression corpus (:mod:`.corpus`), and
a campaign runner with seed fan-out and a time budget
(:mod:`.campaign`), driven by ``python -m repro.fuzz``.
"""

from .campaign import CampaignOptions, CampaignReport, run_campaign
from .corpus import CorpusEntry, load_corpus, write_entry
from .generator import (
    GeneratedProgram,
    GeneratorOptions,
    ProgramGenerator,
    generate_program,
)
from .oracle import DifferentialOracle, OracleFinding, OracleResult
from .reduce import reduce_program
from .render import ast_size, render_unit

__all__ = [name for name in dir() if not name.startswith("_")]
