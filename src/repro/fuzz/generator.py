"""Seeded, grammar-aware random MiniC program generator.

Every generated program is

* **terminating** — every loop is counted with a constant trip count
  (``for`` over literal bounds, ``while`` over an explicit counter), so
  no decision sequence, optimization, or scheduling choice can make it
  run forever;
* **in-bounds by construction** — array accesses are affine in the loop
  induction variable and the generator solves the bounds inequality when
  it picks offsets and window lengths, so even a miscompiled index
  computation is the *compiler's* fault, never the program's;
* **deterministic** — output is produced by a single checksum epilogue
  after all parallel regions have joined, and OpenMP bodies only touch
  ``a[i]`` for their own ``i``, so any output difference between two
  builds is a compilation difference.

The aliasing surface — the point of the exercise — comes from helper
functions taking pointer parameters that ``main`` calls with window
arguments (``a + off``) that may or may not overlap.  *Hazard mode*
additionally includes one call from a curated template family
(accumulator-cell-in-window, scale-by-in-band-cell, shifted in-place
copy — the shapes behind XSBench's real pessimistic queries) whose
observable behaviour provably changes when its may-alias queries are
answered ``no-alias``, giving the campaign's self-test a known-dangerous
injection point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..frontend.ast_nodes import (
    Assign,
    Binary,
    Block,
    Call,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FunctionDef,
    Ident,
    If,
    Index,
    IntLit,
    Param,
    Return,
    Stmt,
    StrLit,
    TranslationUnit,
    Unary,
    While,
)
from .render import ast_size, render_unit

INT = CType("int")
DOUBLE = CType("double")
PDOUBLE = CType("double", pointers=1)


def _iv(n: int) -> IntLit:
    return IntLit(value=n)


def _fv(x: float) -> FloatLit:
    return FloatLit(value=float(x))


def _id(name: str) -> Ident:
    return Ident(name=name)


def _bin(op: str, lhs: Expr, rhs: Expr) -> Binary:
    return Binary(op=op, lhs=lhs, rhs=rhs)


def _idx(base: Expr, index: Expr) -> Index:
    return Index(base=base, index=index)


def _set(target: Expr, value: Expr) -> ExprStmt:
    return ExprStmt(expr=Assign(op="=", target=target, value=value))


def _count_for(var: str, lo: int, hi: int, body: List[Stmt],
               omp: bool = False) -> For:
    """``for (int var = lo; var < hi; var++) { body }`` — the only loop
    shape the generator emits, guaranteeing termination."""
    return For(
        init=DeclStmt(type=INT, name=var, init=_iv(lo)),
        cond=_bin("<", _id(var), _iv(hi)),
        step=Unary(op="p++", operand=_id(var)),
        body=Block(statements=body),
        omp_parallel=omp,
    )


@dataclass
class GeneratorOptions:
    """Knobs for one generated program."""

    #: bias call-site windows towards overlap and always include one
    #: known-divergent template call (the self-test's injection point)
    hazard: bool = False
    #: permit ``#pragma omp parallel for`` segments
    allow_omp: bool = True
    #: number of top-level body segments in ``main``
    min_segments: int = 2
    max_segments: int = 5
    #: number of double arrays in ``main``
    min_arrays: int = 2
    max_arrays: int = 3


@dataclass
class GeneratedProgram:
    seed: int
    unit: TranslationUnit
    source: str
    #: hazard template calls included (empty outside hazard mode)
    hazard_calls: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return ast_size(self.unit)


# -- hazard template family --------------------------------------------------
#
# Each template is (name, FunctionDef factory, call-site factory).  The
# call site receives the target array name and its size and must produce
# a genuinely-overlapping argument pair — the overlap is what turns the
# helper's may-alias queries into *dangerous* queries.

def _tmpl_accum(name: str) -> FunctionDef:
    """acc[0] sits inside the summed window: promoting ``acc[0]`` to a
    register across the loop (legal only under no-alias) reads stale
    values once the running total lands back inside ``x``."""
    body = Block(statements=[
        _set(_idx(_id("acc"), _iv(0)), _fv(0.0)),
        _count_for("i", 0, 0, [  # trip count patched at the call site
            _set(_idx(_id("acc"), _iv(0)),
                 _bin("+", _idx(_id("acc"), _iv(0)),
                      _idx(_id("x"), _id("i")))),
        ]),
    ])
    return FunctionDef(ret=CType("void"), name=name,
                       params=[Param(PDOUBLE, "x"), Param(PDOUBLE, "acc")],
                       body=body)


def _tmpl_scale(name: str) -> FunctionDef:
    """``s[0]`` looks loop-invariant under no-alias, but the loop writes
    through ``x`` into the cell ``s`` points at."""
    body = Block(statements=[
        _count_for("i", 0, 0, [
            _set(_idx(_id("x"), _id("i")),
                 _bin("+", _bin("*", _idx(_id("x"), _id("i")), _fv(0.5)),
                      _idx(_id("s"), _iv(0)))),
        ]),
    ])
    return FunctionDef(ret=CType("void"), name=name,
                       params=[Param(PDOUBLE, "x"), Param(PDOUBLE, "s")],
                       body=body)


def _tmpl_shift(name: str) -> FunctionDef:
    """In-place shifted copy: ``dst`` and ``src`` overlap at distance 1,
    a loop-carried read-after-write that vectorization breaks if the
    pointers are assumed not to alias."""
    body = Block(statements=[
        _count_for("i", 0, 0, [
            _set(_idx(_id("dst"), _id("i")),
                 _bin("+", _idx(_id("src"), _id("i")), _fv(1.0))),
        ]),
    ])
    return FunctionDef(ret=CType("void"), name=name,
                       params=[Param(PDOUBLE, "dst"), Param(PDOUBLE, "src")],
                       body=body)


def _patch_trip_count(fn: FunctionDef, n: int) -> None:
    """Fix the template's loop bound to the call-site window length."""
    for st in fn.body.statements:
        if isinstance(st, For):
            st.cond.rhs = _iv(n)


_HAZARD_TEMPLATES = {
    "accum_in_window": _tmpl_accum,
    "scale_in_band": _tmpl_scale,
    "shift_overlap": _tmpl_shift,
}


# -- the generator -----------------------------------------------------------

class ProgramGenerator:
    """One seeded program; all randomness flows from ``random.Random(seed)``."""

    def __init__(self, seed: int, options: Optional[GeneratorOptions] = None):
        self.seed = seed
        self.opts = options or GeneratorOptions()
        self.rng = random.Random(seed)
        self.arrays: List[Tuple[str, int]] = []   # (name, size)
        self.helpers: List[FunctionDef] = []
        self.hazard_calls: List[str] = []
        self._uniq = 0

    def _fresh(self, prefix: str) -> str:
        self._uniq += 1
        return f"{prefix}{self._uniq}"

    # -- expression helpers ------------------------------------------------
    def _const(self) -> FloatLit:
        """A contractive-ish constant: products through long statement
        chains stay finite."""
        return _fv(self.rng.choice(
            [-1.25, -0.75, -0.5, -0.25, 0.125, 0.25, 0.5, 0.75, 1.0, 1.5]))

    def _affine_of(self, var: str) -> Expr:
        """``var * c + d`` seed values for array initialization."""
        c = self.rng.choice([0.125, 0.25, 0.5, 0.75, 1.0])
        d = self.rng.choice([-2.0, -1.0, 0.0, 1.0, 3.0])
        return _bin("+", _bin("*", _id(var), _fv(c)), _fv(d))

    def _mix(self, *reads: Expr) -> Expr:
        """A random damped combination of the given reads."""
        expr: Expr = _bin("*", reads[0], self._const())
        for r in reads[1:]:
            op = self.rng.choice(["+", "-", "+", "*"])
            rhs = _bin("*", r, self._const()) if op != "*" else r
            expr = _bin(op, expr, rhs) if op != "*" \
                else _bin("+", _bin("*", expr, _fv(0.25)), rhs)
        return _bin("+", _bin("*", expr, _fv(0.5)), self._const())

    # -- helper functions ---------------------------------------------------
    def _make_elementwise_helper(self) -> FunctionDef:
        """``void hN(double* x, double* y, int n)`` mixing the two
        windows, optionally mutating ``x`` in place as well."""
        name = self._fresh("h")
        stmts: List[Stmt] = [
            _set(_idx(_id("y"), _id("i")),
                 self._mix(_idx(_id("x"), _id("i")),
                           _idx(_id("y"), _id("i")))),
        ]
        if self.rng.random() < 0.5:
            stmts.append(_set(_idx(_id("x"), _id("i")),
                              _bin("+", _bin("*", _idx(_id("x"), _id("i")),
                                             _fv(0.5)), self._const())))
        body = Block(statements=[_count_for("i", 0, 0, stmts)])
        fn = FunctionDef(ret=CType("void"), name=name,
                         params=[Param(PDOUBLE, "x"), Param(PDOUBLE, "y"),
                                 Param(INT, "n")],
                         body=body)
        # the loop bound is the n parameter, not a literal
        body.statements[0].cond.rhs = _id("n")
        return fn

    def _make_reduction_helper(self) -> FunctionDef:
        """``double rN(double* x, int n)`` returning a damped sum."""
        name = self._fresh("r")
        loop = _count_for("i", 0, 0, [
            _set(_id("t"), _bin("+", _bin("*", _id("t"), _fv(0.5)),
                                _idx(_id("x"), _id("i")))),
        ])
        loop.cond.rhs = _id("n")
        body = Block(statements=[
            DeclStmt(type=DOUBLE, name="t", init=_fv(0.0)),
            loop,
            Return(value=_id("t")),
        ])
        return FunctionDef(ret=DOUBLE, name=name,
                           params=[Param(PDOUBLE, "x"), Param(INT, "n")],
                           body=body)

    # -- main-body segments ---------------------------------------------------
    def _pick_array(self) -> Tuple[str, int]:
        return self.rng.choice(self.arrays)

    def _window(self, size: int, min_len: int = 2) -> Tuple[int, int]:
        """A random in-bounds (offset, length) window of an array."""
        length = self.rng.randint(min_len, max(min_len, size - 1))
        off = self.rng.randint(0, size - length)
        return off, length

    def _ptr_arg(self, name: str, off: int) -> Expr:
        return _id(name) if off == 0 else _bin("+", _id(name), _iv(off))

    def _seg_elementwise(self) -> List[Stmt]:
        """A loop updating a window of one array from a window of
        another (or the same) array, affine in-bounds indices."""
        (dst, dsz) = self._pick_array()
        (src, ssz) = self._pick_array()
        length = self.rng.randint(2, min(dsz, ssz) - 1)
        doff = self.rng.randint(0, dsz - length)
        soff = self.rng.randint(0, ssz - length)
        i = self._fresh("i")
        read = _idx(_id(src), _bin("+", _id(i), _iv(soff))) \
            if soff else _idx(_id(src), _id(i))
        write = _idx(_id(dst), _bin("+", _id(i), _iv(doff))) \
            if doff else _idx(_id(dst), _id(i))
        return [_count_for(i, 0, length, [_set(write, self._mix(read, write))])]

    def _seg_stencil(self) -> List[Stmt]:
        """In-place sequentially-dependent sweep ``a[i] <- f(a[i], a[i-1])``."""
        (arr, size) = self._pick_array()
        i = self._fresh("i")
        return [_count_for(i, 1, size, [
            _set(_idx(_id(arr), _id(i)),
                 self._mix(_idx(_id(arr), _id(i)),
                           _idx(_id(arr), _bin("-", _id(i), _iv(1))))),
        ])]

    def _seg_branch(self) -> List[Stmt]:
        """A data-dependent branch over a scalar accumulator."""
        (arr, size) = self._pick_array()
        k = self.rng.randint(0, size - 1)
        cell = _idx(_id(arr), _iv(k))
        then = Block(statements=[_set(cell, _bin("*", cell, _fv(0.5)))])
        other = Block(statements=[
            _set(cell, _bin("+", cell, self._const()))])
        cond = _bin(self.rng.choice(["<", ">", "<=", ">="]),
                    _idx(_id(arr), _iv(self.rng.randint(0, size - 1))),
                    self._const())
        return [If(cond=cond, then=then, other=other)]

    def _seg_helper_call(self) -> List[Stmt]:
        """Call an elementwise or reduction helper on windows that may
        overlap (always overlapping in hazard mode half the time)."""
        if not self.helpers or self.rng.random() < 0.4:
            self.helpers.append(
                self._make_reduction_helper() if self.rng.random() < 0.3
                else self._make_elementwise_helper())
        fn = self.rng.choice(self.helpers)
        (arr, size) = self._pick_array()
        if len(fn.params) == 2 and fn.params[1].type == INT:  # reduction
            off, length = self._window(size)
            call = Call(callee=fn.name,
                        args=[self._ptr_arg(arr, off), _iv(length)])
            cell = _idx(_id(arr), _iv(self.rng.randint(0, size - 1)))
            return [_set(cell, _bin("+", _bin("*", cell, _fv(0.5)), call))]
        # elementwise: choose two windows over the same or different arrays
        overlap = self.rng.random() < (0.7 if self.opts.hazard else 0.35)
        xoff, length = self._window(size, min_len=3)
        if overlap:
            yoff = min(size - length,
                       max(0, xoff + self.rng.choice([-2, -1, 1, 2])))
            yarr = arr
        else:
            (yarr, ysz) = self._pick_array()
            length = min(length, ysz)
            yoff = self.rng.randint(0, ysz - length)
        return [ExprStmt(expr=Call(callee=fn.name, args=[
            self._ptr_arg(arr, xoff), self._ptr_arg(yarr, yoff),
            _iv(length)]))]

    def _seg_omp(self) -> List[Stmt]:
        """A parallel loop where iteration ``i`` touches only index
        ``i`` — deterministic under any chunking."""
        (arr, size) = self._pick_array()
        i = self._fresh("i")
        body = _set(_idx(_id(arr), _id(i)),
                    _bin("+", _bin("*", _idx(_id(arr), _id(i)), self._const()),
                         _bin("*", _id(i), _fv(0.125))))
        return [_count_for(i, 0, size, [body], omp=True)]

    def _seg_ptr_view(self) -> List[Stmt]:
        """A named pointer into the middle of an array, walked by a
        bounded while loop."""
        (arr, size) = self._pick_array()
        off, length = self._window(size)
        p = self._fresh("p")
        t = self._fresh("t")
        walk = Block(statements=[
            _set(_idx(_id(p), _id(t)),
                 _bin("+", _bin("*", _idx(_id(p), _id(t)), _fv(0.75)),
                      self._const())),
            _set(_id(t), _bin("+", _id(t), _iv(1))),
        ])
        return [
            DeclStmt(type=PDOUBLE, name=p,
                     init=self._ptr_arg(arr, off)),
            DeclStmt(type=INT, name=t, init=_iv(0)),
            While(cond=_bin("<", _id(t), _iv(length)), body=walk),
        ]

    def _seg_hazard_call(self) -> List[Stmt]:
        """One call from the curated known-divergent template family."""
        tname = self.rng.choice(sorted(_HAZARD_TEMPLATES))
        fname = self._fresh("hz")
        fn = _HAZARD_TEMPLATES[tname](fname)
        (arr, size) = self._pick_array()
        if tname == "accum_in_window":
            # sum x[0..n) into acc = &x[n-1]: the total lands in-window
            n = self.rng.randint(4, size - 1)
            _patch_trip_count(fn, n)
            args = [self._ptr_arg(arr, 0), self._ptr_arg(arr, n - 1)]
        elif tname == "scale_in_band":
            # s points at a cell the loop writes
            n = self.rng.randint(4, size - 1)
            _patch_trip_count(fn, n)
            args = [self._ptr_arg(arr, 0),
                    self._ptr_arg(arr, self.rng.randint(1, n - 1))]
        else:  # shift_overlap: dst = x+1 overlaps src = x
            n = self.rng.randint(4, size - 1)
            _patch_trip_count(fn, n)
            args = [self._ptr_arg(arr, 1), self._ptr_arg(arr, 0)]
        self.helpers.append(fn)
        self.hazard_calls.append(tname)
        return [ExprStmt(expr=Call(callee=fname, args=args))]

    # -- assembly -----------------------------------------------------------
    def generate(self) -> GeneratedProgram:
        opts = self.opts
        rng = self.rng
        n_arrays = rng.randint(opts.min_arrays, opts.max_arrays)
        main_stmts: List[Stmt] = []
        for a in range(n_arrays):
            name = f"a{a}"
            size = rng.randint(8, 20)
            self.arrays.append((name, size))
            main_stmts.append(DeclStmt(
                type=CType("double", array_dims=(size,)), name=name))
            i = self._fresh("i")
            main_stmts.append(_count_for(i, 0, size, [
                _set(_idx(_id(name), _id(i)), self._affine_of(i))]))

        segments = [self._seg_elementwise, self._seg_stencil,
                    self._seg_branch, self._seg_helper_call,
                    self._seg_helper_call, self._seg_ptr_view]
        if opts.allow_omp:
            segments.append(self._seg_omp)
        n_segs = rng.randint(opts.min_segments, opts.max_segments)
        for _ in range(n_segs):
            main_stmts.extend(rng.choice(segments)())
        if opts.hazard:
            # the self-test's injection point, at a random position after
            # initialization so surrounding segments interact with it
            pos = rng.randint(2 * n_arrays, len(main_stmts))
            haz = self._seg_hazard_call()
            main_stmts[pos:pos] = haz

        # checksum epilogue: one %.6f per array plus an alternating-sign
        # total, printed once after every region has joined
        chk_args: List[Expr] = []
        fmt = []
        for name, size in self.arrays:
            acc = self._fresh("c")
            i = self._fresh("i")
            main_stmts.append(DeclStmt(type=DOUBLE, name=acc, init=_fv(0.0)))
            main_stmts.append(_count_for(i, 0, size, [
                _set(_id(acc), _bin("+", _id(acc),
                                    _bin("*", _idx(_id(name), _id(i)),
                                         _fv(1.0))))]))
            fmt.append("%.6f")
            chk_args.append(_id(acc))
            fmt.append("%.6f")
            chk_args.append(_idx(_id(name), _iv(size - 1)))
        main_stmts.append(ExprStmt(expr=Call(
            callee="printf",
            args=[StrLit(value=" ".join(fmt) + "\n")] + chk_args)))
        main_stmts.append(Return(value=_iv(0)))

        main = FunctionDef(ret=INT, name="main", params=[],
                           body=Block(statements=main_stmts))
        unit = TranslationUnit(name=f"fuzz-{self.seed}",
                               functions=self.helpers + [main])
        return GeneratedProgram(self.seed, unit, render_unit(unit),
                                hazard_calls=list(self.hazard_calls))


def generate_program(seed: int,
                     options: Optional[GeneratorOptions] = None
                     ) -> GeneratedProgram:
    return ProgramGenerator(seed, options).generate()
