"""The probing service's line-delimited JSON wire protocol.

One JSON object per ``\\n``-terminated line, in both directions — the
same framing as every other durable stream in this repository (verdict
cache, session journal, trace JSONL), so the wire is greppable and
``nc -U socket`` is a usable debugging client.

Client → server message types (``"t"`` discriminator):

==========  ==============================================================
``hello``   open a session: ``{"t": "hello", "tenant": ..., "v": 1}``
``submit``  enqueue a job (see :data:`SUBMIT_FIELDS`); ``"stream": true``
            subscribes this connection to the job's progress events
``status``  one job's current state
``wait``    block until a job completes, then its ``result``
``jobs``    list every job the server knows about
``cancel``  best-effort cancel (pending jobs only; a job already running
            in a worker completes and is then marked cancelled)
``shutdown``  stop accepting jobs and exit after the reply
==========  ==============================================================

Server → client:

===========  =============================================================
``welcome``  hello reply: protocol version, server identity
``accepted`` submit reply: the assigned job id
``event``    one progress event: ``{"t": "event", "id": ..., "ev": R}``
             where ``R`` is a record in the **QueryTrace JSONL schema**
             (``meta``/``compile``/``done``; ``repro.trace`` reads it)
``status``   status/jobs reply
``result``   terminal job state: the serialized report, or the error
``error``    a structured refusal: ``code`` from :data:`ERROR_CODES`
``ok``       acknowledgement (cancel, shutdown)
===========  =============================================================

Any malformed line, unknown type, or quota refusal produces an
``error`` message on the same connection — never a dropped connection,
never a traceback on the wire.
"""

from __future__ import annotations

import json
from typing import Optional

PROTOCOL_VERSION = 1

#: structured refusal codes carried by ``error`` messages
ERROR_CODES = (
    "bad-request",        # unparseable line / missing fields / bad type
    "unsupported-version",
    "unknown-workload",
    "unknown-job",
    "duplicate-job",
    "quota-exceeded",
    "shutting-down",
    "job-failed",
)

#: fields a ``submit`` message may carry (everything else is rejected
#: as ``bad-request`` so client typos fail loudly, not silently)
SUBMIT_FIELDS = frozenset({
    "t", "id", "tenant", "kind", "workload", "config", "strategy",
    "max_tests", "incremental", "stream", "fault_plan",
    "significant_percent", "recover_percent", "max_measurements",
})


class ProtocolError(ValueError):
    """A line that cannot be understood as a protocol message."""


def encode(msg: dict) -> bytes:
    """One wire line (newline-terminated, UTF-8)."""
    return (json.dumps(msg, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


def decode(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    try:
        msg = json.loads(line.decode("utf-8", errors="replace"))
    except ValueError as e:
        raise ProtocolError(f"undecodable message line: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(msg).__name__}")
    t = msg.get("t")
    if not isinstance(t, str) or not t:
        raise ProtocolError("message carries no type discriminator 't'")
    return msg


# -- message constructors -----------------------------------------------------

def hello_msg(tenant: str = "default") -> dict:
    return {"t": "hello", "tenant": tenant, "v": PROTOCOL_VERSION}


def welcome_msg(server: str) -> dict:
    return {"t": "welcome", "v": PROTOCOL_VERSION, "server": server}


def error_msg(code: str, detail: str,
              job_id: Optional[str] = None) -> dict:
    assert code in ERROR_CODES, code
    msg = {"t": "error", "code": code, "detail": detail}
    if job_id is not None:
        msg["id"] = job_id
    return msg


def accepted_msg(job_id: str) -> dict:
    return {"t": "accepted", "id": job_id}


def event_msg(job_id: str, record: dict) -> dict:
    return {"t": "event", "id": job_id, "ev": record}


def status_msg(job_id: str, status: str, **extra) -> dict:
    return {"t": "status", "id": job_id, "status": status, **extra}


def result_msg(job_id: str, status: str, report: Optional[dict] = None,
               error: Optional[str] = None) -> dict:
    msg = {"t": "result", "id": job_id, "status": status}
    if report is not None:
        msg["report"] = report
    if error is not None:
        msg["error"] = error
    return msg


def ok_msg(**extra) -> dict:
    return {"t": "ok", **extra}
