"""The job scheduler: asyncio front, process-pool back.

Jobs admitted by the server are executed on a shared
:class:`~concurrent.futures.ProcessPoolExecutor` — the same worker
substrate as the parallel probing engine, with the same resilience
contract: a worker dying (``os._exit``, OOM, ``kill -9``) breaks the
pool; the scheduler respawns it and requeues the affected jobs with
bounded retries, **resuming each from its per-job session journal** so
the retry replays the interrupted search instead of re-paying the test
bill.  An injected :class:`~repro.faults.injector.SessionKilled` is
treated the same way (it models the session's process dying).

Sharing layers, all keyed by the config fingerprint:

* the **verdict cache** is sharded per fingerprint
  (:meth:`VerdictCache.shard_for`), so concurrent sessions of one
  workload share verdicts while different workloads never contend;
* each worker process keeps one **baseline pool**
  (:class:`~repro.oraql.incremental.BaselineCache`) per fingerprint,
  so incremental jobs batch compile work across the sessions that land
  on that worker — the n-th session of a workload splices against
  baselines the first session already paid for.

Determinism: compilation is a pure function of (config, sequence), the
shard only memoizes verdicts, and the baseline pool only changes *how*
a bit-identical executable is produced — so concurrent, cached,
resumed, and requeued jobs all report the same ``pessimistic_indices``
and ``final_exe_hash`` as a sequential
:class:`~repro.oraql.driver.ProbingDriver` run.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from ..faults.injector import FaultInjector, SessionKilled
from ..oraql.cache import VerdictCache, config_fingerprint
from ..oraql.config import BenchmarkConfig
from ..oraql.driver import ProbingDriver
from ..oraql.errors import ProbingError
from ..oraql.executor import ExecutorPolicy
from ..oraql.incremental import BaselineCache
from ..oraql.journal import SessionJournal
from .jobs import (JobRecord, JobSpec, JobTable, importance_report_to_dict,
                   report_to_dict)
from .quota import QuotaRegistry

#: how many times a job is requeued after its worker died before it is
#: reported failed (mirrors the parallel engine's contract)
MAX_WORKER_RETRIES = 2


# -- worker-side entry point (module level so it pickles) ---------------------

#: config fingerprint → shared baseline pool, one per worker *process*.
#: Jobs run serially within a worker, so no locking; the pool is the
#: cross-session compile-batching layer for incremental jobs.
_WORKER_BASELINES: Dict[str, BaselineCache] = {}


def _execute_job(spec_dict: dict, paths: dict, attempt: int,
                 resume: bool) -> dict:
    """Run one job to completion inside a worker process.

    Returns the serialized report dict.  Everything deterministic about
    the session — config, strategy, budgets, fault plan, journal path —
    arrives in ``spec_dict``/``paths`` so a requeued attempt replays
    the identical session (modulo the faults armed for ``attempt``).
    """
    spec = JobSpec.from_dict(spec_dict)
    cfg = BenchmarkConfig.from_json(spec.config_json)
    fingerprint = config_fingerprint(cfg)
    cache = VerdictCache.shard_for(paths["cache_root"], fingerprint)
    injector = FaultInjector.from_json_plan(spec.fault_plan,
                                            attempt=attempt)
    policy = ExecutorPolicy(fuel=spec.fuel, wall_clock=spec.wall_clock,
                            retries=spec.retries)
    trace = None
    if spec.stream:
        from ..trace.stream import JsonlStreamingTrace
        trace = JsonlStreamingTrace(paths["events_path"])

    if spec.kind == "importance":
        from ..oraql.importance import ImportanceDriver
        journal_dir = paths["journal_path"]
        os.makedirs(journal_dir, exist_ok=True)
        if trace is not None:
            trace.session(cfg.name, f"importance-{spec.strategy}")
        report = ImportanceDriver(
            cfg, strategy=spec.strategy,
            significant_percent=spec.significant_percent,
            recover_percent=spec.recover_percent,
            max_tests=spec.max_tests,
            max_measurements=spec.max_measurements,
            policy=policy, verdict_cache=cache,
            journal_dir=journal_dir, resume=resume,
            injector=injector, incremental=spec.incremental).run()
        if trace is not None:
            trace.record_done(report.pessimistic_indices)
        if report.probing is not None:
            report.probing.detach_for_transport()
        return importance_report_to_dict(report)

    journal = SessionJournal(paths["journal_path"], fingerprint,
                             spec.strategy, resume=resume)
    baselines = (_WORKER_BASELINES.setdefault(fingerprint, BaselineCache())
                 if spec.incremental == "on" else None)
    report = ProbingDriver(cfg, strategy=spec.strategy,
                           max_tests=spec.max_tests,
                           verdict_cache=cache, policy=policy,
                           journal=journal, injector=injector,
                           trace=trace, incremental=spec.incremental,
                           baselines=baselines).run()
    return report_to_dict(report.detach_for_transport())


# -- the scheduler ------------------------------------------------------------

class ProbingScheduler:
    """Admits jobs against tenant quotas and drives them to completion.

    Owns the state directory layout::

        <state_dir>/jobs.jsonl            durable job table
        <state_dir>/cache/<fp[:2]>/...    verdict-cache shards
        <state_dir>/journals/<job_id>...  per-job session journals
        <state_dir>/events/<job_id>...    per-job event streams

    ``resume=True`` replays the job table and resubmits every
    unfinished job (each resuming its own session journal).
    """

    def __init__(self, state_dir: str, jobs: int = 2,
                 quotas: Optional[QuotaRegistry] = None,
                 resume: bool = False,
                 max_worker_retries: int = MAX_WORKER_RETRIES):
        self.state_dir = state_dir
        self.worker_count = max(1, jobs)
        self.quotas = quotas or QuotaRegistry()
        self.max_worker_retries = max_worker_retries
        os.makedirs(state_dir, exist_ok=True)
        self.cache_root = os.path.join(state_dir, "cache")
        self.journal_dir = os.path.join(state_dir, "journals")
        self.events_dir = os.path.join(state_dir, "events")
        for d in (self.cache_root, self.journal_dir, self.events_dir):
            os.makedirs(d, exist_ok=True)
        self.table = JobTable(os.path.join(state_dir, "jobs.jsonl"),
                              resume=resume)
        self._resume = resume
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock: Optional[asyncio.Lock] = None
        self._tasks: Dict[str, asyncio.Task] = {}
        self._done_events: Dict[str, asyncio.Event] = {}
        self._active_per_tenant: Dict[str, int] = {}
        #: pool respawns performed (observability)
        self.pool_respawns = 0
        self._job_counter = self.table.next_job_number()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Create the pool and resubmit unfinished jobs (``--resume``)."""
        self._pool_lock = asyncio.Lock()
        self._pool = ProcessPoolExecutor(max_workers=self.worker_count)
        for job in self.table.unfinished():
            self._launch(job, resume=True)

    async def close(self) -> None:
        for task in list(self._tasks.values()):
            task.cancel()
        for task in list(self._tasks.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- admission ---------------------------------------------------------
    def next_job_id(self) -> str:
        job_id = f"job-{self._job_counter}"
        self._job_counter += 1
        return job_id

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job: quota check, durable record, launch.

        Raises :class:`~repro.service.quota.QuotaExceeded` on admission
        refusal and ``ValueError`` on a duplicate id."""
        quota = self.quotas.get(spec.tenant)
        quota.admit(self._active_per_tenant.get(spec.tenant, 0))
        spec.fuel = quota.clamp_fuel(spec.fuel)
        spec.wall_clock = quota.clamp_wall_clock(spec.wall_clock)
        spec.max_tests = quota.clamp_max_tests(spec.max_tests)
        job = self.table.admit(spec)
        self._launch(job, resume=False)
        return job

    def _launch(self, job: JobRecord, resume: bool) -> None:
        self._done_events[job.spec.id] = asyncio.Event()
        self._active_per_tenant[job.spec.tenant] = \
            self._active_per_tenant.get(job.spec.tenant, 0) + 1
        self._tasks[job.spec.id] = asyncio.get_event_loop().create_task(
            self._run_job(job, resume=resume))

    # -- paths -------------------------------------------------------------
    def events_path(self, job_id: str) -> str:
        return os.path.join(self.events_dir, f"{job_id}.events.jsonl")

    def _journal_path(self, spec: JobSpec) -> str:
        if spec.kind == "importance":
            # the importance driver names its two journals itself,
            # inside a per-job directory
            return os.path.join(self.journal_dir, spec.id)
        return os.path.join(self.journal_dir,
                            f"{spec.id}.journal.jsonl")

    # -- execution ---------------------------------------------------------
    async def _run_job(self, job: JobRecord, resume: bool) -> None:
        spec = job.spec
        paths = {"cache_root": self.cache_root,
                 "journal_path": self._journal_path(spec),
                 "events_path": self.events_path(spec.id)}
        try:
            job.status = "running"
            attempt = job.attempts
            while True:
                generation = self._pool_generation
                try:
                    report = await asyncio.get_event_loop() \
                        .run_in_executor(self._pool, _execute_job,
                                         spec.to_dict(), paths, attempt,
                                         resume or attempt > 0)
                    break
                except (BrokenProcessPool, SessionKilled) as e:
                    attempt += 1
                    job.attempts = attempt
                    job.worker_errors.append(
                        f"worker lost on attempt {attempt}: "
                        f"{type(e).__name__}: {e}")
                    if attempt > self.max_worker_retries:
                        self.table.finish(
                            spec.id, "failed",
                            error=f"worker lost {attempt} time(s): "
                                  f"{type(e).__name__}: {e}")
                        return
                    if isinstance(e, BrokenProcessPool):
                        await self._respawn_pool(generation)
                    # else: SessionKilled left the pool healthy — the
                    # retry resumes from the journal either way
            if job.worker_errors:
                report.setdefault("worker_errors", [])
                report["worker_errors"] = (list(job.worker_errors)
                                           + list(report.get(
                                               "worker_errors") or []))
            self.table.finish(spec.id, "done", report=report)
        except asyncio.CancelledError:
            self.table.finish(spec.id, "cancelled",
                              error="cancelled by client")
            raise
        except ProbingError as e:
            self.table.finish(spec.id, "failed", error=str(e))
        except Exception as e:
            self.table.finish(spec.id, "failed",
                              error=f"{type(e).__name__}: {e}")
        finally:
            self._active_per_tenant[spec.tenant] = max(
                0, self._active_per_tenant.get(spec.tenant, 1) - 1)
            self._tasks.pop(spec.id, None)
            event = self._done_events.get(spec.id)
            if event is not None:
                event.set()

    async def _respawn_pool(self, seen_generation: int) -> None:
        """Replace a broken pool exactly once per break: concurrent
        jobs all observe the break, only the first respawns."""
        async with self._pool_lock:
            if self._pool_generation != seen_generation:
                return  # someone else already respawned
            old = self._pool
            self._pool_generation += 1
            self.pool_respawns += 1
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            self._pool = ProcessPoolExecutor(
                max_workers=self.worker_count)

    # -- queries -----------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.table.get(job_id)

    def all_jobs(self) -> List[JobRecord]:
        return list(self.table.jobs.values())

    async def wait(self, job_id: str) -> JobRecord:
        """Block until the job reaches a terminal state."""
        job = self.table.jobs[job_id]
        if not job.finished:
            event = self._done_events.get(job_id)
            if event is not None:
                await event.wait()
        return job

    def cancel(self, job_id: str) -> bool:
        """Best-effort cancel; returns whether a task was signalled.
        A job already executing in a worker cannot be interrupted — it
        runs to completion and is then recorded cancelled."""
        task = self._tasks.get(job_id)
        if task is None:
            return False
        task.cancel()
        return True
