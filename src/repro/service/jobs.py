"""Job specifications, report serialization, and the durable job table.

The server's unit of work is a :class:`JobSpec` — everything a worker
process needs to run one probing (or importance) session, already
resolved and quota-clamped.  Specs and results are checkpointed to an
append-only, CRC-guarded job table (``jobs.jsonl`` under the state
directory, sharing the session journal's record codec), which is what
makes a killed server restartable: ``--resume`` replays the table,
serves completed results from it, and resubmits incomplete jobs — each
of which then replays its own per-job session journal, so the resumed
fleet's reports are bit-identical to an uninterrupted run.

Reports cross the process boundary as plain dicts
(:func:`report_to_dict` / :func:`report_from_dict`): every scalar and
collection field of :class:`~repro.oraql.driver.ProbingReport`
round-trips; the live compiler objects were already dropped by
``detach_for_transport``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from ..oraql.driver import ProbingReport
from ..oraql.journal import decode_record, encode_record
from ..oraql.sequence import DecisionSequence

JOB_KINDS = ("probe", "importance")

#: live/driver-side fields that do not cross the wire
_REPORT_SKIP = frozenset({"final_program", "baseline_program",
                          "pessimistic_records"})


# -- report serialization -----------------------------------------------------

def report_to_dict(report: ProbingReport) -> dict:
    """A JSON-able view of a (detached) probing report."""
    out: Dict[str, object] = {}
    for f in fields(ProbingReport):
        if f.name in _REPORT_SKIP:
            continue
        value = getattr(report, f.name)
        if f.name == "final_sequence":
            value = list(value.bits)
        out[f.name] = value
    return out


def report_from_dict(d: dict) -> ProbingReport:
    """Inverse of :func:`report_to_dict`.

    Unknown keys (a newer server's extensions) are ignored so old
    clients keep reading new servers' results."""
    known = {f.name for f in fields(ProbingReport)} - _REPORT_SKIP
    kwargs = {k: v for k, v in d.items() if k in known}
    kwargs["final_sequence"] = DecisionSequence(
        kwargs.get("final_sequence") or [])
    report = ProbingReport(
        config_name=kwargs.pop("config_name", "?"),
        fully_optimistic=kwargs.pop("fully_optimistic", False),
        final_sequence=kwargs.pop("final_sequence"),
        pessimistic_indices=kwargs.pop("pessimistic_indices", []))
    for key, value in kwargs.items():
        setattr(report, key, value)
    return report


def importance_report_to_dict(report) -> dict:
    """A JSON-able view of an importance report (phase-1 probing report
    nested under ``"probing"``)."""
    out = {
        "config_name": report.config_name,
        "strategy": report.strategy,
        "significant_percent": report.significant_percent,
        "recover_percent": report.recover_percent,
        "unique_queries": report.unique_queries,
        "safe_queries": report.safe_queries,
        "pessimistic_indices": list(report.pessimistic_indices),
        "baseline_cycles": report.baseline_cycles,
        "optimal_cycles": report.optimal_cycles,
        "important_cycles": report.important_cycles,
        "important": [asdict(q) for q in report.important],
        "dropped": list(report.dropped),
        "refinement_rounds": report.refinement_rounds,
        "compiles": report.compiles,
        "measurements_run": report.measurements_run,
        "measurements_cached": report.measurements_cached,
        "measurements_replayed": report.measurements_replayed,
        "partial": report.partial,
        "recovered_percent": report.recovered_percent,
    }
    if report.probing is not None:
        out["probing"] = report_to_dict(report.probing)
    return out


# -- job specifications -------------------------------------------------------

@dataclass
class JobSpec:
    """One admitted job, fully resolved (config JSON inline, quotas
    already clamped into the budget fields)."""

    id: str
    config_json: str
    tenant: str = "default"
    kind: str = "probe"
    strategy: str = "chunked"
    max_tests: int = 10_000
    incremental: str = "off"
    #: stream coarse QueryTrace events to an events file
    stream: bool = False
    #: deterministic chaos plan forwarded to the worker's injector
    fault_plan: Optional[List[dict]] = None
    #: executor budgets (post-clamp)
    fuel: Optional[int] = None
    wall_clock: Optional[float] = None
    retries: int = 2
    #: importance-mining knobs (kind == "importance")
    significant_percent: float = 2.0
    recover_percent: float = 95.0
    max_measurements: int = 2000

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        from ..oraql.strategies import strategy_names
        if self.strategy not in strategy_names():
            raise ValueError(
                f"unknown strategy {self.strategy!r} "
                f"(known: {', '.join(strategy_names())})")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "JobSpec":
        known = {f.name for f in fields(JobSpec)}
        return JobSpec(**{k: v for k, v in d.items() if k in known})

    @property
    def config_name(self) -> str:
        try:
            return json.loads(self.config_json).get("name", "?")
        except ValueError:
            return "?"


#: terminal job states
DONE_STATES = ("done", "failed", "cancelled")


@dataclass
class JobRecord:
    """One job's current state in the table."""

    spec: JobSpec
    status: str = "pending"   # pending | running | done | failed | cancelled
    report: Optional[dict] = None
    error: Optional[str] = None
    #: worker attempts consumed (> 0 after a requeue)
    attempts: int = 0
    #: worker-side failures survived (mirrors ProbingReport.worker_errors)
    worker_errors: List[str] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.status in DONE_STATES

    def public_view(self) -> dict:
        """What ``status`` queries see."""
        return {"id": self.spec.id, "tenant": self.spec.tenant,
                "kind": self.spec.kind, "config": self.spec.config_name,
                "status": self.status, "attempts": self.attempts,
                "worker_errors": list(self.worker_errors)}


class JobTable:
    """Durable job registry: an append-only CRC'd JSONL journal.

    Records: ``{"t": "job", "spec": {...}}`` on admit,
    ``{"t": "jobdone", "id", "status", "report"/"error"}`` on a
    terminal transition.  Corrupt (torn) lines are skipped and counted,
    like every other durability file here.  ``resume=True`` replays the
    journal: finished jobs keep their results; unfinished ones are
    returned by :meth:`unfinished` for the scheduler to resubmit.
    """

    def __init__(self, path: str, resume: bool = False):
        self.path = path
        self.jobs: Dict[str, JobRecord] = {}
        self.corrupt_records = 0
        self.dropped_appends = 0
        #: ids replayed as already finished (served from the table)
        self.replayed_done: List[str] = []
        if resume:
            self._replay()
        else:
            try:
                with open(path, "w"):
                    pass
            except OSError:
                self.dropped_appends += 1

    def _replay(self) -> None:
        try:
            with open(self.path, "r") as f:
                lines = f.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            rec = decode_record(line)
            if rec is None:
                self.corrupt_records += 1
                continue
            kind = rec.get("t")
            if kind == "job" and isinstance(rec.get("spec"), dict):
                try:
                    spec = JobSpec.from_dict(rec["spec"])
                except (TypeError, ValueError):
                    self.corrupt_records += 1
                    continue
                self.jobs[spec.id] = JobRecord(spec)
            elif kind == "jobdone":
                job = self.jobs.get(rec.get("id"))
                if job is None:
                    continue
                job.status = rec.get("status", "done")
                job.report = rec.get("report")
                job.error = rec.get("error")
                self.replayed_done.append(job.spec.id)
            # unknown kinds: skipped, not corruption (schema growth)

    def _append(self, rec: dict) -> None:
        try:
            with open(self.path, "a") as f:
                f.write(encode_record(rec) + "\n")
                f.flush()
        except OSError:
            self.dropped_appends += 1

    # -- mutation ----------------------------------------------------------
    def admit(self, spec: JobSpec) -> JobRecord:
        if spec.id in self.jobs:
            raise ValueError(f"duplicate job id {spec.id!r}")
        job = JobRecord(spec)
        self.jobs[spec.id] = job
        self._append({"t": "job", "spec": spec.to_dict()})
        return job

    def finish(self, job_id: str, status: str,
               report: Optional[dict] = None,
               error: Optional[str] = None) -> None:
        job = self.jobs[job_id]
        job.status = status
        job.report = report
        job.error = error
        rec: Dict[str, object] = {"t": "jobdone", "id": job_id,
                                  "status": status}
        if report is not None:
            rec["report"] = report
        if error is not None:
            rec["error"] = error
        self._append(rec)

    # -- views -------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.jobs.get(job_id)

    def unfinished(self) -> List[JobRecord]:
        """Jobs replayed from the journal without a terminal record —
        what a resumed server must resubmit, in admit order."""
        return [job for job in self.jobs.values() if not job.finished]

    def next_job_number(self) -> int:
        """1 + the highest ``job-N`` the table has seen, so a resumed
        server never reissues a replayed id."""
        highest = 0
        for job_id in self.jobs:
            if job_id.startswith("job-"):
                try:
                    highest = max(highest, int(job_id[4:]))
                except ValueError:
                    pass
        return highest + 1

    def __len__(self) -> int:
        return len(self.jobs)
