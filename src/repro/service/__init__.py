"""Probing-as-a-service: a multi-tenant asyncio session server.

See DESIGN.md §5g.  ``python -m repro.service --socket /tmp/oraql.sock``
starts the server; :class:`~repro.service.client.ServiceClient` (or any
line-delimited-JSON speaker, ``nc -U`` included) drives it.  The
correctness contract — concurrent, resumed, and chaos-interrupted jobs
report bit-identical pessimistic sets and executable hashes to
sequential :class:`~repro.oraql.driver.ProbingDriver` runs — is pinned
by ``tests/test_service_server.py`` / ``tests/test_service_chaos.py``
and the ``-m service`` acceptance matrix in
``tests/test_service_full.py``.
"""

from .client import ServiceClient, ServiceError
from .jobs import JobSpec, JobTable, report_from_dict, report_to_dict
from .protocol import PROTOCOL_VERSION, ProtocolError
from .quota import QuotaExceeded, QuotaRegistry, TenantQuota
from .scheduler import ProbingScheduler
from .server import ProbingService

__all__ = [
    "ProbingService", "ProbingScheduler", "ServiceClient",
    "ServiceError", "JobSpec", "JobTable", "TenantQuota",
    "QuotaRegistry", "QuotaExceeded", "ProtocolError",
    "PROTOCOL_VERSION", "report_to_dict", "report_from_dict",
]
