"""The asyncio session server: probing as a multi-tenant service.

One :class:`ProbingService` listens on a unix socket (or TCP address)
and serves concurrent client sessions speaking the line-delimited JSON
protocol of :mod:`repro.service.protocol`.  Each connection is an
independent session; jobs outlive their connection — a client that
drops mid-stream loses its event subscription, never its job, and can
reconnect and ``wait`` on the same id.

Progress streaming: a ``submit`` with ``"stream": true`` makes the
worker write coarse QueryTrace records (``meta``/``compile``/``done``)
to a per-job events file; the server tails that file with
:class:`~repro.trace.stream.EventTail` and forwards each record as an
``event`` message, then sends the terminal ``result``.  The stream
format IS the trace schema, so captured streams feed straight into the
``repro.trace`` readers.

Errors are always structured: malformed lines, unknown workloads, and
quota refusals produce ``error`` messages with a stable ``code`` — the
connection stays open, nothing ever tracebacks onto the wire.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..oraql.config import BenchmarkConfig
from ..workloads.base import get_config, row_names
from . import protocol as wire
from .jobs import JobSpec
from .quota import QuotaExceeded, QuotaRegistry
from .scheduler import ProbingScheduler

#: how often (seconds) a streaming session polls the job's events file
STREAM_POLL_INTERVAL = 0.03

#: maximum wire line length (a submit with an inline config JSON is a
#: few KB; 4 MiB is generous headroom for fat importance reports)
MAX_LINE = 4 * 1024 * 1024


class ProbingService:
    """The server: owns a scheduler, speaks the wire protocol."""

    def __init__(self, state_dir: str, jobs: int = 2,
                 quotas: Optional[QuotaRegistry] = None,
                 resume: bool = False,
                 socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0):
        if (socket_path is None) == (host is None):
            raise ValueError("exactly one of socket_path/host required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.scheduler = ProbingScheduler(state_dir, jobs=jobs,
                                          quotas=quotas, resume=resume)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        #: sessions served (observability)
        self.sessions = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        await self.scheduler.start()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_session, path=self.socket_path,
                limit=MAX_LINE)
        else:
            self._server = await asyncio.start_server(
                self._handle_session, host=self.host, port=self.port,
                limit=MAX_LINE)
            # resolve an ephemeral port for the caller
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` message (or task cancellation)."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()

    # -- one client session ------------------------------------------------
    async def _handle_session(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        self.sessions += 1
        tenant = "default"
        try:
            await self._session_loop(reader, writer, tenant)
        except asyncio.CancelledError:
            pass  # server closing under a live session: quiet exit
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _session_loop(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter,
                            tenant: str) -> None:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                return  # over-long line or dropped connection
            if not line:
                return  # client closed its end
            if not line.strip():
                continue
            try:
                msg = wire.decode(line)
            except wire.ProtocolError as e:
                await self._send(writer,
                                 wire.error_msg("bad-request", str(e)))
                continue
            tenant = msg.get("tenant", tenant)
            try:
                if await self._dispatch(msg, tenant, writer):
                    return
            except ConnectionError:
                return

    async def _send(self, writer: asyncio.StreamWriter,
                    msg: dict) -> None:
        writer.write(wire.encode(msg))
        await writer.drain()

    async def _dispatch(self, msg: dict, tenant: str,
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one message; returns True when the session ends."""
        t = msg["t"]
        if t == "hello":
            version = msg.get("v", wire.PROTOCOL_VERSION)
            if version != wire.PROTOCOL_VERSION:
                await self._send(writer, wire.error_msg(
                    "unsupported-version",
                    f"server speaks v{wire.PROTOCOL_VERSION}, "
                    f"client sent v{version}"))
            else:
                await self._send(writer,
                                 wire.welcome_msg("repro.service"))
        elif t == "submit":
            await self._handle_submit(msg, tenant, writer)
        elif t == "status":
            job = self.scheduler.get(msg.get("id", ""))
            if job is None:
                await self._send(writer, wire.error_msg(
                    "unknown-job", f"no job {msg.get('id')!r}"))
            else:
                view = job.public_view()
                view.pop("id"), view.pop("status")
                await self._send(writer, wire.status_msg(
                    job.spec.id, job.status, **view))
        elif t == "jobs":
            await self._send(writer, wire.ok_msg(
                jobs=[j.public_view()
                      for j in self.scheduler.all_jobs()]))
        elif t == "wait":
            job_id = msg.get("id", "")
            if self.scheduler.get(job_id) is None:
                await self._send(writer, wire.error_msg(
                    "unknown-job", f"no job {job_id!r}"))
            else:
                job = await self.scheduler.wait(job_id)
                await self._send_result(writer, job)
        elif t == "cancel":
            job_id = msg.get("id", "")
            if self.scheduler.get(job_id) is None:
                await self._send(writer, wire.error_msg(
                    "unknown-job", f"no job {job_id!r}"))
            else:
                signalled = self.scheduler.cancel(job_id)
                await self._send(writer, wire.ok_msg(
                    id=job_id, cancelled=signalled))
        elif t == "shutdown":
            self._draining = True
            await self._send(writer, wire.ok_msg(shutdown=True))
            self._shutdown.set()
            return True
        else:
            await self._send(writer, wire.error_msg(
                "bad-request", f"unknown message type {t!r}"))
        return False

    async def _handle_submit(self, msg: dict, tenant: str,
                             writer: asyncio.StreamWriter) -> None:
        if self._draining:
            await self._send(writer, wire.error_msg(
                "shutting-down", "server is draining"))
            return
        unknown = set(msg) - wire.SUBMIT_FIELDS
        if unknown:
            await self._send(writer, wire.error_msg(
                "bad-request",
                f"unknown submit field(s): {', '.join(sorted(unknown))}"))
            return
        config_json = None
        workload = msg.get("workload")
        if workload is not None:
            try:
                config_json = get_config(workload).to_json()
            except KeyError:
                await self._send(writer, wire.error_msg(
                    "unknown-workload",
                    f"unknown workload {workload!r} "
                    f"(known: {', '.join(row_names())})"))
                return
        elif isinstance(msg.get("config"), dict):
            try:
                config_json = BenchmarkConfig.from_json(
                    json.dumps(msg["config"])).to_json()
            except (TypeError, ValueError, KeyError) as e:
                await self._send(writer, wire.error_msg(
                    "bad-request", f"bad inline config: {e}"))
                return
        if config_json is None:
            await self._send(writer, wire.error_msg(
                "bad-request",
                "submit needs a 'workload' name or inline 'config'"))
            return

        job_id = msg.get("id") or self.scheduler.next_job_id()
        spec_fields = {k: msg[k] for k in
                       ("kind", "strategy", "max_tests", "incremental",
                        "stream", "fault_plan", "significant_percent",
                        "recover_percent", "max_measurements")
                       if k in msg}
        try:
            spec = JobSpec(id=job_id, config_json=config_json,
                           tenant=tenant, **spec_fields)
        except (TypeError, ValueError) as e:
            await self._send(writer,
                             wire.error_msg("bad-request", str(e)))
            return
        try:
            job = self.scheduler.submit(spec)
        except QuotaExceeded as e:
            await self._send(writer, wire.error_msg(
                "quota-exceeded", str(e), job_id=job_id))
            return
        except ValueError as e:
            await self._send(writer, wire.error_msg(
                "duplicate-job", str(e), job_id=job_id))
            return
        await self._send(writer, wire.accepted_msg(job.spec.id))
        if spec.stream:
            await self._stream_job(job.spec.id, writer)

    async def _stream_job(self, job_id: str,
                          writer: asyncio.StreamWriter) -> None:
        """Tail the job's events file onto this connection, then send
        the terminal result.  A dropped connection ends only the
        subscription — the job keeps running."""
        from ..trace.stream import EventTail
        tail = EventTail(self.scheduler.events_path(job_id))
        job = self.scheduler.get(job_id)
        while True:
            for record in tail.poll():
                await self._send(writer, wire.event_msg(job_id, record))
            if job.finished:
                break
            try:
                await asyncio.wait_for(
                    self.scheduler.wait(job_id),
                    timeout=STREAM_POLL_INTERVAL)
            except asyncio.TimeoutError:
                pass
        for record in tail.poll():  # final drain
            await self._send(writer, wire.event_msg(job_id, record))
        await self._send_result(writer, job)

    async def _send_result(self, writer: asyncio.StreamWriter,
                           job) -> None:
        await self._send(writer, wire.result_msg(
            job.spec.id, job.status, report=job.report,
            error=job.error))
