"""A small asyncio client for the probing service.

Used by the test harness and the (optional) interactive clients; it is
a thin typed veneer over the wire protocol — one coroutine per message
exchange, plus an async iterator for streamed jobs.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, List, Optional

from . import protocol as wire
from .server import MAX_LINE


class ServiceError(RuntimeError):
    """A structured ``error`` reply from the server."""

    def __init__(self, code: str, detail: str):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class ServiceClient:
    """One connection-scoped session with a probing service."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: Optional[str] = None, port: int = 0,
                 tenant: str = "default"):
        if (socket_path is None) == (host is None):
            raise ValueError("exactly one of socket_path/host required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.tenant = tenant
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # -- connection --------------------------------------------------------
    async def connect(self) -> dict:
        """Open the connection and complete the hello handshake."""
        if self.socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                self.socket_path, limit=MAX_LINE)
        else:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE)
        await self._send(wire.hello_msg(self.tenant))
        return self._expect(await self._recv(), "welcome")

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- wire --------------------------------------------------------------
    async def _send(self, msg: dict) -> None:
        msg = dict(msg)
        msg.setdefault("tenant", self.tenant)
        self._writer.write(wire.encode(msg))
        await self._writer.drain()

    async def _recv(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return wire.decode(line)

    @staticmethod
    def _expect(msg: dict, kind: str) -> dict:
        if msg["t"] == "error":
            raise ServiceError(msg.get("code", "?"),
                               msg.get("detail", ""))
        if msg["t"] != kind:
            raise wire.ProtocolError(
                f"expected {kind!r} reply, got {msg['t']!r}")
        return msg

    # -- operations --------------------------------------------------------
    async def submit(self, workload: Optional[str] = None,
                     config: Optional[dict] = None, **fields) -> str:
        """Submit a job; returns the assigned job id."""
        msg = {"t": "submit", **fields}
        if workload is not None:
            msg["workload"] = workload
        if config is not None:
            msg["config"] = config
        await self._send(msg)
        return self._expect(await self._recv(), "accepted")["id"]

    async def submit_and_stream(
            self, workload: Optional[str] = None,
            config: Optional[dict] = None,
            **fields) -> AsyncIterator[dict]:
        """Submit with ``stream=True``; yields ``event`` records and
        finally the ``result`` message itself."""
        fields["stream"] = True
        await self.submit(workload=workload, config=config, **fields)
        while True:
            msg = await self._recv()
            if msg["t"] == "error":
                raise ServiceError(msg.get("code", "?"),
                                   msg.get("detail", ""))
            yield msg
            if msg["t"] == "result":
                return

    async def wait(self, job_id: str) -> dict:
        """Block until the job finishes; returns the ``result``."""
        await self._send({"t": "wait", "id": job_id})
        return self._expect(await self._recv(), "result")

    async def status(self, job_id: str) -> dict:
        await self._send({"t": "status", "id": job_id})
        return self._expect(await self._recv(), "status")

    async def jobs(self) -> List[dict]:
        await self._send({"t": "jobs"})
        return self._expect(await self._recv(), "ok")["jobs"]

    async def cancel(self, job_id: str) -> dict:
        await self._send({"t": "cancel", "id": job_id})
        return self._expect(await self._recv(), "ok")

    async def shutdown(self) -> dict:
        await self._send({"t": "shutdown"})
        return self._expect(await self._recv(), "ok")
