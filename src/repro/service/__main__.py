"""``python -m repro.service`` — run the probing session server."""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from .quota import QuotaRegistry
from .server import ProbingService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve concurrent ORAQL probing sessions over a "
                    "unix socket or TCP, with per-tenant quotas and "
                    "journal-backed resume.")
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument("--socket", metavar="PATH",
                       help="listen on a unix socket at PATH")
    where.add_argument("--tcp", metavar="HOST:PORT",
                       help="listen on a TCP address (PORT 0 = "
                            "ephemeral, printed on startup)")
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes (default 2)")
    parser.add_argument("--state-dir", default="service-state",
                        metavar="DIR",
                        help="durable state: job table, verdict-cache "
                             "shards, per-job journals and event "
                             "streams (default ./service-state)")
    parser.add_argument("--resume", action="store_true",
                        help="replay DIR's job table: finished jobs "
                             "serve their recorded results, unfinished "
                             "ones resume from their session journals")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME:k=v,...",
                        help="declare a tenant quota, e.g. "
                             "team-a:max_active=2,fuel=2000000 "
                             "(repeatable)")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    quotas = QuotaRegistry.from_specs(args.tenant)
    if args.socket:
        service = ProbingService(args.state_dir, jobs=args.jobs,
                                 quotas=quotas, resume=args.resume,
                                 socket_path=args.socket)
    else:
        host, _, port = args.tcp.rpartition(":")
        service = ProbingService(args.state_dir, jobs=args.jobs,
                                 quotas=quotas, resume=args.resume,
                                 host=host or "127.0.0.1",
                                 port=int(port))
    await service.start()
    where = (args.socket if args.socket
             else f"{service.host}:{service.port}")
    print(f"repro.service listening on {where} "
          f"(state: {args.state_dir}, workers: {args.jobs})",
          flush=True)
    await service.serve_until_shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.tcp and ":" not in args.tcp:
        build_parser().error(f"--tcp wants HOST:PORT, got {args.tcp!r}")
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
