"""Per-tenant quotas, enforced through the existing executor budgets.

A tenant is a named client of the service (the ``hello``/``submit``
``tenant`` field).  Its quota caps what any one job may consume — and
how many jobs may run at once — by *clamping into the machinery that
already exists* rather than adding a second enforcement layer:

* ``fuel`` / ``wall_clock`` become the
  :class:`~repro.oraql.executor.ExecutorPolicy` budgets of the job's
  :class:`~repro.oraql.executor.TestExecutor`, so an over-budget run
  ends in a ``step-limit`` triage verdict exactly as ``--test-fuel``
  would produce;
* ``max_tests`` clamps the probing driver's test budget, so an
  over-long bisection degrades to a ``budget_exhausted`` partial
  report, never a hung worker;
* ``max_active`` is the scheduler-level admission control: a submit
  past it is refused with a ``quota-exceeded`` error the client can
  retry after one of its jobs drains.

Fuel and wall-clock caps can change verdicts (a legitimately slow run
becomes a step-limit failure), so the bit-identity contract is stated
for uncapped tenants; capped tenants trade fidelity for isolation,
which is the point of a quota.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class QuotaExceeded(RuntimeError):
    """A submit was refused by tenant admission control."""


@dataclass(frozen=True)
class TenantQuota:
    """Resource ceilings for one tenant; ``None`` = unlimited."""

    name: str = "default"
    #: concurrent jobs admitted for this tenant
    max_active: Optional[int] = None
    #: per-test instruction budget ceiling
    fuel: Optional[int] = None
    #: per-test wall-clock ceiling in seconds
    wall_clock: Optional[float] = None
    #: probing test-budget ceiling per job
    max_tests: Optional[int] = None

    def admit(self, active: int) -> None:
        """Refuse a new job when the tenant is at ``max_active``."""
        if self.max_active is not None and active >= self.max_active:
            raise QuotaExceeded(
                f"tenant {self.name!r} already has {active} active "
                f"job(s) (quota {self.max_active})")

    def clamp_fuel(self, requested: Optional[int]) -> Optional[int]:
        if self.fuel is None:
            return requested
        return self.fuel if requested is None else min(requested, self.fuel)

    def clamp_wall_clock(self,
                         requested: Optional[float]) -> Optional[float]:
        if self.wall_clock is None:
            return requested
        return (self.wall_clock if requested is None
                else min(requested, self.wall_clock))

    def clamp_max_tests(self, requested: int) -> int:
        if self.max_tests is None:
            return requested
        return min(requested, self.max_tests)


#: ``--tenant`` spec fields and their parsers
_FIELDS = {
    "max_active": int,
    "fuel": int,
    "wall_clock": float,
    "max_tests": int,
}


def parse_tenant_spec(spec: str) -> TenantQuota:
    """Parse one ``--tenant NAME:key=value,...`` command-line spec.

    Example: ``team-a:max_active=2,fuel=2000000,wall_clock=5``.
    A bare ``NAME`` declares an unrestricted tenant.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"tenant spec {spec!r} has an empty name")
    kwargs: Dict[str, object] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in _FIELDS:
                raise ValueError(
                    f"bad tenant quota field {item!r} in {spec!r} "
                    f"(known: {', '.join(sorted(_FIELDS))})")
            try:
                kwargs[key] = _FIELDS[key](value.strip())
            except ValueError:
                raise ValueError(
                    f"bad value for {key!r} in tenant spec {spec!r}: "
                    f"{value.strip()!r}")
    return TenantQuota(name=name, **kwargs)


class QuotaRegistry:
    """Tenant name → quota, with an unrestricted default.

    Unknown tenants fall back to the registry's default quota, so an
    open service needs no pre-registration while a locked-down one can
    pass ``default_quota=TenantQuota("default", max_active=0)`` to
    refuse anonymous traffic outright."""

    def __init__(self, quotas: Optional[Dict[str, TenantQuota]] = None,
                 default_quota: Optional[TenantQuota] = None):
        self._quotas = dict(quotas or {})
        self._default = default_quota or TenantQuota()

    @classmethod
    def from_specs(cls, specs) -> "QuotaRegistry":
        quotas = {}
        for spec in specs or ():
            quota = parse_tenant_spec(spec)
            quotas[quota.name] = quota
        return cls(quotas)

    def get(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default)

    def __len__(self) -> int:
        return len(self._quotas)
