"""XSBench: proxy for the OpenMC Monte Carlo neutron transport lookup
kernel (paper §V-B).

Three configurations — sequential C, OpenMP, and CUDA with a
Thrust-style device-vector wrapper — probing only the ``Simulation``
file, as the paper does.  All three share ``pick_mat`` and its constant
``double dist[12]`` distribution array: the in-place normalization
helpers are called with *overlapping windows* of ``dist``, and those
(real) aliases are the pessimistic queries — the same ones in every
variant, exactly the paper's observation.

The CUDA variant routes all data through Thrust-style wrapper structs
(``dvec``), whose accessor indirection multiplies the residual query
count (the paper's "layers of indirection in that library").
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"Runtime:.*", "Runtime: <T>")]

# -- shared: materials + pick_mat with the dist[12] hazard ------------------

_PICK_MAT = r'''
// in-place smoothing over two overlapping windows of dist (real alias)
void dist_smooth(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    b[i] = b[i] * 0.6 + a[i] * 0.4;
  }
}

// running total accumulated into a cell that is itself part of dist
void dist_total(double* a, double* acc, int n) {
  acc[0] = 0.0;
  for (int i = 0; i < n; i++) {
    acc[0] = acc[0] + a[i];
  }
}

// normalize dist by a scale factor read from inside dist
void dist_scale(double* a, double* s, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] / s[0];
  }
}

// reverse blend over two windows that genuinely overlap
void dist_blend(double* a, double* b, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = a[i] * 0.8 + b[i + 1] * 0.2;
  }
}

// clamp against a limit cell that sits inside the distribution
void dist_clamp(double* d, double* limit, int n) {
  for (int i = 0; i < n; i++) {
    if (d[i] > limit[0]) { d[i] = limit[0] * 0.999; }
  }
}

int pick_mat(double roll) {
  double dist[12];
  dist[0] = 0.140;
  dist[1] = 0.052;
  dist[2] = 0.275;
  dist[3] = 0.134;
  dist[4] = 0.154;
  dist[5] = 0.064;
  dist[6] = 0.066;
  dist[7] = 0.055;
  dist[8] = 0.008;
  dist[9] = 0.015;
  dist[10] = 0.025;
  dist[11] = 0.013;
  dist_smooth(dist, dist + 1, 10);      // windows overlap by one
  dist_blend(dist + 2, dist, 9);        // reversed overlapping windows
  dist_total(dist, dist + 5, 11);       // total lands inside the window
  dist_scale(dist, dist + 5, 11);       // scale by the in-band total
  dist_clamp(dist, dist + 3, 11);       // limit cell inside dist
  double running = 0.0;
  for (int i = 0; i < 11; i++) {
    running = running + dist[i];
    if (roll < running) { return i; }
  }
  return 11;
}
'''

_GRID = r'''
double rn(int* seed) {
  int s = seed[0];
  s = (s * 1103515245 + 12345) % 2147483648;
  if (s < 0) { s = -s; }
  seed[0] = s;
  return (double)s / 2147483648.0;
}

void init_grids(double* egrid, double* xs, int ngrid, int nmat) {
  for (int g = 0; g < ngrid; g++) {
    egrid[g] = (double)g / ngrid;
    for (int m = 0; m < nmat; m++) {
      xs[g * nmat + m] = 0.1 + 0.01 * m + 0.001 * g;
    }
  }
}

// safely-optimistic helpers: callers always pass disjoint buffers
void accumulate_tally(double* tally, double* vals, int n) {
  for (int i = 0; i < n; i++) { tally[i] = tally[i] + vals[i]; }
}

double interpolate(double* lo, double* hi, double f) {
  return lo[0] + f * (hi[0] - lo[0]);
}

void macro_xs(double* out, double* micro, double* conc, int n) {
  for (int i = 0; i < n; i++) { out[i] = micro[i] * conc[i]; }
}

int grid_search(double* egrid, double e, int ngrid) {
  int lo = 0;
  int hi = ngrid - 1;
  while (hi - lo > 1) {
    int mid = (lo + hi) / 2;
    if (egrid[mid] < e) { lo = mid; } else { hi = mid; }
  }
  return lo;
}

double calculate_xs(double* egrid, double* xs, double e, int mat,
                    int ngrid, int nmat) {
  int g = grid_search(egrid, e, ngrid);
  double f = (e - egrid[g]) * ngrid;
  double micro[4];
  double conc[4];
  double macro[4];
  for (int k = 0; k < 4; k++) {
    micro[k] = xs[g * nmat + ((mat + k) % nmat)];
    conc[k] = 0.25 + 0.1 * k;
    macro[k] = 0.0;
  }
  macro_xs(macro, micro, conc, 4);
  double tot[4];
  for (int k = 0; k < 4; k++) { tot[k] = 0.0; }
  accumulate_tally(tot, macro, 4);
  double lowv = xs[g * nmat + mat];
  double highv = xs[(g + 1) * nmat + mat];
  return interpolate(&lowv, &highv, f) + tot[0] * 0.001 + tot[3] * 0.0001;
}
'''

_SEQ_DRIVER = r'''
int main() {
  int ngrid = 64;
  int nmat = 12;
  int lookups = 200;
  double* egrid = (double*)malloc(ngrid * sizeof(double));
  double* xs = (double*)malloc(ngrid * nmat * sizeof(double));
  init_grids(egrid, xs, ngrid, nmat);
  int seed = 42;
  double vhash = 0.0;
  double t0 = wtime();
  for (int l = 0; l < lookups; l++) {
    double e = rn(&seed);
    double roll = rn(&seed);
    int mat = pick_mat(roll);
    double v = calculate_xs(egrid, xs, e, mat, ngrid, nmat);
    vhash = vhash + v * (1.0 + 0.0001 * mat);
  }
  double t1 = wtime();
  printf("XSBench (event-based)\n");
  printf("Lookups: %d\n", lookups);
  printf("Verification checksum = %.9f\n", vhash);
  printf("Runtime: %.6f s\n", t1 - t0);
  return 0;
}
'''

_OMP_DRIVER = r'''
int main() {
  int ngrid = 64;
  int nmat = 12;
  int lookups = 200;
  double* egrid = (double*)malloc(ngrid * sizeof(double));
  double* xs = (double*)malloc(ngrid * nmat * sizeof(double));
  double* partial = (double*)malloc(lookups * sizeof(double));
  init_grids(egrid, xs, ngrid, nmat);
  double t0 = wtime();
  #pragma omp parallel for
  for (int l = 0; l < lookups; l++) {
    int seed = 42 + l * 7;
    double e = rn(&seed);
    double roll = rn(&seed);
    int mat = pick_mat(roll);
    double v = calculate_xs(egrid, xs, e, mat, ngrid, nmat);
    partial[l] = v * (1.0 + 0.0001 * mat);
  }
  double vhash = 0.0;
  for (int l = 0; l < lookups; l++) { vhash = vhash + partial[l]; }
  double t1 = wtime();
  printf("XSBench (event-based, OpenMP)\n");
  printf("Lookups: %d\n", lookups);
  printf("Verification checksum = %.9f\n", vhash);
  printf("Runtime: %.6f s\n", t1 - t0);
  return 0;
}
'''

# Thrust-style device vectors: every access goes through a wrapper
# struct and accessor calls — the indirection layers behind the CUDA
# variant's much larger query count.
_CUDA_DRIVER = r'''
struct dvec { double* data; int n; };
struct ivec { int* data; int n; };

double dv_get(struct dvec* v, int i) { return v->data[i]; }
void dv_set(struct dvec* v, int i, double x) { v->data[i] = x; }
double* dv_raw(struct dvec* v) { return v->data; }
int dv_size(struct dvec* v) { return v->n; }

__global__ void xs_kernel(struct dvec* egrid, struct dvec* xs,
                          struct dvec* out, int ngrid, int nmat,
                          int lookups) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int l = t; l < lookups; l += total) {
    int seed = 42 + l * 7;
    double e = rn(&seed);
    double roll = rn(&seed);
    int mat = pick_mat(roll);
    double* eg = dv_raw(egrid);
    double* xsv = dv_raw(xs);
    double v = calculate_xs(eg, xsv, e, mat, ngrid, nmat);
    dv_set(out, l, v * (1.0 + 0.0001 * mat));
  }
}

__global__ void reduce_kernel(struct dvec* out, struct dvec* result,
                              int lookups) {
  int t = cuda_thread_id();
  if (t == 0) {
    double s = 0.0;
    for (int l = 0; l < lookups; l++) { s = s + dv_get(out, l); }
    dv_set(result, 0, s);
  }
}

int main() {
  int ngrid = 64;
  int nmat = 12;
  int lookups = 200;
  struct dvec egrid;
  struct dvec xs;
  struct dvec out;
  struct dvec result;
  egrid.data = (double*)malloc(ngrid * sizeof(double));
  egrid.n = ngrid;
  xs.data = (double*)malloc(ngrid * nmat * sizeof(double));
  xs.n = ngrid * nmat;
  out.data = (double*)malloc(lookups * sizeof(double));
  out.n = lookups;
  result.data = (double*)malloc(sizeof(double));
  result.n = 1;
  init_grids(egrid.data, xs.data, ngrid, nmat);
  double t0 = wtime();
  launch(xs_kernel, 1, 64, &egrid, &xs, &out, ngrid, nmat, lookups);
  launch(reduce_kernel, 1, 1, &out, &result, lookups);
  cuda_device_synchronize();
  double t1 = wtime();
  printf("XSBench (event-based, CUDA + Thrust)\n");
  printf("Lookups: %d\n", lookups);
  printf("Verification checksum = %.9f\n", result.data[0]);
  printf("Runtime: %.6f s\n", t1 - t0);
  return 0;
}
'''


def _source(driver: str) -> str:
    return _PICK_MAT + _GRID + driver


def config_seq() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="xsbench-seq",
        sources=[SourceFile("Simulation.c", _source(_SEQ_DRIVER))],
        frontend="clang",
        probe_files=["Simulation.c"],
        output_filters=list(_FILTERS),
    )


def config_openmp() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="xsbench-openmp",
        sources=[SourceFile("Simulation.c", _source(_OMP_DRIVER))],
        frontend="clang",
        probe_files=["Simulation.c"],
        num_threads=4,
        output_filters=list(_FILTERS),
    )


def config_cuda() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="xsbench-cuda",
        sources=[SourceFile("Simulation.c", _source(_CUDA_DRIVER))],
        frontend="clang++",
        probe_files=["Simulation.c"],
        output_filters=list(_FILTERS),
    )


register(
    VariantInfo("XSBench", "seq", "C", "Simulation", 415, 168, 11, 1,
                9954, 10522, "+5.7%"),
    config_seq)
register(
    VariantInfo("XSBench", "openmp", "C, OpenMP", "Simulation", 546, 1294,
                11, 1, 12131, 13480, "+11.1%"),
    config_openmp)
register(
    VariantInfo("XSBench", "cuda-thrust", "CUDA, Thrust", "Simulation",
                3731, 16734, 11, 1, 33312, 53942, "+43.1%"),
    config_cuda)
