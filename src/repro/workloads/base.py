"""Workload infrastructure: variant descriptors and the registry.

Each proxy application module exposes ``config(variant) ->
BenchmarkConfig`` plus a ``VARIANTS`` table describing the paper's
configurations (programming model, probed files, expected behaviour
under ORAQL).  The sources are MiniC re-implementations: scaled down,
but with the same aliasing structure as the originals (see DESIGN.md's
substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..oraql.config import BenchmarkConfig


@dataclass(frozen=True)
class VariantInfo:
    """Metadata about one benchmark configuration (one Fig. 4 row)."""

    benchmark: str
    variant: str
    programming_model: str
    source_files: str                 # the "Source Files" column of Fig. 4
    #: paper's Fig. 4 row for side-by-side reporting
    paper_opt_unique: int = 0
    paper_opt_cached: int = 0
    paper_pess_unique: int = 0
    paper_pess_cached: int = 0
    paper_noalias_original: int = 0
    paper_noalias_oraql: int = 0
    paper_delta: str = ""

    @property
    def row_name(self) -> str:
        return f"{self.benchmark}-{self.variant}"

    @property
    def paper_fully_optimistic(self) -> bool:
        return self.paper_pess_unique == 0


_REGISTRY: Dict[str, Tuple[VariantInfo, Callable[[], BenchmarkConfig]]] = {}


def register(info: VariantInfo,
             factory: Callable[[], BenchmarkConfig]) -> None:
    _REGISTRY[info.row_name] = (info, factory)


def all_variants() -> List[VariantInfo]:
    return [info for info, _ in _REGISTRY.values()]


def get_config(row_name: str) -> BenchmarkConfig:
    info, factory = _REGISTRY[row_name]
    return factory()


def get_info(row_name: str) -> VariantInfo:
    return _REGISTRY[row_name][0]


def row_names() -> List[str]:
    return list(_REGISTRY.keys())
