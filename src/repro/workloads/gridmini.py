"""GridMini: reduced Grid lattice-QCD library, SU(3) benchmark
(paper §V-C).

One configuration: OpenMP *offload* — the SU3 streaming kernel runs on
the device, and ORAQL is restricted to the device compilation via
``-opt-aa-target`` (§IV-E).  The kernel multiplies 3×3 complex (SU(3))
matrices site-by-site.

Expected behaviour, as in the paper: every device query can be answered
optimistically, *and the kernel gets slower* — the fully-unrolled
complex multiply holds many more values live once optimistic AA lets
GVN/LICM keep loaded matrix elements in registers, which pushes the
kernel over an occupancy cliff (the paper's 7% regression; "heuristics
employed in LLVM are less mature for GPUs").
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"kernel time .*", "kernel time <T>")]

_SOURCE = r'''
// SU(3) matrices stored as 18 doubles (row-major, re/im interleaved)

__global__ void su3_mult_kernel(double* out, double* a, double* b,
                                int nsites) {
  // Grid's expression templates fully unroll the SU(3) row/column
  // structure; only the column loop (j) remains.  The A-matrix rows
  // are loaded right before each output row (short live ranges), and
  // all 18 loads are j-invariant: conservative aliasing reloads them
  // every column (the out[] stores may clobber them), while optimistic
  // aliasing hoists all 18 out of the column loop — fewer instructions,
  // but 18 doubles held live across the loop, past an occupancy cliff
  // (the paper's ~7% kernel slowdown, §V-C).
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int s = t; s < nsites; s += total) {
    int base = s * 18;
    for (int j = 0; j < 3; j++) {
      double b0r = b[base + (0 * 3 + j) * 2];
      double b0i = b[base + (0 * 3 + j) * 2 + 1];
      double b1r = b[base + (1 * 3 + j) * 2];
      double b1i = b[base + (1 * 3 + j) * 2 + 1];
      double b2r = b[base + (2 * 3 + j) * 2];
      double b2i = b[base + (2 * 3 + j) * 2 + 1];
      double a00r = a[base + 0];  double a00i = a[base + 1];
      double a01r = a[base + 2];  double a01i = a[base + 3];
      double a02r = a[base + 4];  double a02i = a[base + 5];
      out[base + (0 * 3 + j) * 2] =
          a00r * b0r - a00i * b0i + a01r * b1r - a01i * b1i
        + a02r * b2r - a02i * b2i;
      out[base + (0 * 3 + j) * 2 + 1] =
          a00r * b0i + a00i * b0r + a01r * b1i + a01i * b1r
        + a02r * b2i + a02i * b2r;
      double a10r = a[base + 6];  double a10i = a[base + 7];
      double a11r = a[base + 8];  double a11i = a[base + 9];
      double a12r = a[base + 10]; double a12i = a[base + 11];
      out[base + (1 * 3 + j) * 2] =
          a10r * b0r - a10i * b0i + a11r * b1r - a11i * b1i
        + a12r * b2r - a12i * b2i;
      out[base + (1 * 3 + j) * 2 + 1] =
          a10r * b0i + a10i * b0r + a11r * b1i + a11i * b1r
        + a12r * b2i + a12i * b2r;
      double a20r = a[base + 12]; double a20i = a[base + 13];
      double a21r = a[base + 14]; double a21i = a[base + 15];
      double a22r = a[base + 16]; double a22i = a[base + 17];
      out[base + (2 * 3 + j) * 2] =
          a20r * b0r - a20i * b0i + a21r * b1r - a21i * b1i
        + a22r * b2r - a22i * b2i;
      out[base + (2 * 3 + j) * 2 + 1] =
          a20r * b0i + a20i * b0r + a21r * b1i + a21i * b1r
        + a22r * b2i + a22i * b2r;
    }
  }
}

__global__ void site_norm_kernel(double* out, double* norms, int nsites) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int s = t; s < nsites; s += total) {
    int base = s * 18;
    double n = 0.0;
    for (int e = 0; e < 18; e++) {
      n = n + out[base + e] * out[base + e];
    }
    norms[s] = n;
  }
}

int main() {
  int nsites = 48;   // scaled stand-in for the paper's L = 60 lattice
  double* a = (double*)malloc(nsites * 18 * sizeof(double));
  double* b = (double*)malloc(nsites * 18 * sizeof(double));
  double* out = (double*)malloc(nsites * 18 * sizeof(double));
  double* norms = (double*)malloc(nsites * sizeof(double));
  for (int s = 0; s < nsites; s++) {
    for (int e = 0; e < 18; e++) {
      a[s * 18 + e] = 0.1 + 0.001 * e + 0.0001 * s;
      b[s * 18 + e] = 0.2 - 0.0005 * e + 0.0002 * s;
    }
  }
  double t0 = wtime();
  for (int it = 0; it < 3; it++) {
    launch(su3_mult_kernel, 1, 16, out, a, b, nsites);
    launch(site_norm_kernel, 1, 16, out, norms, nsites);
  }
  cuda_device_synchronize();
  double t1 = wtime();
  double total = 0.0;
  for (int s = 0; s < nsites; s++) { total = total + norms[s]; }
  printf("GridMini SU3 benchmark (OpenMP offload)\n");
  printf("sites = %d\n", nsites);
  printf("norm checksum = %.9f\n", total);
  printf("kernel time %.6f s\n", t1 - t0);
  return 0;
}
'''


def config_offload() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="gridmini-offload",
        sources=[SourceFile("Benchmark_su3.cc", _SOURCE)],
        frontend="clang++",
        probe_files=["Benchmark_su3.cc"],
        target_filter="nvptx",
        output_filters=list(_FILTERS),
    )


register(
    VariantInfo("GridMini", "offload", "C++, OpenMP Offload",
                "Benchmark_su3", 86, 6809, 0, 0, 8969, 14435, "+60.9%"),
    config_offload)
