"""repro.workloads — MiniC re-implementations of the paper's seven HPC
proxy applications, in all sixteen configurations of Fig. 4."""

from . import gridmini, lulesh, minife, minigmg, quicksilver, testsnap, xsbench
from .base import (
    VariantInfo,
    all_variants,
    get_config,
    get_info,
    register,
    row_names,
)

__all__ = [name for name in dir() if not name.startswith("_")]
