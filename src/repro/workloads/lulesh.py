"""LULESH: Livermore Unstructured Lagrange Explicit Shock Hydro
(paper §V-E).

Three C++ configurations — sequential, OpenMP, MPI — probing only the
functions inside the timed region (the paper excludes setup/cleanup).

LULESH is the paper's "cannot be compiled fully optimistically" case:
the domain uses a memory *pool*, and two logical arrays (the force
scratch ``dvdx`` and the element work array ``delv``) are deliberately
carved out of the same slab region — pool reuse, a textbook source of
true aliasing.  Optimistic answers across those arrays change the
energy checksum; ORAQL has to answer those queries pessimistically,
while everything else in the timed kernels is optimistic (the paper's
≥55% extra no-alias responses with barely-changed run time).
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"Elapsed time .*", "Elapsed time <T>")]

_DOMAIN = r'''
struct Domain {
  double* x; double* y; double* z;       // node coordinates
  double* xd; double* yd; double* zd;    // node velocities
  double* fx; double* fy; double* fz;    // node forces
  double* e; double* p; double* q;       // element energy/pressure/q
  double* v; double* delv;               // element volumes
  double* dvdx;                          // force scratch (pool-shared!)
  int nnode;
  int nelem;
};

void domain_init(struct Domain* dom, int edge) {
  int nelem = edge * edge;
  int nnode = (edge + 1) * (edge + 1);
  dom->nnode = nnode;
  dom->nelem = nelem;
  dom->x = (double*)malloc(nnode * sizeof(double));
  dom->y = (double*)malloc(nnode * sizeof(double));
  dom->z = (double*)malloc(nnode * sizeof(double));
  dom->xd = (double*)malloc(nnode * sizeof(double));
  dom->yd = (double*)malloc(nnode * sizeof(double));
  dom->zd = (double*)malloc(nnode * sizeof(double));
  dom->fx = (double*)malloc(nnode * sizeof(double));
  dom->fy = (double*)malloc(nnode * sizeof(double));
  dom->fz = (double*)malloc(nnode * sizeof(double));
  dom->e = (double*)malloc(nelem * sizeof(double));
  dom->p = (double*)malloc(nelem * sizeof(double));
  dom->q = (double*)malloc(nelem * sizeof(double));
  dom->v = (double*)malloc(nelem * sizeof(double));
  // pool reuse: delv and dvdx share one slab (delv = first half)
  double* pool = (double*)malloc(2 * nelem * sizeof(double));
  dom->delv = pool;
  dom->dvdx = pool + nelem / 2;          // overlapping carve-out!
  for (int i = 0; i < nnode; i++) {
    dom->x[i] = (double)(i % 7) * 0.1;
    dom->y[i] = (double)(i % 5) * 0.2;
    dom->z[i] = (double)(i % 3) * 0.3;
    dom->xd[i] = 0.0;
    dom->yd[i] = 0.0;
    dom->zd[i] = 0.0;
  }
  for (int k = 0; k < nelem; k++) {
    dom->e[k] = (k == 0) ? 3.948746e+7 * 0.000001 : 0.0;
    dom->p[k] = 0.0;
    dom->q[k] = 0.0;
    dom->v[k] = 1.0;
    dom->delv[k] = 0.0;
  }
}
'''

_KERNELS_SEQ_BODY = r'''
void CalcForceForNodes(struct Domain* dom) {
  int nnode = dom->nnode;
  int nelem = dom->nelem;
  double* fx = dom->fx;
  double* fy = dom->fy;
  double* fz = dom->fz;
  double* dvdx = dom->dvdx;
  double* delv = dom->delv;
  double* p = dom->p;
  double* q = dom->q;
  for (int i = 0; i < nnode; i++) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
  // hourglass pass through the pooled scratch: dvdx[k] IS
  // delv[k + nelem/2], so this streaming loop carries a serial
  // dependence between the two "different" arrays — vectorizing it
  // under a wrong no-alias answer corrupts the lanes
  // (edge = 8 build: nelem = 64, so the pool carve-out is at 32)
  for (int k = 0; k < 32; k++) {
    dvdx[k] = delv[k] + delv[k + 31] * 0.5 + p[k] * 0.1;
  }
  for (int k = 0; k < nelem; k++) {
    delv[k] = delv[k] * 0.99 + q[k] * 0.01 + 0.001;
  }
  for (int k = 0; k < nelem; k++) {
    int n = k % nnode;
    fx[n] = fx[n] + dom->p[k] * 0.3 + delv[k] * 0.1;
    fy[n] = fy[n] + dom->q[k] * 0.2;
    fz[n] = fz[n] + dom->e[k] * 0.05;
  }
}

void CalcVelocityForNodes(struct Domain* dom, double dt) {
  int nnode = dom->nnode;
  double* xd = dom->xd;
  double* yd = dom->yd;
  double* zd = dom->zd;
  double* fx = dom->fx;
  double* fy = dom->fy;
  double* fz = dom->fz;
  for (int i = 0; i < nnode; i++) {
    xd[i] = xd[i] + fx[i] * dt;
    yd[i] = yd[i] + fy[i] * dt;
    zd[i] = zd[i] + fz[i] * dt;
  }
}

void CalcPositionForNodes(struct Domain* dom, double dt) {
  int nnode = dom->nnode;
  double* x = dom->x;
  double* y = dom->y;
  double* z = dom->z;
  double* xd = dom->xd;
  double* yd = dom->yd;
  double* zd = dom->zd;
  for (int i = 0; i < nnode; i++) {
    x[i] = x[i] + xd[i] * dt;
    y[i] = y[i] + yd[i] * dt;
    z[i] = z[i] + zd[i] * dt;
  }
}

void CalcEnergyForElems(struct Domain* dom, double dt) {
  int nelem = dom->nelem;
  double* e = dom->e;
  double* p = dom->p;
  double* q = dom->q;
  double* v = dom->v;
  double* delv = dom->delv;
  double* dvdx = dom->dvdx;
  int half = nelem / 2;
  for (int k = 0; k < nelem; k++) {
    double vnew = v[k] + delv[k] * dt * 0.01;
    // EOS correction through the pooled scratch: the second delv read
    // must observe the dvdx store (same memory), a store-to-load pair
    // an optimistic EarlyCSE breaks
    if (k >= half) {
      double before = delv[k];
      dvdx[k - half] = before * 0.5 + e[k] * 0.25;
      double after = delv[k];
      q[k] = q[k] + (after - before * 0.5) * 0.125;
    }
    if (vnew < 0.1) { vnew = 0.1; }
    double ssc = sqrt(fabs(e[k]) * 0.3 + 0.001);
    q[k] = q[k] * 0.5 + ssc * fabs(delv[k]) * 0.5;
    p[k] = e[k] * 0.6666 / vnew;
    e[k] = e[k] - 0.5 * delv[k] * (p[k] + q[k]) * dt;
    if (e[k] < 0.0000001) { e[k] = 0.0000001; }
    v[k] = vnew;
  }
}
'''

_TIMESTEP_SEQ = r'''
void LagrangeLeapFrog(struct Domain* dom, double dt) {
  CalcForceForNodes(dom);
  CalcVelocityForNodes(dom, dt);
  CalcPositionForNodes(dom, dt);
  CalcEnergyForElems(dom, dt);
}
'''

_MAIN_TMPL = r'''
int main() {
  struct Domain dom;
  domain_init(&dom, EDGE);
  double dt = 0.001;
  int steps = NSTEPS;
  double t0 = wtime();
  for (int s = 0; s < steps; s++) {
    LagrangeLeapFrog(&dom, dt);
  }
  double t1 = wtime();
  double esum = 0.0;
  for (int k = 0; k < dom.nelem; k++) { esum = esum + dom.e[k]; }
  double xsum = 0.0;
  for (int i = 0; i < dom.nnode; i++) { xsum = xsum + dom.x[i]; }
  printf("LULESH proxy\n");
  printf("Final Origin Energy = %.9f\n", esum);
  printf("Node position checksum = %.9f\n", xsum);
  printf("Iteration count = %d\n", steps);
  printf("Elapsed time = %.6f s\n", t1 - t0);
  return 0;
}
'''

_TIMED_FUNCTIONS = ["CalcForceForNodes", "CalcVelocityForNodes",
                    "CalcPositionForNodes", "CalcEnergyForElems",
                    "LagrangeLeapFrog"]


def _seq_source(edge: int = 8, steps: int = 4) -> str:
    return (_DOMAIN + _KERNELS_SEQ_BODY + _TIMESTEP_SEQ
            + _MAIN_TMPL.replace("EDGE", str(edge)).replace(
                "NSTEPS", str(steps)))


def _omp_source(edge: int = 8, steps: int = 4) -> str:
    body = _KERNELS_SEQ_BODY
    # parallelize the three node sweeps (as lulesh.cc does)
    body = body.replace(
        "  for (int i = 0; i < nnode; i++) {\n    fx[i] = 0.0;",
        "  #pragma omp parallel for\n"
        "  for (int i = 0; i < nnode; i++) {\n    fx[i] = 0.0;")
    body = body.replace(
        "  for (int i = 0; i < nnode; i++) {\n    xd[i] = xd[i] + fx[i] * dt;",
        "  #pragma omp parallel for\n"
        "  for (int i = 0; i < nnode; i++) {\n    xd[i] = xd[i] + fx[i] * dt;")
    body = body.replace(
        "  for (int i = 0; i < nnode; i++) {\n    x[i] = x[i] + xd[i] * dt;",
        "  #pragma omp parallel for\n"
        "  for (int i = 0; i < nnode; i++) {\n    x[i] = x[i] + xd[i] * dt;")
    return (_DOMAIN + body + _TIMESTEP_SEQ
            + _MAIN_TMPL.replace("EDGE", str(edge)).replace(
                "NSTEPS", str(steps)))


_MPI_MAIN = r'''
int main() {
  int rank = mpi_comm_rank();
  int nranks = mpi_comm_size();
  struct Domain dom;
  domain_init(&dom, EDGE);
  // rank-dependent initial perturbation (domain decomposition)
  for (int k = 0; k < dom.nelem; k++) {
    dom.e[k] = dom.e[k] + 0.001 * rank;
  }
  double dt = 0.001;
  int steps = NSTEPS;
  double t0 = wtime();
  for (int s = 0; s < steps; s++) {
    LagrangeLeapFrog(&dom, dt);
    // halo-style reduction: agree on the next time step
    double emax = 0.0;
    for (int k = 0; k < dom.nelem; k++) {
      if (dom.e[k] > emax) { emax = dom.e[k]; }
    }
    double gmax = mpi_allreduce_max_f64(emax);
    dt = 0.001 / (1.0 + gmax * 0.001);
  }
  double t1 = wtime();
  double esum = 0.0;
  for (int k = 0; k < dom.nelem; k++) { esum = esum + dom.e[k]; }
  double gsum = mpi_allreduce_sum_f64(esum);
  if (rank == 0) {
    printf("LULESH proxy (MPI, %d ranks)\n", nranks);
    printf("Final Origin Energy = %.9f\n", gsum);
    printf("Iteration count = %d\n", steps);
    printf("Elapsed time = %.6f s\n", t1 - t0);
  }
  return 0;
}
'''


def _mpi_source(edge: int = 10, steps: int = 4) -> str:
    return (_DOMAIN + _KERNELS_SEQ_BODY + _TIMESTEP_SEQ
            + _MPI_MAIN.replace("EDGE", str(edge)).replace(
                "NSTEPS", str(steps)))


def config_seq() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="lulesh-seq",
        sources=[SourceFile("lulesh.cc", _seq_source())],
        frontend="clang++",
        probe_functions=list(_TIMED_FUNCTIONS),
        output_filters=list(_FILTERS),
    )


def config_openmp() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="lulesh-openmp",
        sources=[SourceFile("lulesh.cc", _omp_source())],
        frontend="clang++",
        probe_functions=list(_TIMED_FUNCTIONS),
        num_threads=4,
        output_filters=list(_FILTERS),
    )


def config_mpi() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="lulesh-mpi",
        sources=[SourceFile("lulesh.cc", _mpi_source())],
        frontend="mpicxx",
        probe_functions=list(_TIMED_FUNCTIONS),
        nranks=4,
        output_filters=list(_FILTERS),
    )


register(
    VariantInfo("LULESH", "seq", "C++", "lulesh", 30810, 188826, 35, 131,
                416371, 668864, "+60.64%"),
    config_seq)
register(
    VariantInfo("LULESH", "openmp", "C++, OpenMP", "lulesh", 29981, 128537,
                15, 0, 195724, 385730, "+97.1%"),
    config_openmp)
register(
    VariantInfo("LULESH", "mpi", "C++, MPI", "lulesh", 28832, 160032,
                99, 207, 356965, 555141, "+55.5%"),
    config_mpi)
