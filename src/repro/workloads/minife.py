"""MiniFE: implicit unstructured finite-element CG solver from the
Mantevo suite (paper §V-F), "optimized OpenMP" (openmp-opt) variant.

A small CG iteration over a CSR matrix: SpMV, dot products, waxpby
updates, preceded by a stencil assembly phase whose 4-wide unrolled row
writes are SLP-vectorizable (Fig. 6: "# vector instructions generated"
+33%).

The pessimistic queries come from the assembly's *diagonal view*: the
solver keeps a separate ``diag`` pointer aimed into the CSR ``values``
array (a standard optimization in real FE codes); scaling rows through
``values`` while reading through ``diag`` is a true alias.
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"Total CG Time .*", "Total CG Time <T>")]

_SOURCE = r'''
// CSR matrix: 1-D Poisson-like band matrix, 3 entries per row

void assemble(double* values, int* cols, int* rowptr, double* diag,
              int nrows) {
  for (int r = 0; r < nrows; r++) {
    rowptr[r] = r * 3;
    int base = r * 3;
    values[base + 0] = -1.0;
    values[base + 1] = 4.0 + 0.01 * r;
    values[base + 2] = -1.0;
    cols[base + 0] = (r == 0) ? 0 : (r - 1);
    cols[base + 1] = r;
    cols[base + 2] = (r == nrows - 1) ? r : (r + 1);
  }
  rowptr[nrows] = nrows * 3;
  // row scaling through the diagonal view: diag[r] IS values[r*3+1]
  for (int r = 0; r < nrows; r++) {
    double d = diag[r * 3];
    values[r * 3 + 1] = d * 1.25;
    double dnew = diag[r * 3];
    values[r * 3 + 0] = values[r * 3 + 0] * (dnew / (d * 1.25));
  }
}

// 4-wide unrolled element-assembly: isomorphic lanes over two input
// views; the interleaved out-stores block SLP unless every (store,
// load) pair is proven no-alias (Fig. 6: SLP +33%)
void stencil_row4(double* out, double* left, double* right) {
  out[0] = left[0] + right[0];
  out[1] = left[1] + right[1];
  out[2] = left[2] + right[2];
  out[3] = left[3] + right[3];
}

void init_vectors(double* b, double* x, double* lo, double* hi,
                  int nrows) {
  for (int r = 0; r + 4 <= nrows; r += 4) {
    stencil_row4(b + r, lo + r, hi + r);
    x[r + 0] = 0.0;
    x[r + 1] = 0.0;
    x[r + 2] = 0.0;
    x[r + 3] = 0.0;
  }
}

void spmv(double* y, double* values, int* cols, int* rowptr, double* x,
          int nrows) {
  #pragma omp parallel for
  for (int r = 0; r < nrows; r++) {
    double sum = 0.0;
    int start = rowptr[r];
    int end = rowptr[r + 1];
    for (int j = start; j < end; j++) {
      sum = sum + values[j] * x[cols[j]];
    }
    y[r] = sum;
  }
}

double dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
  return s;
}

void waxpby(double* w, double alpha, double* x, double beta, double* y,
            int n) {
  #pragma omp parallel for
  for (int i = 0; i < n; i++) {
    w[i] = alpha * x[i] + beta * y[i];
  }
}

int main() {
  int nrows = 128;
  double* values = (double*)malloc(nrows * 3 * sizeof(double));
  int* cols = (int*)malloc(nrows * 3 * sizeof(int));
  int* rowptr = (int*)malloc((nrows + 1) * sizeof(int));
  double* b = (double*)malloc(nrows * sizeof(double));
  double* x = (double*)malloc(nrows * sizeof(double));
  double* r = (double*)malloc(nrows * sizeof(double));
  double* pv = (double*)malloc(nrows * sizeof(double));
  double* ap = (double*)malloc(nrows * sizeof(double));
  double* lo = (double*)malloc(nrows * sizeof(double));
  double* hi = (double*)malloc(nrows * sizeof(double));
  for (int i = 0; i < nrows; i++) {
    lo[i] = 0.5 + 0.001 * i;
    hi[i] = 0.5 + 0.0005 * i;
  }
  double* diag = values + 1;   // the diagonal view into values
  assemble(values, cols, rowptr, diag, nrows);
  init_vectors(b, x, lo, hi, nrows);
  double t0 = wtime();
  // r = b - A x (x = 0)  =>  r = b; p = r
  for (int i = 0; i < nrows; i++) { r[i] = b[i]; pv[i] = r[i]; }
  double rtrans = dot(r, r, nrows);
  int iters = 0;
  for (int it = 0; it < 8; it++) {
    spmv(ap, values, cols, rowptr, pv, nrows);
    double pap = dot(pv, ap, nrows);
    double alpha = rtrans / pap;
    waxpby(x, 1.0, x, alpha, pv, nrows);
    waxpby(r, 1.0, r, 0.0 - alpha, ap, nrows);
    double rnew = dot(r, r, nrows);
    double beta = rnew / rtrans;
    rtrans = rnew;
    waxpby(pv, 1.0, r, beta, pv, nrows);
    iters = iters + 1;
  }
  double t1 = wtime();
  double xnorm = sqrt(dot(x, x, nrows));
  printf("MiniFE (openmp-opt)\n");
  printf("rows = %d, CG iterations = %d\n", nrows, iters);
  printf("Final Resid Norm: %.9f\n", sqrt(rtrans));
  printf("solution norm = %.9f\n", xnorm);
  printf("Total CG Time %.6f s\n", t1 - t0);
  return 0;
}
'''


def config_openmp() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="minife-openmp",
        sources=[SourceFile("main.cpp", _SOURCE)],
        frontend="clang++",
        probe_files=["main.cpp"],
        num_threads=4,
        output_filters=list(_FILTERS),
    )


register(
    VariantInfo("MiniFE", "openmp", "C++, OpenMP", "main", 6592, 10852,
                58, 142, 134567, 149912, "+11.4%"),
    config_openmp)
