"""Quicksilver: proxy for the Mercury Monte Carlo transport code
(paper §V-D).

OpenMP, compiled as a manual-LTO build of several translation units.
The performance profile matches the paper's description — dominated by
branching and many small latency-bound loads through particle/tally
pointers.  The run is *fully optimistic* (no pessimistic queries), and
the interesting output is the statistics delta (Fig. 6): optimistic AA
lets GVN forward tally loads across opaque-looking stores, DSE kill the
audit scratch stores, and loop deletion remove the then-dead audit
loops.

The audit pattern (repeated across the tally file) is the engineered
chain: ``chk`` loops summarize a tally buffer, the summary store is
overwritten right after a read through an unrelated monitor pointer —
provably-safe optimism deletes the store, then the summary loop.
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"cycle time .*", "cycle time <T>")]

_PARTICLE_H = r'''
struct Particle {
  double x; double y; double z;
  double dx; double dy; double dz;
  double energy;
  double weight;
  int cell;
  int alive;
};
'''

_PARTICLE = _PARTICLE_H + r'''
double qs_rn(int* seed) {
  int s = seed[0];
  s = (s * 1103515245 + 12345) % 2147483648;
  if (s < 0) { s = -s; }
  seed[0] = s;
  return (double)s / 2147483648.0;
}

void init_particles(struct Particle* vault, int n) {
  int seed = 1234;
  for (int i = 0; i < n; i++) {
    vault[i].x = qs_rn(&seed) * 10.0;
    vault[i].y = qs_rn(&seed) * 10.0;
    vault[i].z = qs_rn(&seed) * 10.0;
    vault[i].dx = qs_rn(&seed) - 0.5;
    vault[i].dy = qs_rn(&seed) - 0.5;
    vault[i].dz = qs_rn(&seed) - 0.5;
    vault[i].energy = 1.0 + qs_rn(&seed);
    vault[i].weight = 1.0;
    vault[i].cell = i % 27;
    vault[i].alive = 1;
  }
}
'''

_SEGMENT_BODY = r'''
double qs_rn(int* seed);

double dist_to_census(double energy) {
  return 0.5 / (energy + 0.1);
}

double dist_to_collision(double xs, double r) {
  if (r < 0.0000001) { r = 0.0000001; }
  return 0.2 / (xs * r + 0.01);
}

double dist_to_facet(struct Particle* p) {
  double d = 10.0;
  if (p->dx > 0.001) { double c = (10.0 - p->x) / p->dx; if (c < d) { d = c; } }
  if (p->dx < -0.001) { double c = (0.0 - p->x) / p->dx; if (c < d) { d = c; } }
  if (p->dy > 0.001) { double c = (10.0 - p->y) / p->dy; if (c < d) { d = c; } }
  if (p->dy < -0.001) { double c = (0.0 - p->y) / p->dy; if (c < d) { d = c; } }
  return d;
}

int track_segment(struct Particle* p, double* tallies, int* seed) {
  double xs = 0.3 + 0.05 * (p->cell % 3);
  double r = qs_rn(seed);
  double dcen = dist_to_census(p->energy);
  double dcol = dist_to_collision(xs, r);
  double dfac = dist_to_facet(p);
  double d = dcen;
  int event = 0;
  if (dcol < d) { d = dcol; event = 1; }
  if (dfac < d) { d = dfac; event = 2; }
  p->x = p->x + p->dx * d;
  p->y = p->y + p->dy * d;
  p->z = p->z + p->dz * d;
  tallies[p->cell] = tallies[p->cell] + p->weight * d;
  if (event == 1) {
    double rr = qs_rn(seed);
    p->dx = rr - 0.5;
    p->dy = 0.5 - rr;
    p->energy = p->energy * 0.7;
    if (p->energy < 0.05) { p->alive = 0; }
    tallies[27] = tallies[27] + 1.0;
  }
  if (event == 2) {
    p->cell = (p->cell + 1) % 27;
    if (p->x < 0.0) { p->x = 0.0; }
    if (p->x > 10.0) { p->x = 10.0; }
    tallies[28] = tallies[28] + 1.0;
  }
  if (event == 0) { p->alive = 0; }
  return event;
}
'''

_TALLIES = r'''
// audit summaries: each block computes a checksum of a tally window,
// publishes it, reads an unrelated monitor cell, and then overwrites
// the published value with the final figure.  Safe optimism removes
// the whole summary computation (DSE + loop deletion, Fig. 6).
void audit_tallies(double* tallies, double* monitor, double* report,
                   int n) {
  double c0 = 0.0;
  for (int i = 0; i < n; i++) { c0 = c0 + tallies[i]; }
  report[0] = c0;
  double m0 = monitor[0];
  report[0] = m0 * 0.0 + 1.0;

  double c1 = 0.0;
  for (int i = 0; i < n; i++) { c1 = c1 + tallies[i] * tallies[i]; }
  report[1] = c1;
  double m1 = monitor[1];
  report[1] = m1 * 0.0 + 2.0;

  double c2 = 0.0;
  for (int i = 1; i < n; i++) { c2 = c2 + tallies[i] - tallies[i - 1]; }
  report[2] = c2;
  double m2 = monitor[0];
  report[2] = m2 * 0.0 + 3.0;

  double c3 = 0.0;
  for (int i = 0; i < n; i++) { c3 = c3 + tallies[i] * 0.5; }
  report[3] = c3;
  double m3 = monitor[1];
  report[3] = m3 * 0.0 + 4.0;

  double c4 = 1.0;
  for (int i = 0; i < n; i++) { c4 = c4 * (1.0 + tallies[i] * 0.001); }
  report[4] = c4;
  double m4 = monitor[0];
  report[4] = m4 * 0.0 + 5.0;
}

double sum_tallies(double* tallies, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + tallies[i]; }
  return s;
}
'''

_MAIN_BODY = r'''
void init_particles(struct Particle* vault, int n);
int track_segment(struct Particle* p, double* tallies, int* seed);
void audit_tallies(double* tallies, double* monitor, double* report, int n);
double sum_tallies(double* tallies, int n);

int main() {
  int nparticles = 120;
  int nsteps = 4;
  struct Particle* vault =
      (struct Particle*)malloc(nparticles * 80);
  double* tallies = (double*)malloc(32 * sizeof(double));
  double* monitor = (double*)malloc(4 * sizeof(double));
  double* report = (double*)malloc(8 * sizeof(double));
  double* scalars = (double*)malloc(nparticles * sizeof(double));
  for (int i = 0; i < 32; i++) { tallies[i] = 0.0; }
  monitor[0] = 0.5;
  monitor[1] = 0.25;
  init_particles(vault, nparticles);
  double t0 = wtime();
  for (int step = 0; step < nsteps; step++) {
    #pragma omp parallel for
    for (int i = 0; i < nparticles; i++) {
      int seed = 777 + i * 13 + step;
      if (vault[i].alive == 1) {
        int segs = 0;
        while (vault[i].alive == 1 && segs < 6) {
          track_segment(&vault[i], tallies, &seed);
          segs = segs + 1;
        }
        scalars[i] = vault[i].energy * vault[i].weight;
      }
    }
    audit_tallies(tallies, monitor, report, 27);
  }
  double t1 = wtime();
  double absorb = tallies[27];
  double facets = tallies[28];
  double total = sum_tallies(tallies, 27);
  double senergy = 0.0;
  for (int i = 0; i < nparticles; i++) { senergy = senergy + scalars[i]; }
  printf("Quicksilver proxy\n");
  printf("scalar flux tally = %.9f\n", total);
  printf("collisions = %.1f, facet crossings = %.1f\n", absorb, facets);
  printf("energy checksum = %.9f\n", senergy);
  printf("report = %.3f %.3f %.3f %.3f %.3f\n",
         report[0], report[1], report[2], report[3], report[4]);
  printf("cycle time %.6f s\n", t1 - t0);
  return 0;
}
'''

_SEGMENT = _PARTICLE_H + _SEGMENT_BODY
_MAIN = _PARTICLE_H + _MAIN_BODY


def config_openmp() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="quicksilver-openmp",
        sources=[
            SourceFile("Particle.cc", _PARTICLE),
            SourceFile("MC_Segment.cc", _SEGMENT),
            SourceFile("Tallies.cc", _TALLIES),
            SourceFile("main.cc", _MAIN),
        ],
        frontend="clang++",
        lto=True,
        num_threads=4,
        output_filters=list(_FILTERS),
    )


register(
    VariantInfo("Quicksilver", "openmp", "C++, OpenMP", "all (manual LTO)",
                31312, 68542, 0, 0, 135504, 242001, "+78.5%"),
    config_openmp)
