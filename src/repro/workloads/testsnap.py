"""TestSNAP: proxy for the SNAP force kernel in LAMMPS (paper §V-A).

Four configurations, as in the paper: sequential C++, OpenMP, a
Kokkos-style CUDA version (device-side probing only), and a
Fortran-style manual-LTO build.  The computation is the same scaled-down
bispectrum-ish force kernel: per (atom, neighbor) expansion
coefficients ``ulist``, contraction into ``ylist``, and the force
accumulation ``compute_deidrj`` — the paper's hot function.

The OpenMP version contains the paper's four dangerous query shapes in
the outlined region of ``compute_deidrj`` (Fig. 3): the ``this``
(struct SNA pointer) vs. loaded data-pointer pairs, a pair of
``SNAcomplex*`` loaded from different ``dptr`` slots, and loop-carried
accesses to ``SNAcomplex`` elements.  They are *genuine* aliases — the
struct's scratch pointer aims back into the struct — so optimistic
answers change the printed checksum.
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"grind time .*", "grind time <T>")]

# MiniC has no preprocessor; model sizes are inlined into the sources
# (scaled down from the paper's inputs so probing stays fast).

_COMMON_DECLS = r'''
struct SNAcomplex { double re; double im; };

struct SNA {
  double* coeffs;
  struct SNAcomplex* ulist;
  struct SNAcomplex* ylist;
  double* dedr;
  double* rij;
  double* scratch;
  double* dview;
  struct SNAcomplex* yview;
  int natoms;
  int nnbor;
  int idxu_max;
  double accum;
};
'''

_INIT = r'''
void sna_init(struct SNA* snap, int natoms, int nnbor, int idxu_max) {
  snap->natoms = natoms;
  snap->nnbor = nnbor;
  snap->idxu_max = idxu_max;
  snap->coeffs = (double*)malloc(idxu_max * sizeof(double));
  snap->ulist = (struct SNAcomplex*)malloc(natoms * nnbor * idxu_max * 16);
  snap->ylist = (struct SNAcomplex*)malloc(natoms * idxu_max * 16);
  snap->dedr = (double*)malloc(natoms * nnbor * 3 * sizeof(double));
  snap->rij = (double*)malloc(natoms * nnbor * 3 * sizeof(double));
  snap->accum = 0.0;
  for (int k = 0; k < idxu_max; k++) {
    snap->coeffs[k] = 0.05 + 0.01 * k;
  }
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int base = (a * nnbor + j) * 3;
      snap->rij[base + 0] = 0.3 + 0.011 * a + 0.07 * j;
      snap->rij[base + 1] = 0.5 - 0.013 * a + 0.03 * j;
      snap->rij[base + 2] = 0.2 + 0.017 * a - 0.02 * j;
    }
  }
}
'''

_COMPUTE_UI = r'''
void compute_ui(struct SNA* snap) {
  int natoms = snap->natoms;
  int nnbor = snap->nnbor;
  int kmax = snap->idxu_max;
  struct SNAcomplex* ulist = snap->ulist;
  double* rij = snap->rij;
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int rbase = (a * nnbor + j) * 3;
      double x = rij[rbase + 0];
      double y = rij[rbase + 1];
      double z = rij[rbase + 2];
      double r2 = x * x + y * y + z * z + 1.0;
      int ubase = (a * nnbor + j) * kmax;
      double cr = 1.0;
      double ci = 0.0;
      for (int k = 0; k < kmax; k++) {
        double nr = cr * x - ci * y;
        double ni = cr * y + ci * x;
        ulist[ubase + k].re = nr / r2;
        ulist[ubase + k].im = ni / r2;
        cr = nr * 0.5 + z * 0.01;
        ci = ni * 0.5;
      }
    }
  }
}
'''

_COMPUTE_YI = r'''
void compute_yi(struct SNA* snap) {
  int natoms = snap->natoms;
  int nnbor = snap->nnbor;
  int kmax = snap->idxu_max;
  struct SNAcomplex* ulist = snap->ulist;
  struct SNAcomplex* ylist = snap->ylist;
  double* coeffs = snap->coeffs;
  // streaming contraction: the inner loop accumulates directly into
  // the ylist cell; only (almost) perfect alias information lets the
  // compiler promote the cell and the coefficient to registers
  for (int a = 0; a < natoms; a++) {
    for (int k = 0; k < kmax; k++) {
      ylist[a * kmax + k].re = 0.0;
      ylist[a * kmax + k].im = 0.0;
      for (int j = 0; j < nnbor; j++) {
        int u = (a * nnbor + j) * kmax + k;
        ylist[a * kmax + k].re = ylist[a * kmax + k].re
                               + ulist[u].re * coeffs[k];
        ylist[a * kmax + k].im = ylist[a * kmax + k].im
                               + ulist[u].im * coeffs[k];
      }
    }
  }
}
'''

# sequential compute_deidrj: direct accumulation, no scratch aliasing
_COMPUTE_DEIDRJ_SEQ = r'''
void compute_deidrj(struct SNA* snap) {
  int natoms = snap->natoms;
  int nnbor = snap->nnbor;
  int kmax = snap->idxu_max;
  struct SNAcomplex* ulist = snap->ulist;
  struct SNAcomplex* ylist = snap->ylist;
  double* dedr = snap->dedr;
  double acc = 0.0;
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int ubase = (a * nnbor + j) * kmax;
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      for (int k = 1; k < kmax; k++) {
        double ur = ulist[ubase + k].re;
        double ui = ulist[ubase + k].im;
        double upr = ulist[ubase + k - 1].re;
        double yr = ylist[a * kmax + k].re;
        double yi = ylist[a * kmax + k].im;
        fx = fx + ur * yr + ui * yi;
        fy = fy + ur * yi - ui * yr;
        fz = fz + upr * yr * 0.5;
      }
      int dbase = (a * nnbor + j) * 3;
      dedr[dbase + 0] = fx * 2.0;
      dedr[dbase + 1] = fy * 2.0;
      dedr[dbase + 2] = fz * 2.0;
      acc = acc + fx + fy + fz;
    }
  }
  snap->accum = snap->accum + acc;
}
'''

# OpenMP compute_deidrj: the parallel region accumulates through
# snap->scratch, which init points AT &snap->accum — the genuine alias
# behind the four pessimistic queries of Fig. 3.
_COMPUTE_DEIDRJ_OMP = r'''
void compute_deidrj(struct SNA* snap) {
  int natoms = snap->natoms;
  int nnbor = snap->nnbor;
  int kmax = snap->idxu_max;
  #pragma omp parallel for
  for (int a = 0; a < natoms; a++) {
    struct SNAcomplex* ulist = snap->ulist;
    struct SNAcomplex* ylist = snap->ylist;
    double* dedr = snap->dedr;
    double* scratch = snap->scratch;   // points at &snap->accum
    double* dview = snap->dview;       // second handle on dedr
    struct SNAcomplex* yview = snap->yview;  // second handle on ylist
    for (int j = 0; j < nnbor; j++) {
      int ubase = (a * nnbor + j) * kmax;
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      for (int k = 1; k < kmax; k++) {
        double ur = ulist[ubase + k].re;
        double ui = ulist[ubase + k].im;
        double upr = ulist[ubase + k - 1].re;
        double yr = ylist[a * kmax + k].re;
        double yi = ylist[a * kmax + k].im;
        fx = fx + ur * yr + ui * yi;
        fy = fy + ur * yi - ui * yr;
        fz = fz + upr * yr * 0.5;
      }
      int dbase = (a * nnbor + j) * 3;
      dedr[dbase + 0] = fx * 2.0;
      dview[dbase + 0] = dview[dbase + 0] * 0.5;
      dedr[dbase + 1] = fy * 2.0 + dedr[dbase + 0] * 0.25;
      scratch[0] = scratch[0] + fx + fy + fz;
      double chk = snap->accum;
      dedr[dbase + 2] = fz * 2.0 + chk * 0.125;
      yview[a * kmax + 1].re = chk * 0.25;
    }
  }
}
'''

_MAIN = r'''
int main() {
  struct SNA snap;
  sna_init(&snap, 10, 6, 12);
  snap.scratch = &snap.accum;
  snap.dview = snap.dedr;     // a second handle onto the force array
  snap.yview = snap.ylist;    // a second handle onto the y expansion
  int niter = 2;
  double t0 = wtime();
  for (int it = 0; it < niter; it++) {
    compute_ui(&snap);
    compute_yi(&snap);
    compute_deidrj(&snap);
  }
  double t1 = wtime();
  double rms = 0.0;
  int nd = snap.natoms * snap.nnbor * 3;
  for (int i = 0; i < nd; i++) {
    rms = rms + snap.dedr[i] * snap.dedr[i];
  }
  rms = sqrt(rms / nd);
  printf("TestSNAP force kernel\n");
  printf("RMS force = %.9f\n", rms);
  printf("accum checksum = %.9f\n", snap.accum);
  printf("grind time %.6f msec/atom-step\n", (t1 - t0) * 1000.0);
  return 0;
}
'''


def _seq_source() -> str:
    return (_COMMON_DECLS + _INIT + _COMPUTE_UI + _COMPUTE_YI
            + _COMPUTE_DEIDRJ_SEQ + _MAIN)


def _omp_source() -> str:
    return (_COMMON_DECLS + _INIT + _COMPUTE_UI + _COMPUTE_YI
            + _COMPUTE_DEIDRJ_OMP + _MAIN)


def config_seq() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="testsnap-seq",
        sources=[SourceFile("sna.cpp", _seq_source())],
        frontend="clang++",
        probe_files=["sna.cpp"],
        output_filters=list(_FILTERS),
    )


def config_openmp() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="testsnap-openmp",
        sources=[SourceFile("sna.cpp", _omp_source())],
        frontend="clang++",
        probe_files=["sna.cpp"],
        num_threads=4,
        output_filters=list(_FILTERS),
    )


# -- Kokkos / CUDA ------------------------------------------------------------

_CUDA_SOURCE = _COMMON_DECLS + _INIT + r'''
__global__ void zero_kernel(double* buf, int n) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int i = t; i < n; i += total) { buf[i] = 0.0; }
}

__global__ void scale_kernel(double* buf, double s, int n) {
  int t = cuda_thread_id();
  int total = cuda_num_threads();
  for (int i = t; i < n; i += total) { buf[i] = buf[i] * s; }
}

__global__ void compute_ui_kernel(struct SNAcomplex* ulist, double* rij,
                                  int nnbor, int kmax, int natoms) {
  int a = cuda_thread_id();
  if (a < natoms) {
    for (int j = 0; j < nnbor; j++) {
      int rbase = (a * nnbor + j) * 3;
      double x = rij[rbase + 0];
      double y = rij[rbase + 1];
      double z = rij[rbase + 2];
      double r2 = x * x + y * y + z * z + 1.0;
      int ubase = (a * nnbor + j) * kmax;
      double cr = 1.0;
      double ci = 0.0;
      for (int k = 0; k < kmax; k++) {
        double nr = cr * x - ci * y;
        double ni = cr * y + ci * x;
        ulist[ubase + k].re = nr / r2;
        ulist[ubase + k].im = ni / r2;
        cr = nr * 0.5 + z * 0.01;
        ci = ni * 0.5;
      }
    }
  }
}

__global__ void compute_yi_kernel(struct SNAcomplex* ulist,
                                  struct SNAcomplex* ylist, double* coeffs,
                                  int nnbor, int kmax, int natoms) {
  int a = cuda_thread_id();
  if (a < natoms) {
    for (int k = 0; k < kmax; k++) {
      ylist[a * kmax + k].re = 0.0;
      ylist[a * kmax + k].im = 0.0;
      for (int j = 0; j < nnbor; j++) {
        int u = (a * nnbor + j) * kmax + k;
        ylist[a * kmax + k].re = ylist[a * kmax + k].re
                               + ulist[u].re * coeffs[k];
        ylist[a * kmax + k].im = ylist[a * kmax + k].im
                               + ulist[u].im * coeffs[k];
      }
    }
  }
}

__global__ void compute_deidrj_kernel(struct SNAcomplex* ulist,
                                      struct SNAcomplex* ylist,
                                      double* dedr, int nnbor, int kmax,
                                      int natoms) {
  int a = cuda_thread_id();
  if (a < natoms) {
    for (int j = 0; j < nnbor; j++) {
      int ubase = (a * nnbor + j) * kmax;
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      for (int k = 1; k < kmax; k++) {
        double ur = ulist[ubase + k].re;
        double ui = ulist[ubase + k].im;
        double upr = ulist[ubase + k - 1].re;
        double yr = ylist[a * kmax + k].re;
        double yi = ylist[a * kmax + k].im;
        fx = fx + ur * yr + ui * yi;
        fy = fy + ur * yi - ui * yr;
        fz = fz + upr * yr * 0.5;
      }
      int dbase = (a * nnbor + j) * 3;
      dedr[dbase + 0] = fx * 2.0;
      dedr[dbase + 1] = fy * 2.0;
      dedr[dbase + 2] = fz * 2.0;
    }
  }
}

__global__ void reduce_kernel(double* dedr, double* out, int n) {
  int t = cuda_thread_id();
  if (t == 0) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + dedr[i]; }
    out[0] = s;
  }
}

__global__ void rms_kernel(double* dedr, double* out, int n) {
  int t = cuda_thread_id();
  if (t == 0) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + dedr[i] * dedr[i]; }
    out[0] = sqrt(s / n);
  }
}

int main() {
  struct SNA snap;
  sna_init(&snap, 10, 6, 12);
  int nd = snap.natoms * snap.nnbor * 3;
  double* out = (double*)malloc(2 * sizeof(double));
  double t0 = wtime();
  for (int it = 0; it < 2; it++) {
    launch(zero_kernel, 1, 32, snap.dedr, nd);
    launch(compute_ui_kernel, 1, 12, snap.ulist, snap.rij,
           snap.nnbor, snap.idxu_max, snap.natoms);
    launch(compute_yi_kernel, 1, 12, snap.ulist, snap.ylist, snap.coeffs,
           snap.nnbor, snap.idxu_max, snap.natoms);
    launch(compute_deidrj_kernel, 1, 12, snap.ulist, snap.ylist, snap.dedr,
           snap.nnbor, snap.idxu_max, snap.natoms);
    launch(scale_kernel, 1, 32, snap.dedr, 1.0, nd);
  }
  launch(reduce_kernel, 1, 1, snap.dedr, out, nd);
  launch(rms_kernel, 1, 1, snap.dedr, out + 1, nd);
  cuda_device_synchronize();
  double t1 = wtime();
  printf("TestSNAP Kokkos/CUDA force kernel\n");
  printf("RMS force = %.9f\n", out[1]);
  printf("accum checksum = %.9f\n", out[0]);
  printf("grind time %.6f msec/atom-step\n", (t1 - t0) * 1000.0);
  return 0;
}
'''


def config_kokkos_cuda() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="testsnap-kokkos-cuda",
        sources=[SourceFile("sna.cpp", _CUDA_SOURCE)],
        frontend="clang++",
        probe_files=["sna.cpp"],
        target_filter="nvptx",          # device-side probing only (§IV-E)
        output_filters=list(_FILTERS),
    )


# -- Fortran (fir-dev) manual-LTO build -------------------------------------
# Flang-style lowering: flat arrays with explicit index arithmetic, no
# restrict, lots of temporaries, and an EQUIVALENCE-style overlap between
# the setup work buffer and the coefficient array — the genuine aliases
# behind the pessimistic queries (scaled from the paper's 237).

_FORTRAN_MATHLIB = r'''
double f90_dot(double* a, double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * b[i]; }
  return s;
}
double f90_nrm2(double* a, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i] * a[i]; }
  return sqrt(s);
}
void f90_copy(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i]; }
}
void f90_scal(double* a, double s, int n) {
  for (int i = 0; i < n; i++) { a[i] = a[i] * s; }
}
'''

_FORTRAN_SETUP = r'''
double f90_dot(double* a, double* b, int n);
double f90_nrm2(double* a, int n);
void f90_copy(double* dst, double* src, int n);
void f90_scal(double* a, double s, int n);

// EQUIVALENCE(work, coeffs(1)): the work buffer overlaps the
// coefficient array, as legacy Fortran storage association allows.
// storage-associated in-place smoothing: dst and src overlap by one
void f90_smooth(double* dst, double* src, int n) {
  for (int k = 0; k < n; k++) {
    dst[k] = src[k] * 0.75 + dst[k] * 0.25;
  }
}

// Gauss-Seidel-style sweep where lo/hi windows share storage
void f90_sweep(double* lo, double* hi, int n) {
  for (int k = 0; k < n; k++) {
    double a = lo[k];
    hi[k] = hi[k] * 0.5 + a * 0.5;
    lo[k] = a + hi[k] * 0.125;
  }
}

void snap_setup(double* coeffs, double* work, double* rij,
                double* params, int kmax, int natoms, int nnbor) {
  for (int k = 0; k < kmax; k++) { coeffs[k] = 0.05 + 0.01 * k; }
  // storage-associated smoothing: work IS coeffs (offset 0)
  for (int k = 1; k < kmax; k++) {
    work[k] = coeffs[k] * 0.9 + coeffs[k - 1] * 0.1;
  }
  // EQUIVALENCE'd window updates (lo = coeffs, hi = coeffs + 1)
  f90_smooth(work + 1, coeffs, kmax - 1);
  f90_sweep(coeffs, work + 1, kmax - 1);
  double nrm = f90_nrm2(coeffs, kmax);
  f90_scal(coeffs, 1.0 / nrm, kmax);
  // geometry parameters live in memory (Fortran module variables);
  // the loads are loop-invariant, but only optimistic aliasing proves
  // they survive the rij stores (the paper's setup-stage speedup)
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int base = (a * nnbor + j) * 3;
      rij[base + 0] = params[0] + params[1] * a + params[2] * j;
      rij[base + 1] = params[3] - params[4] * a + params[5] * j;
      rij[base + 2] = params[6] + params[7] * a - params[8] * j;
    }
  }
}
'''

_FORTRAN_KERNEL = r'''
void snap_compute(double* ure, double* uim, double* yre, double* yim,
                  double* coeffs, double* rij, double* dedr,
                  int kmax, int natoms, int nnbor) {
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int rbase = (a * nnbor + j) * 3;
      double x = rij[rbase + 0];
      double y = rij[rbase + 1];
      double z = rij[rbase + 2];
      double r2 = x * x + y * y + z * z + 1.0;
      int ubase = (a * nnbor + j) * kmax;
      double cr = 1.0;
      double ci = 0.0;
      for (int k = 0; k < kmax; k++) {
        double nr = cr * x - ci * y;
        double ni = cr * y + ci * x;
        ure[ubase + k] = nr / r2;
        uim[ubase + k] = ni / r2;
        cr = nr * 0.5 + z * 0.01;
        ci = ni * 0.5;
      }
    }
  }
  double colr[16];
  double coli[16];
  for (int a = 0; a < natoms; a++) {
    for (int k = 0; k < kmax; k++) {
      colr[k] = 0.0;
      coli[k] = 0.0;
      for (int j = 0; j < nnbor; j++) {
        int u = (a * nnbor + j) * kmax + k;
        colr[k] = colr[k] + ure[u] * coeffs[k];
        coli[k] = coli[k] + uim[u] * coeffs[k];
      }
    }
    for (int k = 0; k < kmax; k++) {
      yre[a * kmax + k] = colr[k];
      yim[a * kmax + k] = coli[k];
    }
  }
  for (int a = 0; a < natoms; a++) {
    for (int j = 0; j < nnbor; j++) {
      int ubase = (a * nnbor + j) * kmax;
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      for (int k = 1; k < kmax; k++) {
        double ur = ure[ubase + k];
        double ui = uim[ubase + k];
        double upr = ure[ubase + k - 1];
        double yr = yre[a * kmax + k];
        double yi = yim[a * kmax + k];
        fx = fx + ur * yr + ui * yi;
        fy = fy + ur * yi - ui * yr;
        fz = fz + upr * yr * 0.5;
      }
      int dbase = (a * nnbor + j) * 3;
      dedr[dbase + 0] = fx * 2.0;
      dedr[dbase + 1] = fy * 2.0;
      dedr[dbase + 2] = fz * 2.0;
    }
  }
}
'''

_FORTRAN_MAIN = r'''
void snap_setup(double* coeffs, double* work, double* rij,
                double* params, int kmax, int natoms, int nnbor);
void snap_compute(double* ure, double* uim, double* yre, double* yim,
                  double* coeffs, double* rij, double* dedr,
                  int kmax, int natoms, int nnbor);
double f90_nrm2(double* a, int n);

int main() {
  int natoms = 10;
  int nnbor = 6;
  int kmax = 12;
  double* coeffs = (double*)malloc(kmax * sizeof(double));
  double* rij = (double*)malloc(natoms * nnbor * 3 * sizeof(double));
  double* ure = (double*)malloc(natoms * nnbor * kmax * sizeof(double));
  double* uim = (double*)malloc(natoms * nnbor * kmax * sizeof(double));
  double* yre = (double*)malloc(natoms * kmax * sizeof(double));
  double* yim = (double*)malloc(natoms * kmax * sizeof(double));
  double* dedr = (double*)malloc(natoms * nnbor * 3 * sizeof(double));
  double* params = (double*)malloc(9 * sizeof(double));
  params[0] = 0.3; params[1] = 0.011; params[2] = 0.07;
  params[3] = 0.5; params[4] = 0.013; params[5] = 0.03;
  params[6] = 0.2; params[7] = 0.017; params[8] = 0.02;
  double t0 = wtime();
  // EQUIVALENCE: the setup work array is storage-associated with coeffs
  snap_setup(coeffs, coeffs, rij, params, kmax, natoms, nnbor);
  double tsetup = wtime() - t0;
  for (int it = 0; it < 2; it++) {
    snap_compute(ure, uim, yre, yim, coeffs, rij, dedr,
                 kmax, natoms, nnbor);
  }
  double t1 = wtime();
  double rms = f90_nrm2(dedr, natoms * nnbor * 3);
  printf("TestSNAP (Flang fir-dev, manual LTO)\n");
  printf("RMS force = %.9f\n", rms);
  printf("setup time %.6f s\n", tsetup);
  printf("grind time %.6f msec/atom-step\n", (t1 - t0) * 1000.0);
  return 0;
}
'''


def config_fortran() -> BenchmarkConfig:
    return BenchmarkConfig(
        name="testsnap-fortran",
        sources=[
            SourceFile("snap_math.f90", _FORTRAN_MATHLIB),
            SourceFile("snap_setup.f90", _FORTRAN_SETUP),
            SourceFile("snap_kernel.f90", _FORTRAN_KERNEL),
            SourceFile("snap_main.f90", _FORTRAN_MAIN),
        ],
        frontend="flang",
        lto=True,                        # manual LTO: all files, one module
        output_filters=list(_FILTERS) + [(r"setup time .*", "setup time <T>")],
    )


register(
    VariantInfo("TestSNAP", "seq", "C++", "sna", 30101, 38076, 0, 0,
                44259, 95487, "+115.7%"),
    config_seq)
register(
    VariantInfo("TestSNAP", "openmp", "C++, OpenMP", "sna", 3856, 12514,
                4, 265, 19152, 34425, "+79.7%"),
    config_openmp)
register(
    VariantInfo("TestSNAP", "kokkos-cuda", "C++, Kokkos, CUDA", "sna",
                9110, 54192, 0, 0, 118623, 149525, "+26%"),
    config_kokkos_cuda)
register(
    VariantInfo("TestSNAP", "fortran", "Fortran", "all (manual LTO)",
                32810, 52539, 237, 69, 377862, 478249, "+26.5%"),
    config_fortran)
