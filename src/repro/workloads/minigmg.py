"""MiniGMG: compact geometric multigrid benchmark (paper §V-G).

Three code versions of the ``operators`` file, as in the paper:

* ``ompif``   — OpenMP worksharing loops;
* ``omptask`` — a mix of worksharing loops and sequential "task" tiles;
* ``sse``     — explicit 4-wide manual unrolling (the SSE-intrinsics
  style), which the SLP vectorizer re-rolls into vector code.

MiniGMG's build historically used Intel's ``-fno-alias`` — globally
assuming no aliasing — so, exactly as the paper expects, *all* variants
pass the tests under a fully optimistic sequence, and the ompif version
is the one that gains measurably (the vectorizable smooth sweep only
vectorizes once the residual alias queries are answered no-alias).
"""

from __future__ import annotations

from ..oraql.config import BenchmarkConfig, SourceFile
from .base import VariantInfo, register

_FILTERS = [(r"total time .*", "total time <T>")]

_COMMON = r'''
// one level of a 1-D multigrid hierarchy; all grids are distinct
// allocations (the code is written -fno-alias clean)

void residual(double* res, double* phi, double* rhs, int n) {
  for (int i = 1; i < n - 1; i++) {
    res[i] = rhs[i] - (phi[i - 1] - 2.0 * phi[i] + phi[i + 1]);
  }
}

void restriction(double* coarse, double* fine, int nc) {
  for (int i = 1; i < nc - 1; i++) {
    coarse[i] = 0.25 * fine[2 * i - 1] + 0.5 * fine[2 * i]
              + 0.25 * fine[2 * i + 1];
  }
}

void prolong(double* fine, double* coarse, int nc) {
  for (int i = 1; i < nc - 1; i++) {
    fine[2 * i] = fine[2 * i] + coarse[i];
    fine[2 * i + 1] = fine[2 * i + 1]
                    + 0.5 * (coarse[i] + coarse[i + 1]);
  }
}

double grid_norm(double* g, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) { s = s + g[i] * g[i]; }
  return sqrt(s / n);
}
'''

# Jacobi smooth, three styles.  out/in are distinct buffers at every
# call site; only alias analysis does not know that.
_SMOOTH_OMPIF = r'''
void smooth(double* out, double* in, double* rhs, int n) {
  #pragma omp parallel for
  for (int i = 1; i < n - 1; i++) {
    out[i] = in[i] + 0.3333 * (rhs[i] - (in[i - 1] - 2.0 * in[i]
                                         + in[i + 1]));
  }
}
'''

_SMOOTH_OMPTASK = r'''
void smooth_tile(double* out, double* in, double* rhs, int lo, int hi) {
  for (int i = lo; i < hi; i++) {
    out[i] = in[i] + 0.3333 * (rhs[i] - (in[i - 1] - 2.0 * in[i]
                                         + in[i + 1]));
  }
}

void smooth(double* out, double* in, double* rhs, int n) {
  int mid = n / 2;
  #pragma omp parallel for
  for (int i = 1; i < mid; i++) {
    out[i] = in[i] + 0.3333 * (rhs[i] - (in[i - 1] - 2.0 * in[i]
                                         + in[i + 1]));
  }
  // the second half is dispatched as sequential "tasks"
  smooth_tile(out, in, rhs, mid, n - 1);
}
'''

_SMOOTH_SSE = r'''
void smooth(double* out, double* in, double* rhs, int n) {
  // explicit 4-wide unrolling (SSE-intrinsics style)
  int i = 1;
  while (i + 4 <= n - 1) {
    out[i + 0] = in[i + 0] + 0.3333 * (rhs[i + 0]
        - (in[i - 1] - 2.0 * in[i + 0] + in[i + 1]));
    out[i + 1] = in[i + 1] + 0.3333 * (rhs[i + 1]
        - (in[i + 0] - 2.0 * in[i + 1] + in[i + 2]));
    out[i + 2] = in[i + 2] + 0.3333 * (rhs[i + 2]
        - (in[i + 1] - 2.0 * in[i + 2] + in[i + 3]));
    out[i + 3] = in[i + 3] + 0.3333 * (rhs[i + 3]
        - (in[i + 2] - 2.0 * in[i + 3] + in[i + 4]));
    i = i + 4;
  }
  while (i < n - 1) {
    out[i] = in[i] + 0.3333 * (rhs[i] - (in[i - 1] - 2.0 * in[i]
                                         + in[i + 1]));
    i = i + 1;
  }
}
'''

_MAIN = r'''
int main() {
  int n = 128;
  int nc = 64;
  double* phi = (double*)malloc(n * sizeof(double));
  double* tmp = (double*)malloc(n * sizeof(double));
  double* rhs = (double*)malloc(n * sizeof(double));
  double* res = (double*)malloc(n * sizeof(double));
  double* crhs = (double*)malloc(nc * sizeof(double));
  double* cphi = (double*)malloc(nc * sizeof(double));
  for (int i = 0; i < n; i++) {
    phi[i] = 0.0;
    tmp[i] = 0.0;
    rhs[i] = sin(0.1 * i) * 0.5;
    res[i] = 0.0;
  }
  for (int i = 0; i < nc; i++) { crhs[i] = 0.0; cphi[i] = 0.0; }
  double t0 = wtime();
  for (int cycle = 0; cycle < 3; cycle++) {
    smooth(tmp, phi, rhs, n);
    smooth(phi, tmp, rhs, n);
    residual(res, phi, rhs, n);
    restriction(crhs, res, nc);
    for (int i = 0; i < nc; i++) { cphi[i] = crhs[i] * 0.5; }
    prolong(phi, cphi, nc);
  }
  double t1 = wtime();
  printf("miniGMG proxy\n");
  printf("residual norm = %.9f\n", grid_norm(res, n));
  printf("phi norm = %.9f\n", grid_norm(phi, n));
  printf("total time %.6f s\n", t1 - t0);
  return 0;
}
'''


def _cfg(variant: str, smooth_src: str, filename: str) -> BenchmarkConfig:
    return BenchmarkConfig(
        name=f"minigmg-{variant}",
        sources=[SourceFile(filename, _COMMON + smooth_src + _MAIN)],
        frontend="clang",
        probe_files=[filename],
        num_threads=4,
        output_filters=list(_FILTERS),
    )


def config_ompif() -> BenchmarkConfig:
    return _cfg("ompif", _SMOOTH_OMPIF, "operators.ompif.c")


def config_omptask() -> BenchmarkConfig:
    return _cfg("omptask", _SMOOTH_OMPTASK, "operators.omptask.c")


def config_sse() -> BenchmarkConfig:
    return _cfg("sse", _SMOOTH_SSE, "operators.sse.c")


register(
    VariantInfo("MiniGMG", "ompif", "C, OpenMP", "operators.ompif",
                36080, 23235, 0, 0, 124431, 198012, "+59.1%"),
    config_ompif)
register(
    VariantInfo("MiniGMG", "omptask", "C, OpenMP tasks",
                "operators.omptask", 33007, 21845, 0, 0, 121110, 186836,
                "+54.2%"),
    config_omptask)
register(
    VariantInfo("MiniGMG", "sse", "C, SSE intrinsics", "operators.sse",
                36166, 32529, 0, 0, 116700, 200120, "+71.5%"),
    config_sse)
