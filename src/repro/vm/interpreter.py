"""The IR interpreter: an explicit-stack step machine.

Running the *optimized* IR is what makes ORAQL's verification real in
this reproduction: a wrong optimistic no-alias answer lets a pass forward
a stale value or delete a live store, and the executed program then
prints a different checksum (or traps / loops), failing verification.

The machine is a step machine (no host recursion for calls) so that:
* instruction counts and cycle costs are exact,
* multiple ranks can be interleaved by the MPI scheduler,
* runaway miscompiles hit a step budget instead of hanging the driver.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
)
from ..ir.values import (
    Argument,
    Constant,
    ConstantData,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from .cost_model import CostModel, occupancy_factor
from .errors import (
    DeadlockError,
    MemoryTrap,
    StepLimitExceeded,
    UndefinedBehavior,
    VMError,
    WallClockExceeded,
)
from .memory import Memory


class Blocked:
    """Sentinel returned by blocking runtime calls (MPI collectives)."""

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload):
        self.tag = tag
        self.payload = payload


class Frame:
    __slots__ = ("fn", "block", "index", "env", "allocas", "call_inst")

    def __init__(self, fn: Function, call_inst: Optional[CallInst]):
        self.fn = fn
        self.block = fn.entry
        self.index = 0
        self.env: Dict[Value, object] = {}
        self.allocas: List[int] = []
        self.call_inst = call_inst


def _wrap_int(v: int, bits: int) -> int:
    mask = (1 << bits) - 1
    v &= mask
    if bits > 1 and v >= (1 << (bits - 1)):
        v -= 1 << bits
    return v


def _unsigned(v: int, bits: int) -> int:
    return v & ((1 << bits) - 1)


class Machine:
    """One executing process image (one MPI rank, or the whole program)."""

    def __init__(self, module: Module, runtime=None,
                 max_steps: int = 80_000_000,
                 cost_model: Optional[CostModel] = None,
                 kernel_info: Optional[Dict[str, object]] = None,
                 rank: int = 0, nranks: int = 1, num_threads: int = 4,
                 argv: Optional[List[str]] = None,
                 wall_clock: Optional[float] = None):
        from .runtime import Runtime  # local import to avoid cycle

        self.module = module
        self.memory = Memory()
        self.runtime = runtime or Runtime()
        self.cost = cost_model or CostModel()
        self.kernel_info = kernel_info or {}
        self.max_steps = max_steps
        #: optional per-run wall-clock budget in seconds; armed at
        #: :meth:`run` and polled every ``WALL_CLOCK_POLL`` instructions
        self.wall_clock = wall_clock
        self._deadline: Optional[float] = None
        self.rank = rank
        self.nranks = nranks
        self.num_threads = num_threads
        self.argv = argv or []

        self.frames: List[Frame] = []
        self.stdout: List[str] = []
        self.state = "ready"  # ready | blocked | done | trapped
        self.retval = None
        self.error: Optional[BaseException] = None
        self.blocked: Optional[Blocked] = None
        self.instructions = 0
        self.cycles = 0.0
        self.kernel_cycles: Dict[str, float] = {}
        self.kernel_launches: Dict[str, int] = {}
        self._gpu_factor = 1.0  # >1 while executing inside a GPU kernel

        self.globals: Dict[GlobalVariable, int] = {}
        self._init_globals()

    # -- images ------------------------------------------------------------
    def _init_globals(self) -> None:
        for gv in self.module.globals.values():
            size = gv.value_type.size()
            addr = self.memory.allocate(size, gv.value_type.align())
            self.globals[gv] = addr
            init = gv.initializer
            if init is None:
                continue
            self._write_initializer(addr, gv.value_type, init)

    def _write_initializer(self, addr: int, ty: Type, init: Constant) -> None:
        if isinstance(init, ConstantInt):
            self.memory.store(addr, ty, init.value)
        elif isinstance(init, ConstantFloat):
            self.memory.store(addr, ty, init.value)
        elif isinstance(init, ConstantData):
            if isinstance(ty, ArrayType):
                step = ty.element.size()
                for i, v in enumerate(init.values):
                    self.memory.store(addr + i * step, ty.element, v)
            elif isinstance(ty, StructType):
                for i, v in enumerate(init.values):
                    self.memory.store(addr + ty.field_offset(i), ty.fields[i], v)
            else:
                raise VMError(f"bad ConstantData target {ty}")
        elif isinstance(init, ConstantNull):
            self.memory.store(addr, ty, 0)

    # -- operand evaluation ---------------------------------------------------
    def value_of(self, frame: Frame, v: Value):
        if isinstance(v, Constant):
            if isinstance(v, ConstantInt):
                return v.value
            if isinstance(v, ConstantFloat):
                return v.value
            if isinstance(v, (ConstantNull, UndefValue)):
                return 0
            raise VMError(f"cannot evaluate constant {v!r}")
        if isinstance(v, GlobalVariable):
            return self.globals[v]
        if isinstance(v, Function):
            return v
        try:
            return frame.env[v]
        except KeyError:
            raise VMError(
                f"use of unevaluated value {v.short()} in @{frame.fn.name}"
            ) from None

    # -- control ------------------------------------------------------------
    def start(self, fn_name: str = "main", args: Tuple = ()) -> None:
        fn = self.module.get_function(fn_name)
        frame = Frame(fn, None)
        for a, val in zip(fn.args, args):
            frame.env[a] = val
        self.frames.append(frame)
        self.state = "ready"

    #: poll cadence for the (optional) wall-clock deadline; coarse so the
    #: hot loop stays branch-cheap when no deadline is configured
    WALL_CLOCK_POLL = 4096

    def run(self) -> "Machine":
        """Run until done, blocked, or trapped."""
        if self.wall_clock is not None and self._deadline is None:
            self._deadline = time.monotonic() + self.wall_clock
        try:
            while self.state == "ready":
                self.step()
                if self.instructions > self.max_steps:
                    raise StepLimitExceeded(
                        f"exceeded {self.max_steps} instructions")
                if self._deadline is not None \
                        and self.instructions % self.WALL_CLOCK_POLL == 0 \
                        and time.monotonic() > self._deadline:
                    raise WallClockExceeded(
                        f"exceeded {self.wall_clock:.3f}s wall clock")
        except VMError as e:
            self.state = "trapped"
            self.error = e
        return self

    def run_to_completion(self) -> "Machine":
        self.run()
        if self.state == "blocked":
            self.state = "trapped"
            self.error = DeadlockError(
                f"rank {self.rank} blocked on {self.blocked.tag} with no peers")
        return self

    def deliver(self, result) -> None:
        """Resolve a blocking call with ``result`` and resume."""
        assert self.state == "blocked"
        frame = self.frames[-1]
        inst = frame.block.instructions[frame.index]
        if not inst.type.is_void:
            frame.env[inst] = result
        frame.index += 1
        self.blocked = None
        self.state = "ready"

    # -- nested synchronous execution (omp chunks, cuda threads) ----------
    def call_synchronously(self, fn: Function, args: Tuple):
        """Run ``fn`` to completion inside a runtime handler.

        Blocking calls are not allowed inside such nested regions (our
        workloads never block inside parallel regions).
        """
        depth = len(self.frames)
        frame = Frame(fn, None)
        for a, val in zip(fn.args, args):
            frame.env[a] = val
        self.frames.append(frame)
        while len(self.frames) > depth:
            if self.state != "ready":
                raise DeadlockError("blocking call inside a parallel region")
            self.step()
            if self.instructions > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} instructions")
            if self._deadline is not None \
                    and self.instructions % self.WALL_CLOCK_POLL == 0 \
                    and time.monotonic() > self._deadline:
                raise WallClockExceeded(
                    f"exceeded {self.wall_clock:.3f}s wall clock")
        return self.retval

    # -- the step function ----------------------------------------------------
    def step(self) -> None:
        frame = self.frames[-1]
        inst = frame.block.instructions[frame.index]
        self.instructions += 1
        cls = inst.__class__

        if cls is BinaryInst:
            self.cycles += self._gpu_factor * self.cost.of(inst.op)
            a = self.value_of(frame, inst.operands[0])
            b = self.value_of(frame, inst.operands[1])
            frame.env[inst] = self._binop(inst, a, b)
            frame.index += 1
            return
        self.cycles += self._gpu_factor * self.cost.of(inst.opcode)

        if cls is LoadInst:
            addr = self.value_of(frame, inst.pointer)
            frame.env[inst] = self.memory.load(addr, inst.type)
            frame.index += 1
        elif cls is StoreInst:
            addr = self.value_of(frame, inst.pointer)
            val = self.value_of(frame, inst.value)
            self.memory.store(addr, inst.value.type, val)
            frame.index += 1
        elif cls is GEPInst:
            frame.env[inst] = self._gep(frame, inst)
            frame.index += 1
        elif cls is ICmpInst:
            a = self.value_of(frame, inst.operands[0])
            b = self.value_of(frame, inst.operands[1])
            if isinstance(inst.operands[0].type, VectorType):
                bits = inst.operands[0].type.element.bits
                frame.env[inst] = tuple(
                    self._icmp(inst.pred, x, y, bits) for x, y in zip(a, b))
            else:
                bits = getattr(inst.operands[0].type, "bits", 64)
                frame.env[inst] = self._icmp(inst.pred, a, b, bits)
            frame.index += 1
        elif cls is FCmpInst:
            a = self.value_of(frame, inst.operands[0])
            b = self.value_of(frame, inst.operands[1])
            if isinstance(inst.operands[0].type, VectorType):
                frame.env[inst] = tuple(
                    self._fcmp(inst.pred, x, y) for x, y in zip(a, b))
            else:
                frame.env[inst] = self._fcmp(inst.pred, a, b)
            frame.index += 1
        elif cls is BranchInst:
            if inst.is_conditional:
                cond = self.value_of(frame, inst.condition)
                target = inst.targets[0] if cond else inst.targets[1]
            else:
                target = inst.targets[0]
            self._jump(frame, target)
        elif cls is PhiInst:  # handled by _jump; stray phi = already valued
            frame.index += 1
        elif cls is ReturnInst:
            val = (self.value_of(frame, inst.value)
                   if inst.value is not None else None)
            self._pop_frame(val)
        elif cls is CallInst:
            self._call(frame, inst)
        elif cls is AllocaInst:
            addr = self.memory.allocate(inst.size_bytes(),
                                        inst.allocated_type.align())
            frame.allocas.append(addr)
            frame.env[inst] = addr
            frame.index += 1
        elif cls is CastInst:
            frame.env[inst] = self._cast(frame, inst)
            frame.index += 1
        elif cls is SelectInst:
            c = self.value_of(frame, inst.operands[0])
            frame.env[inst] = self.value_of(
                frame, inst.operands[1] if c else inst.operands[2])
            frame.index += 1
        elif cls is MemCpyInst:
            dst = self.value_of(frame, inst.dst)
            src = self.value_of(frame, inst.src)
            size = self.value_of(frame, inst.size)
            self.cycles += self._gpu_factor * size / 8.0
            self.memory.copy(dst, src, size)
            frame.index += 1
        elif cls is MemSetInst:
            dst = self.value_of(frame, inst.dst)
            byte = self.value_of(frame, inst.byte)
            size = self.value_of(frame, inst.size)
            self.cycles += self._gpu_factor * size / 8.0
            self.memory.fill(dst, byte, size)
            frame.index += 1
        elif cls is ShuffleSplatInst:
            s = self.value_of(frame, inst.operands[0])
            frame.env[inst] = (s,) * inst.lanes
            frame.index += 1
        elif cls is ExtractElementInst:
            v = self.value_of(frame, inst.operands[0])
            i = self.value_of(frame, inst.operands[1])
            frame.env[inst] = v[i]
            frame.index += 1
        elif cls is InsertElementInst:
            v = list(self.value_of(frame, inst.operands[0]))
            e = self.value_of(frame, inst.operands[1])
            i = self.value_of(frame, inst.operands[2])
            v[i] = e
            frame.env[inst] = tuple(v)
            frame.index += 1
        elif cls is UnreachableInst:
            raise UndefinedBehavior("executed unreachable")
        else:
            raise VMError(f"cannot interpret {inst.opcode}")

    # -- helpers ---------------------------------------------------------
    def _jump(self, frame: Frame, target: BasicBlock) -> None:
        source = frame.block
        # evaluate phis in parallel against the pre-jump environment
        phis = target.phis()
        if phis:
            values = []
            for phi in phis:
                v = phi.incoming_for_block(source)
                if v is None:
                    raise VMError(
                        f"phi {phi.short()} has no incoming for {source.name}")
                values.append(self.value_of(frame, v))
            for phi, val in zip(phis, values):
                frame.env[phi] = val
        frame.block = target
        frame.index = len(phis)

    def _pop_frame(self, val) -> None:
        frame = self.frames.pop()
        for addr in frame.allocas:
            self.memory.release(addr)
        if not self.frames:
            self.state = "done"
            self.retval = val
            return
        caller = self.frames[-1]
        call_inst = frame.call_inst
        if call_inst is not None:
            if not call_inst.type.is_void:
                caller.env[call_inst] = val
            caller.index += 1
        else:
            # nested synchronous call: record return for call_synchronously
            self.retval = val

    def _call(self, frame: Frame, inst: CallInst) -> None:
        callee = inst.callee
        args = tuple(self.value_of(frame, a) for a in inst.operands)
        if isinstance(callee, Function) and not callee.is_declaration:
            new = Frame(callee, inst)
            for a, val in zip(callee.args, args):
                new.env[a] = val
            self.frames.append(new)
            return
        name = callee if isinstance(callee, str) else callee.name
        result = self.runtime.call(self, name, args, inst)
        if isinstance(result, Blocked):
            self.state = "blocked"
            self.blocked = result
            return
        if not inst.type.is_void:
            frame.env[inst] = result
        frame.index += 1

    def _binop(self, inst: BinaryInst, a, b):
        op = inst.op
        ty = inst.type
        if isinstance(ty, VectorType):
            ety = ty.element
            return tuple(self._scalar_binop(op, x, y, ety)
                         for x, y in zip(a, b))
        return self._scalar_binop(op, a, b, ty)

    @staticmethod
    def _scalar_binop(op: str, a, b, ty: Type):
        if op == "fadd":
            return a + b
        if op == "fsub":
            return a - b
        if op == "fmul":
            return a * b
        if op == "fdiv":
            if b == 0.0:
                return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
            return a / b
        if op == "frem":
            return math.fmod(a, b) if b != 0.0 else math.nan
        bits = ty.bits if isinstance(ty, IntType) else 64
        if op == "add":
            return _wrap_int(a + b, bits)
        if op == "sub":
            return _wrap_int(a - b, bits)
        if op == "mul":
            return _wrap_int(a * b, bits)
        if op == "sdiv":
            if b == 0:
                raise UndefinedBehavior("sdiv by zero")
            q = abs(a) // abs(b)
            return _wrap_int(-q if (a < 0) != (b < 0) else q, bits)
        if op == "srem":
            if b == 0:
                raise UndefinedBehavior("srem by zero")
            q = abs(a) // abs(b)
            q = -q if (a < 0) != (b < 0) else q
            return _wrap_int(a - q * b, bits)
        if op == "udiv":
            if b == 0:
                raise UndefinedBehavior("udiv by zero")
            return _wrap_int(_unsigned(a, bits) // _unsigned(b, bits), bits)
        if op == "urem":
            if b == 0:
                raise UndefinedBehavior("urem by zero")
            return _wrap_int(_unsigned(a, bits) % _unsigned(b, bits), bits)
        if op == "and":
            return _wrap_int(a & b, bits)
        if op == "or":
            return _wrap_int(a | b, bits)
        if op == "xor":
            return _wrap_int(a ^ b, bits)
        if op == "shl":
            return _wrap_int(a << (b % bits), bits)
        if op == "ashr":
            return _wrap_int(a >> (b % bits), bits)
        if op == "lshr":
            return _wrap_int(_unsigned(a, bits) >> (b % bits), bits)
        raise VMError(f"bad binop {op}")

    @staticmethod
    def _icmp(pred: str, a: int, b: int, bits: int) -> int:
        if pred in ("ult", "ule", "ugt", "uge"):
            a, b = _unsigned(a, bits), _unsigned(b, bits)
        if pred == "eq":
            return int(a == b)
        if pred == "ne":
            return int(a != b)
        if pred in ("slt", "ult"):
            return int(a < b)
        if pred in ("sle", "ule"):
            return int(a <= b)
        if pred in ("sgt", "ugt"):
            return int(a > b)
        if pred in ("sge", "uge"):
            return int(a >= b)
        raise VMError(f"bad icmp pred {pred}")

    @staticmethod
    def _fcmp(pred: str, a: float, b: float) -> int:
        if math.isnan(a) or math.isnan(b):
            return 0  # ordered comparisons are false on NaN
        return {
            "oeq": a == b, "one": a != b, "olt": a < b,
            "ole": a <= b, "ogt": a > b, "oge": a >= b,
        }[pred] and 1 or 0

    def _gep(self, frame: Frame, inst: GEPInst) -> int:
        addr = self.value_of(frame, inst.pointer)
        ty: Type = inst.pointer.type.pointee
        for i, idx in enumerate(inst.indices):
            iv = self.value_of(frame, idx)
            if i == 0:
                addr += iv * ty.size()
            elif isinstance(ty, (ArrayType, VectorType)):
                ty = ty.element
                addr += iv * ty.size()
            elif isinstance(ty, StructType):
                addr += ty.field_offset(iv)
                ty = ty.fields[iv]
            else:
                raise VMError(f"gep into {ty}")
        return addr

    def _cast(self, frame: Frame, inst: CastInst):
        import struct as _struct

        v = self.value_of(frame, inst.value)
        op = inst.op
        to = inst.type
        if isinstance(to, VectorType) and isinstance(v, tuple):
            ety = to.element
            return tuple(self._cast_scalar(op, lane, ety,
                                           inst.value.type.element)
                         for lane in v)
        return self._cast_scalar(op, v, to, inst.value.type)

    def _cast_scalar(self, op: str, v, to: Type, from_ty: Type):
        import struct as _struct
        if op in ("bitcast", "inttoptr", "ptrtoint"):
            return v
        if op == "trunc":
            return _wrap_int(v, to.bits)
        if op == "zext":
            return _unsigned(v, from_ty.bits)
        if op == "sext":
            return v  # already sign-canonical
        if op == "fptosi":
            if math.isnan(v) or math.isinf(v):
                raise UndefinedBehavior("fptosi of NaN/Inf")
            return _wrap_int(int(v), to.bits)
        if op == "sitofp":
            return float(v)
        if op == "fpext":
            return float(v)
        if op == "fptrunc":
            return _struct.unpack("<f", _struct.pack("<f", v))[0]
        raise VMError(f"bad cast {op}")

    # -- output ------------------------------------------------------------
    def write_stdout(self, text: str) -> None:
        self.stdout.append(text)

    def output(self) -> str:
        return "".join(self.stdout)
