"""Runtime shims: libc-ish I/O, math, OpenMP, CUDA, and MPI.

The parallel programming models are *simulated deterministically*:

* **OpenMP** — ``omp_parallel_for(fn, ctx, lb, ub)`` splits the
  iteration space into ``num_threads`` contiguous chunks and runs them
  sequentially in the shared address space.  The indirection (outlined
  function + context struct) is exactly what inflates alias-query counts
  in the paper's OpenMP configurations.
* **CUDA/Kokkos** — ``cuda_launch(kernel, grid, block, args...)`` runs
  the kernel for every (block, thread) pair; per-kernel cycle totals are
  scaled by an occupancy factor derived from the kernel's register count
  (codegen metadata), which is how optimistic information can *slow
  down* GPU code (§V-C).
* **MPI** — ranks are separate Machines interleaved by
  :class:`MPIWorld`; collectives block until all ranks arrive.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.function import Function
from .cost_model import occupancy_factor
from .errors import DeadlockError, UndefinedBehavior, VMError


class Runtime:
    """Dispatch table for intrinsic / declared-function calls."""

    def __init__(self):
        self.handlers: Dict[str, Callable] = {}
        self._install_defaults()

    def register(self, name: str, fn: Callable) -> None:
        self.handlers[name] = fn

    def call(self, machine, name: str, args: Tuple, inst):
        handler = self.handlers.get(name)
        if handler is None:
            raise VMError(f"call to unknown runtime function '{name}'")
        machine.cycles += machine.cost.of_intrinsic(name)
        return handler(machine, args)

    # -- default handlers ---------------------------------------------------
    def _install_defaults(self) -> None:
        h = self.handlers
        # pure math
        h["sqrt"] = lambda m, a: math.sqrt(a[0]) if a[0] >= 0 else math.nan
        h["fabs"] = lambda m, a: abs(a[0])
        h["exp"] = lambda m, a: _safe(math.exp, a[0])
        h["log"] = lambda m, a: math.log(a[0]) if a[0] > 0 else -math.inf
        h["pow"] = lambda m, a: _safe(math.pow, a[0], a[1])
        h["sin"] = lambda m, a: math.sin(a[0])
        h["cos"] = lambda m, a: math.cos(a[0])
        h["floor"] = lambda m, a: math.floor(a[0])
        h["ceil"] = lambda m, a: math.ceil(a[0])
        h["fmin"] = lambda m, a: min(a[0], a[1])
        h["fmax"] = lambda m, a: max(a[0], a[1])
        h["llvm.vector.reduce.fadd"] = lambda m, a: math.fsum(a[0])
        h["llvm.vector.reduce.add"] = lambda m, a: sum(a[0])
        # libc
        h["printf"] = _printf
        h["malloc"] = lambda m, a: m.memory.allocate(a[0])
        h["free"] = lambda m, a: m.memory.free(a[0])
        h["clock_cycles"] = lambda m, a: int(m.cycles)
        h["wtime"] = lambda m, a: m.cycles / 2.5e9  # "2.5 GHz Skylake"
        h["abort"] = _abort
        h["exit"] = _abort
        # omp
        h["omp_parallel_for"] = _omp_parallel_for
        h["omp_get_max_threads"] = lambda m, a: m.num_threads
        h["omp_get_num_threads"] = lambda m, a: m.num_threads
        # cuda
        h["cuda_launch"] = _cuda_launch
        h["cuda_thread_id"] = _cuda_thread_id
        h["cuda_num_threads"] = _cuda_num_threads
        h["cuda_device_synchronize"] = lambda m, a: None
        # mpi
        h["mpi_comm_rank"] = lambda m, a: m.rank
        h["mpi_comm_size"] = lambda m, a: m.nranks
        h["mpi_barrier"] = lambda m, a: (
            None if m.nranks == 1 else _blocked("barrier", None))
        h["mpi_allreduce_sum_f64"] = lambda m, a: (
            a[0] if m.nranks == 1 else _blocked("allreduce_sum", a[0]))
        h["mpi_allreduce_max_f64"] = lambda m, a: (
            a[0] if m.nranks == 1 else _blocked("allreduce_max", a[0]))
        h["mpi_allreduce_min_f64"] = lambda m, a: (
            a[0] if m.nranks == 1 else _blocked("allreduce_min", a[0]))


def _safe(fn, *args):
    try:
        return fn(*args)
    except (OverflowError, ValueError):
        return math.inf


def _abort(machine, args):
    raise UndefinedBehavior(f"program aborted (exit {args[0] if args else 1})")


def _blocked(tag: str, payload):
    from .interpreter import Blocked
    return Blocked(tag, payload)


# -- printf ---------------------------------------------------------------

_FMT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diufFeEgGxXsc%]")


def _printf(machine, args):
    fmt = machine.memory.read_cstring(args[0])
    out = []
    ai = 1
    pos = 0
    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos:m.start()])
        pos = m.end()
        spec = m.group(0)
        conv = spec[-1]
        if conv == "%":
            out.append("%")
            continue
        if ai >= len(args):
            raise UndefinedBehavior(f"printf: missing argument for {spec}")
        val = args[ai]
        ai += 1
        pyspec = spec.replace("ll", "").replace("hh", "").replace(
            "h", "").replace("z", "")
        # map C conversions onto Python %-formatting
        if conv in "di":
            pyspec = pyspec[:-1] + "d"
            out.append(pyspec % int(val))
        elif conv == "u":
            pyspec = pyspec[:-1] + "d"
            out.append(pyspec % (int(val) & ((1 << 64) - 1)))
        elif conv in "fFeEgG":
            out.append(pyspec % float(val))
        elif conv in "xX":
            out.append(pyspec % (int(val) & ((1 << 64) - 1)))
        elif conv == "s":
            out.append(machine.memory.read_cstring(val))
        elif conv == "c":
            out.append(chr(int(val) & 0xFF))
    out.append(fmt[pos:])
    text = "".join(out)
    machine.write_stdout(text)
    return len(text)


# -- OpenMP ---------------------------------------------------------------

def _omp_parallel_for(machine, args):
    """args = (outlined Function, ctx_ptr, lb, ub); static scheduling."""
    outlined, ctx, lb, ub = args
    if not isinstance(outlined, Function):
        raise VMError("omp_parallel_for: first arg must be a function")
    n = ub - lb
    if n <= 0:
        return None
    t = max(1, machine.num_threads)
    chunk = -(-n // t)
    for tid in range(t):
        clb = lb + tid * chunk
        cub = min(ub, clb + chunk)
        if clb >= cub:
            break
        machine.call_synchronously(outlined, (tid, ctx, clb, cub))
    return None


# -- CUDA -------------------------------------------------------------------

def _cuda_launch(machine, args):
    """args = (kernel Function, grid, block, kernel args...)."""
    kernel, grid, block = args[0], args[1], args[2]
    kargs = tuple(args[3:])
    if not isinstance(kernel, Function):
        raise VMError("cuda_launch: first arg must be a kernel function")
    info = machine.kernel_info.get(kernel.name)
    regs = getattr(info, "registers", 32) if info is not None else 32
    factor = occupancy_factor(regs)
    saved = machine._gpu_factor
    start_cycles = machine.cycles
    machine._gpu_factor = factor
    try:
        total = grid * block
        for tid in range(total):
            machine._cuda_tid = tid
            machine._cuda_total = total
            machine.call_synchronously(kernel, kargs)
    finally:
        machine._gpu_factor = saved
    spent = machine.cycles - start_cycles
    machine.kernel_cycles[kernel.name] = (
        machine.kernel_cycles.get(kernel.name, 0.0) + spent)
    machine.kernel_launches[kernel.name] = (
        machine.kernel_launches.get(kernel.name, 0) + 1)
    return None


def _cuda_thread_id(machine, args):
    return getattr(machine, "_cuda_tid", 0)


def _cuda_num_threads(machine, args):
    return getattr(machine, "_cuda_total", 1)


# -- MPI ----------------------------------------------------------------------

class MPIWorld:
    """Round-robin scheduler over per-rank Machines with collectives."""

    REDUCE_OPS = {
        "allreduce_sum": lambda xs: math.fsum(xs),
        "allreduce_max": max,
        "allreduce_min": min,
    }

    def __init__(self, machines: List):
        self.machines = machines
        for i, m in enumerate(machines):
            m.rank = i
            m.nranks = len(machines)

    def run(self) -> List:
        live = list(self.machines)
        while True:
            progressed = False
            for m in live:
                if m.state == "ready":
                    m.run()
                    progressed = True
            live = [m for m in self.machines if m.state in ("ready", "blocked")]
            if not live:
                break
            blocked = [m for m in self.machines if m.state == "blocked"]
            if len(blocked) == len(
                    [m for m in self.machines if m.state != "trapped"]
            ) and blocked:
                tags = {m.blocked.tag for m in blocked}
                if len(tags) == 1 and len(blocked) == len(self.machines):
                    tag = tags.pop()
                    if tag == "barrier":
                        for m in blocked:
                            m.deliver(None)
                    else:
                        op = self.REDUCE_OPS[tag]
                        result = op([m.blocked.payload for m in blocked])
                        for m in blocked:
                            m.deliver(result)
                    progressed = True
                else:
                    raise DeadlockError(
                        f"ranks blocked on mismatched collectives: {tags}")
            if not progressed and live:
                raise DeadlockError("no rank can make progress")
        return self.machines
