"""Runtime errors raised by the VM.

A miscompiled program (e.g. one built with a wrong optimistic no-alias
answer) may trap, loop forever, or print garbage; the first two surface
as these exceptions and are treated as *test failures* by the
verification script, never as tool crashes.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for all interpreter failures."""


class MemoryTrap(VMError):
    """Out-of-bounds or unmapped memory access."""


class StepLimitExceeded(VMError):
    """The configured instruction budget ran out (likely an infinite loop)."""


class WallClockExceeded(VMError):
    """The per-run wall-clock budget ran out (checked every few thousand
    instructions; only armed when a deadline is configured, so default
    runs stay bit-deterministic)."""


class DeadlockError(VMError):
    """All ranks blocked on incompatible communication."""


class UndefinedBehavior(VMError):
    """Division by zero, bad intrinsic arguments, etc."""
