"""repro.vm — deterministic execution of (optimized) IR.

Provides the byte-addressable memory model, the step-machine interpreter
with instruction/cycle accounting, runtime shims for libc/OpenMP/CUDA,
and the multi-rank MPI scheduler.
"""

from .cost_model import (
    CostModel,
    DEFAULT_COSTS,
    UnknownCostError,
    occupancy_factor,
)
from .errors import (
    DeadlockError,
    MemoryTrap,
    StepLimitExceeded,
    UndefinedBehavior,
    VMError,
    WallClockExceeded,
)
from .interpreter import Blocked, Frame, Machine
from .memory import Memory
from .runtime import MPIWorld, Runtime

__all__ = [name for name in dir() if not name.startswith("_")]
