"""Cycle cost model for the interpreter.

The evaluation reports two machine-facing metrics: executed instructions
(``perf``-style, §V-A) and wall-clock/figure-of-merit times.  We model
the latter with a static per-opcode cycle table plus a GPU occupancy
penalty derived from per-kernel register pressure (the mechanism behind
GridMini's optimistic *slowdown*, §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


class UnknownCostError(Exception):
    """A strict cost model was asked to price an opcode or intrinsic it
    has no entry for.

    Deliberately *not* a :class:`~repro.vm.errors.VMError`: the
    interpreter converts VM errors into ``trapped`` run results, but a
    missing cost-table entry is a *measurement* defect, not a program
    behaviour — silently charging a default would distort every cycle
    delta built on top (the importance driver's whole currency), so in
    strict mode it must crash the measuring session loudly instead of
    becoming a verdict."""

#: cycles per executed IR instruction, by opcode/op
DEFAULT_COSTS: Dict[str, float] = {
    "load": 4.0,
    "store": 4.0,
    "getelementptr": 1.0,
    "alloca": 1.0,
    "phi": 0.0,
    "br": 1.0,
    "ret": 1.0,
    "icmp": 1.0,
    "fcmp": 2.0,
    "select": 1.0,
    "cast": 1.0,
    "call": 5.0,
    "memcpy": 8.0,
    "memset": 8.0,
    "splat": 1.0,
    "extractelement": 1.0,
    "insertelement": 1.0,
    "unreachable": 0.0,
    # binops by op name
    "add": 1.0, "sub": 1.0, "mul": 3.0, "sdiv": 24.0, "udiv": 24.0,
    "srem": 24.0, "urem": 24.0, "and": 1.0, "or": 1.0, "xor": 1.0,
    "shl": 1.0, "ashr": 1.0, "lshr": 1.0,
    "fadd": 4.0, "fsub": 4.0, "fmul": 5.0, "fdiv": 22.0, "frem": 30.0,
}

#: pure intrinsic costs
INTRINSIC_COSTS: Dict[str, float] = {
    "sqrt": 18.0, "exp": 40.0, "log": 40.0, "pow": 60.0, "sin": 40.0,
    "cos": 40.0, "fabs": 2.0, "floor": 2.0, "ceil": 2.0, "fmin": 2.0,
    "fmax": 2.0,
    # the rest of the runtime surface (libc / omp / cuda / mpi /
    # reductions), priced at the flat runtime-call cost these calls were
    # historically charged as unknowns — explicit entries keep strict
    # measurement sessions viable without perturbing a single existing
    # cycle count
    "llvm.vector.reduce.fadd": 10.0, "llvm.vector.reduce.add": 10.0,
    "printf": 10.0, "malloc": 10.0, "free": 10.0,
    "clock_cycles": 10.0, "wtime": 10.0, "abort": 10.0, "exit": 10.0,
    "omp_parallel_for": 10.0, "omp_get_max_threads": 10.0,
    "omp_get_num_threads": 10.0,
    "cuda_launch": 10.0, "cuda_thread_id": 10.0,
    "cuda_num_threads": 10.0, "cuda_device_synchronize": 10.0,
    "mpi_comm_rank": 10.0, "mpi_comm_size": 10.0, "mpi_barrier": 10.0,
    "mpi_allreduce_sum_f64": 10.0, "mpi_allreduce_max_f64": 10.0,
    "mpi_allreduce_min_f64": 10.0,
}


def occupancy_factor(registers: int) -> float:
    """GPU cost multiplier as register pressure lowers occupancy.

    Piecewise model of SM occupancy cliffs: each step past a register
    budget drops concurrent warps and inflates effective kernel time.
    """
    if registers <= 32:
        return 1.0
    if registers <= 64:
        return 1.08
    if registers <= 96:
        return 1.38
    if registers <= 128:
        return 1.48
    if registers <= 168:
        return 1.58
    return 1.75


#: cycles charged for an opcode / intrinsic missing from the tables
#: (non-strict mode only; strict mode raises instead)
UNKNOWN_OPCODE_COST = 1.0
UNKNOWN_INTRINSIC_COST = 10.0


@dataclass
class CostModel:
    costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    intrinsic_costs: Dict[str, float] = field(
        default_factory=lambda: dict(INTRINSIC_COSTS))
    #: raise :class:`UnknownCostError` on a missing table entry instead
    #: of silently charging the default — measurement sessions (the
    #: importance driver) run strict so a cycle delta can never be
    #: quietly distorted by an unpriced operation
    strict: bool = False
    #: opcode/intrinsic -> times the table had no entry for it; counted
    #: in *both* modes so even a lenient run can report the distortion
    unknown_opcodes: Dict[str, int] = field(default_factory=dict)
    unknown_intrinsics: Dict[str, int] = field(default_factory=dict)

    def of(self, opcode: str) -> float:
        cost = self.costs.get(opcode)
        if cost is not None:
            return cost
        self.unknown_opcodes[opcode] = self.unknown_opcodes.get(opcode, 0) + 1
        if self.strict:
            raise UnknownCostError(
                f"no cycle cost for opcode {opcode!r} (strict cost model)")
        return UNKNOWN_OPCODE_COST

    def of_intrinsic(self, name: str) -> float:
        cost = self.intrinsic_costs.get(name)
        if cost is not None:
            return cost
        self.unknown_intrinsics[name] = \
            self.unknown_intrinsics.get(name, 0) + 1
        if self.strict:
            raise UnknownCostError(
                f"no cycle cost for intrinsic {name!r} (strict cost model)")
        return UNKNOWN_INTRINSIC_COST
