"""Cycle cost model for the interpreter.

The evaluation reports two machine-facing metrics: executed instructions
(``perf``-style, §V-A) and wall-clock/figure-of-merit times.  We model
the latter with a static per-opcode cycle table plus a GPU occupancy
penalty derived from per-kernel register pressure (the mechanism behind
GridMini's optimistic *slowdown*, §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: cycles per executed IR instruction, by opcode/op
DEFAULT_COSTS: Dict[str, float] = {
    "load": 4.0,
    "store": 4.0,
    "getelementptr": 1.0,
    "alloca": 1.0,
    "phi": 0.0,
    "br": 1.0,
    "ret": 1.0,
    "icmp": 1.0,
    "fcmp": 2.0,
    "select": 1.0,
    "cast": 1.0,
    "call": 5.0,
    "memcpy": 8.0,
    "memset": 8.0,
    "splat": 1.0,
    "extractelement": 1.0,
    "insertelement": 1.0,
    "unreachable": 0.0,
    # binops by op name
    "add": 1.0, "sub": 1.0, "mul": 3.0, "sdiv": 24.0, "udiv": 24.0,
    "srem": 24.0, "urem": 24.0, "and": 1.0, "or": 1.0, "xor": 1.0,
    "shl": 1.0, "ashr": 1.0, "lshr": 1.0,
    "fadd": 4.0, "fsub": 4.0, "fmul": 5.0, "fdiv": 22.0, "frem": 30.0,
}

#: pure intrinsic costs
INTRINSIC_COSTS: Dict[str, float] = {
    "sqrt": 18.0, "exp": 40.0, "log": 40.0, "pow": 60.0, "sin": 40.0,
    "cos": 40.0, "fabs": 2.0, "floor": 2.0, "ceil": 2.0, "fmin": 2.0,
    "fmax": 2.0,
}


def occupancy_factor(registers: int) -> float:
    """GPU cost multiplier as register pressure lowers occupancy.

    Piecewise model of SM occupancy cliffs: each step past a register
    budget drops concurrent warps and inflates effective kernel time.
    """
    if registers <= 32:
        return 1.0
    if registers <= 64:
        return 1.08
    if registers <= 96:
        return 1.38
    if registers <= 128:
        return 1.48
    if registers <= 168:
        return 1.58
    return 1.75


@dataclass
class CostModel:
    costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    intrinsic_costs: Dict[str, float] = field(
        default_factory=lambda: dict(INTRINSIC_COSTS))

    def of(self, opcode: str) -> float:
        return self.costs.get(opcode, 1.0)

    def of_intrinsic(self, name: str) -> float:
        return self.intrinsic_costs.get(name, 10.0)
