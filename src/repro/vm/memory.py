"""Byte-addressable memory for the interpreter.

A single flat address space per process image: globals segment, heap,
and per-call stack region, carved out of one growable bytearray.  Scalar
values are marshalled with ``struct``; vectors element-wise.  Accesses
outside allocated regions raise :class:`MemoryTrap` — the behaviour a
miscompiled executable shows as a crash.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from .errors import MemoryTrap

NULL = 0
_BASE = 0x1000


class Memory:
    """Flat memory with a bump allocator and allocation tracking."""

    def __init__(self, capacity: int = 1 << 22):
        self.data = bytearray(capacity)
        self.brk = _BASE
        #: sorted list of (start, size) live allocations for bounds checks
        self.allocations: Dict[int, int] = {}

    # -- allocation ------------------------------------------------------
    def allocate(self, size: int, align: int = 8) -> int:
        size = max(1, size)
        addr = (self.brk + align - 1) & ~(align - 1)
        end = addr + size
        while end > len(self.data):
            self.data.extend(bytearray(len(self.data)))
        self.brk = end
        self.allocations[addr] = size
        return addr

    def free(self, addr: int) -> None:
        self.allocations.pop(addr, None)

    def release(self, addr: int) -> None:
        """Drop a stack allocation on function return."""
        self.allocations.pop(addr, None)

    def check(self, addr: int, size: int) -> None:
        if addr < _BASE or addr + size > self.brk:
            raise MemoryTrap(f"access [{addr:#x},+{size}) outside memory")

    # -- raw bytes ----------------------------------------------------------
    def read_bytes(self, addr: int, size: int) -> bytes:
        self.check(addr, size)
        return bytes(self.data[addr:addr + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        self.check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def copy(self, dst: int, src: int, size: int) -> None:
        self.write_bytes(dst, self.read_bytes(src, size))

    def fill(self, dst: int, byte: int, size: int) -> None:
        self.check(dst, size)
        self.data[dst:dst + size] = bytes([byte & 0xFF]) * size

    # -- typed access ----------------------------------------------------
    _INT_FMT = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}

    def load(self, addr: int, ty: Type):
        if isinstance(ty, IntType):
            size = ty.size()
            raw = self.read_bytes(addr, size)
            v = int.from_bytes(raw, "little", signed=True)
            if ty.bits == 1:
                return v & 1
            return v
        if isinstance(ty, FloatType):
            raw = self.read_bytes(addr, ty.size())
            return struct.unpack("<f" if ty.bits == 32 else "<d", raw)[0]
        if isinstance(ty, PointerType):
            raw = self.read_bytes(addr, 8)
            return int.from_bytes(raw, "little", signed=False)
        if isinstance(ty, VectorType):
            step = ty.element.size()
            return tuple(self.load(addr + i * step, ty.element)
                         for i in range(ty.count))
        raise MemoryTrap(f"cannot load type {ty}")

    def store(self, addr: int, ty: Type, value) -> None:
        if isinstance(ty, IntType):
            size = ty.size()
            bits = size * 8
            v = int(value) & ((1 << bits) - 1)
            self.write_bytes(addr, v.to_bytes(size, "little", signed=False))
            return
        if isinstance(ty, FloatType):
            fmt = "<f" if ty.bits == 32 else "<d"
            self.write_bytes(addr, struct.pack(fmt, float(value)))
            return
        if isinstance(ty, PointerType):
            v = int(value) & ((1 << 64) - 1)
            self.write_bytes(addr, v.to_bytes(8, "little", signed=False))
            return
        if isinstance(ty, VectorType):
            step = ty.element.size()
            for i, lane in enumerate(value):
                self.store(addr + i * step, ty.element, lane)
            return
        raise MemoryTrap(f"cannot store type {ty}")

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        out = bytearray()
        for i in range(limit):
            b = self.read_bytes(addr + i, 1)[0]
            if b == 0:
                break
            out.append(b)
        return out.decode("utf-8", errors="replace")

    def write_cstring(self, addr: int, s: str) -> None:
        payload = s.encode() + b"\x00"
        self.write_bytes(addr, payload)
