"""Fig. 5: software versions.

The paper records the exact LLVM / Flang / CUDA / Kokkos versions its
results are a snapshot of.  Our substrate versions are the analogous
provenance record for this reproduction.
"""

from __future__ import annotations

import sys
from typing import List, Tuple

from .tables import render_table

#: (component, provenance) — the reproduction's analogue of Fig. 5
VERSIONS: List[Tuple[str, str]] = [
    ("repro (this package)", "1.0.0"),
    ("repro IR / AA / passes", "bundled (src/repro, pure Python)"),
    ("MiniC frontend", "bundled (src/repro/frontend)"),
    ("VM / cost model", "bundled (src/repro/vm)"),
    ("Python", sys.version.split()[0]),
]

PAPER_VERSIONS: List[Tuple[str, str]] = [
    ("LLVM", "git ea7be7e"),
    ("LLVM/Flang (fir-dev)", "git 972e1f8"),
    ("Legacy Flang", "git b90b722"),
    ("CUDA", "11.4.0"),
    ("Kokkos", "3.5.0"),
]


def render_fig5() -> str:
    rows = [(c, v) for c, v in VERSIONS]
    ours = render_table(["Component", "Version"], rows,
                        title="Fig. 5 — software versions (this reproduction)")
    paper = render_table(["Component", "Version"], PAPER_VERSIONS,
                         title="Fig. 5 — software versions (paper)")
    return ours + "\n\n" + paper
