"""Incremental recompilation on the Fig. 2 probing benchmark.

A probing session is a sequence of compiles that differ only in the
decision sequence.  With ``--incremental on`` every compile that has a
cached baseline splices unaffected functions and resumes the rest
mid-pipeline, so the headline metric is the pass-execution cost of the
*incremental-eligible* compiles — every compile for which a baseline
existed.  The ORAQL-off baseline and the first probe are necessarily
full (the baseline cache is empty), which makes a session-total 5x
structurally unreachable on short sessions; the table therefore reports
both ratios and the acceptance bar applies to the eligible one.

The eligible-compile accounting leans on one measured invariant (the
benchmark asserts it): every *full* compile of a given configuration
executes the same number of passes — the pipeline is fixed and the
function set does not depend on the decision sequence.  That makes
``passes_off / compiles`` the exact per-compile full cost, and the
eligible-only costs derivable from the session totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .tables import render_table


@dataclass
class IncrementalRow:
    """One configuration probed twice: ``--incremental off`` and ``on``."""

    config: str
    compiles: int        # session compiles (identical on both sides)
    incremental: int     # on-side compiles spliced from a baseline
    fallbacks: int       # eligible compiles that fell back to full
    full_cost: int       # pass executions of one full compile
    passes_off: int      # session pass executions, --incremental off
    passes_on: int       # session pass executions, --incremental on

    @property
    def eligible(self) -> int:
        """Compiles that had a baseline available."""
        return self.incremental + self.fallbacks

    @property
    def eligible_off(self) -> int:
        """What the eligible compiles cost without incrementality."""
        return self.full_cost * self.eligible

    @property
    def eligible_on(self) -> int:
        """What they actually cost: the session total minus the
        (irreducibly full) ineligible compiles."""
        return self.passes_on - self.full_cost * (self.compiles -
                                                  self.eligible)

    @property
    def session_ratio(self) -> float:
        return self.passes_off / self.passes_on if self.passes_on else 0.0

    @property
    def eligible_ratio(self) -> float:
        if self.eligible_on <= 0:
            return float("inf") if self.eligible_off else 0.0
        return self.eligible_off / self.eligible_on

    def cells(self) -> List:
        return [self.config, self.compiles, self.incremental,
                self.fallbacks, self.passes_off, self.passes_on,
                f"{self.session_ratio:.2f}x",
                f"{self.eligible_ratio:.2f}x"
                if self.eligible_on > 0 else "n/a"]


HEADERS = ["Benchmark", "compiles", "incremental", "fallbacks",
           "passes off", "passes on", "session", "eligible"]


def session_ratio(rows: Sequence[IncrementalRow]) -> float:
    on = sum(r.passes_on for r in rows)
    return sum(r.passes_off for r in rows) / on if on else 0.0


def eligible_ratio(rows: Sequence[IncrementalRow]) -> float:
    """Aggregate pass-execution ratio over the incremental-eligible
    compiles — the acceptance metric (>= 5x)."""
    on = sum(r.eligible_on for r in rows)
    return sum(r.eligible_off for r in rows) / on if on else 0.0


def render_incremental(rows: Sequence[IncrementalRow]) -> str:
    body = [r.cells() for r in rows]
    body.append(["TOTAL", sum(r.compiles for r in rows),
                 sum(r.incremental for r in rows),
                 sum(r.fallbacks for r in rows),
                 sum(r.passes_off for r in rows),
                 sum(r.passes_on for r in rows),
                 f"{session_ratio(rows):.2f}x",
                 f"{eligible_ratio(rows):.2f}x"])
    return render_table(
        HEADERS, body,
        title="Incremental recompilation — pass executions per probing "
              "session (off vs on)")
