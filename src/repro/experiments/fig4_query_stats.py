"""Fig. 4: alias-query statistics for every benchmark configuration.

For each of the sixteen configurations the paper reports: the number of
queries the ORAQL pass answered optimistically / pessimistically (unique
and cached, under the final sequence), and the total number of no-alias
responses across the whole AA chain for the original vs. the ORAQL
compilation.  We regenerate the same columns from our probing runs and
print them next to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..oraql import ProbingDriver, ProbingReport
from ..workloads.base import VariantInfo, get_config, get_info, row_names
from .tables import pct, render_table


@dataclass
class Fig4Row:
    info: VariantInfo
    report: ProbingReport

    def cells(self) -> List:
        r = self.report
        i = self.info
        return [
            i.benchmark, i.programming_model, i.source_files,
            r.opt_unique, r.opt_cached, r.pess_unique, r.pess_cached,
            r.no_alias_original, r.no_alias_oraql,
            f"{r.no_alias_delta_percent:+.1f}%",
            f"{i.paper_opt_unique}/{i.paper_pess_unique}", i.paper_delta,
        ]


HEADERS = ["Benchmark", "Model", "Source Files",
           "OptU", "OptC", "PessU", "PessC",
           "NoAlias orig", "NoAlias ORAQL", "Δ",
           "paper OptU/PessU", "paper Δ"]


def run_fig4(rows: Optional[List[str]] = None,
             strategy: str = "chunked",
             jobs: int = 1,
             cache_dir: Optional[str] = None) -> List[Fig4Row]:
    names = list(rows or row_names())
    if jobs > 1 or cache_dir:
        # the parallel engine probes all configurations concurrently and
        # shares the persistent verdict cache across them
        from ..oraql.parallel import ParallelProbingDriver
        reports = ParallelProbingDriver(
            [get_config(n) for n in names], jobs=jobs, strategy=strategy,
            cache_dir=cache_dir).run()
        return [Fig4Row(get_info(n), rep)
                for n, rep in zip(names, reports)]
    out: List[Fig4Row] = []
    for name in names:
        cfg = get_config(name)
        report = ProbingDriver(cfg, strategy=strategy).run()
        out.append(Fig4Row(get_info(name), report))
    return out


def render_fig4(rows: List[Fig4Row]) -> str:
    return render_table(
        HEADERS, [r.cells() for r in rows],
        title="Fig. 4 — Alias query statistics (measured vs. paper)")


def check_shape(row: Fig4Row) -> List[str]:
    """Shape assertions against the paper: which configurations need
    pessimistic answers, and the sign of the no-alias delta."""
    problems = []
    r, i = row.report, row.info
    if i.paper_fully_optimistic and r.pess_unique != 0:
        problems.append(
            f"{i.row_name}: paper is fully optimistic, we needed "
            f"{r.pess_unique} pessimistic answers")
    if not i.paper_fully_optimistic and r.pess_unique == 0:
        problems.append(
            f"{i.row_name}: paper needs pessimistic answers, we found none")
    if r.no_alias_oraql < r.no_alias_original:
        problems.append(f"{i.row_name}: ORAQL lowered the no-alias count")
    return problems
