"""repro.experiments — regeneration of every table and figure in the
paper's evaluation (see DESIGN.md's per-experiment index)."""

from .fig2_probing import (
    Fig2Row,
    SyntheticOracle,
    probe_chunked,
    probe_frequency,
    render_fig2,
    run_fig2,
)
from .fig3_dump import run_fig3
from .fig4_query_stats import Fig4Row, check_shape, render_fig4, run_fig4
from .fig5_importance import (
    DEFAULT_WORKLOADS,
    VersionRow,
    render_fig5_importance,
    render_fig5_importance_many,
    run_fig5_importance,
    version_rows,
)
from .fig5_versions import PAPER_VERSIONS, VERSIONS, render_fig5
from .fig6_pass_stats import FIG6_ROWS, Fig6Row, render_fig6, run_fig6
from .fig7_kernels import Fig7Row, render_fig7, run_fig7
from .runtimes import PAPER_NOTES, RuntimeRow, render_runtimes, run_runtimes
from .tables import pct, render_table

__all__ = [name for name in dir() if not name.startswith("_")]
