"""Fig. 5, measured: the versions table the importance driver produces.

``fig5_versions`` reproduces the *shape* of the paper's versions file —
the hand-curated list of increasingly-optimistic program versions.  This
module produces the same table from measurement: the importance driver
mines the safe optimistic set for the queries whose optimism buys more
than ``significant_percent`` of baseline cycles, and each Pareto prefix
of the value-ordered important set becomes one version row — from V0
(all may-alias) to the full safe set — with its measured cycles, the
savings recovered so far, and the transform the newly-added query
enables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..oraql.importance import ImportanceDriver, ImportanceReport
from .tables import render_table

#: the benchmark-smoke trio: distinct programming models, each with a
#: measured optimism win large enough to mine (see benchmarks/)
DEFAULT_WORKLOADS = ("MiniGMG-omptask", "TestSNAP-seq", "LULESH-seq")


@dataclass
class VersionRow:
    """One program version: a prefix of the important set kept
    optimistic, everything else answered may-alias."""

    version: str
    kept: str               # which query this version adds (or a label)
    enables: str            # the transform the added query enables
    cycles: float
    saved: float
    percent_of_full: float  # of the full optimistic set's savings

    def cells(self) -> List:
        return [self.version, self.kept, self.enables,
                f"{self.cycles:.0f}", f"{self.saved:.0f}",
                f"{self.percent_of_full:.1f}%"]


def version_rows(report: ImportanceReport) -> List[VersionRow]:
    """The versions table for one mined config: V0 (baseline) through
    the Pareto prefixes to V* (the full safe optimistic set)."""
    by_index = {q.index: q for q in report.important}
    rows: List[VersionRow] = []
    for p in report.pareto:
        if p.added is None:
            rows.append(VersionRow("V0", "(all may-alias)", "-",
                                   p.cycles, p.cycles_saved,
                                   p.percent_of_full))
            continue
        q = by_index.get(p.added)
        enables = "-"
        if q is not None and q.remarks:
            # first enabling remark, without the boilerplate prefix
            enables = q.remarks[0]
            if enables.startswith("remark: "):
                enables = enables[len("remark: "):]
            enables = enables.split(" because ")[0]
        value = ("required" if q is not None
                 and math.isinf(q.cycles_saved) else "")
        kept = f"+q{p.added}" + (f" [{value}]" if value else "")
        rows.append(VersionRow(f"V{p.k}", kept, enables,
                               p.cycles, p.cycles_saved,
                               p.percent_of_full))
    rows.append(VersionRow(
        "V*", f"(all {report.safe_queries} safe)", "-",
        report.optimal_cycles, report.total_savings,
        100.0 if report.total_savings > 0 else 0.0))
    return rows


HEADERS = ["version", "keeps optimistic", "enables",
           "cycles", "saved", "% of win"]


def render_fig5_importance(report: ImportanceReport) -> str:
    title = (f"Fig. 5 (measured) — versions of {report.config_name}: "
             f"{len(report.important)} of {report.safe_queries} safe "
             f"queries are important "
             f"(>{report.significant_percent:g}% of baseline)")
    return render_table(HEADERS, [r.cells() for r in version_rows(report)],
                        title=title)


def run_fig5_importance(
        workloads: Sequence[str] = DEFAULT_WORKLOADS,
        significant_percent: float = 2.0,
        recover_percent: float = 95.0,
        strategy: str = "chunked",
        cache_dir: Optional[str] = None,
        journal_dir: Optional[str] = None) -> List[ImportanceReport]:
    from ..oraql.cache import VerdictCache
    from ..workloads.base import get_config
    cache = VerdictCache(cache_dir) if cache_dir else None
    reports: List[ImportanceReport] = []
    for name in workloads:
        reports.append(ImportanceDriver(
            get_config(name), strategy=strategy,
            significant_percent=significant_percent,
            recover_percent=recover_percent,
            verdict_cache=cache, journal_dir=journal_dir).run())
    return reports


def render_fig5_importance_many(reports: Sequence[ImportanceReport]) -> str:
    out = [render_fig5_importance(r) for r in reports]
    out.append("\n".join(r.summary() for r in reports))
    return "\n\n".join(out)
