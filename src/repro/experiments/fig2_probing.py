"""Fig. 2: the probing strategies and the value of deduction/caching.

The figure illustrates recursive probing over a query sequence where
the "dangerous" queries are clustered, and notes that (a) a test whose
outcome is implied by its parent and sibling can be skipped, and (b)
chunked probing beats frequency-space probing exactly when dangerous
queries cluster.  We regenerate this quantitatively: synthetic oracles
with clustered vs. scattered dangerous sets, probed by both strategies,
reporting the number of tests each needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence, Set, Tuple

from ..oraql.driver import ProbingDriver
from ..oraql.sequence import DecisionSequence
from .tables import render_table


class SyntheticOracle:
    """A stand-in compile-and-test pipeline with a fixed dangerous set.

    A "test" passes iff every dangerous index is answered pessimistically.
    The query count is fixed (the simple, independent-queries model of
    Fig. 2); the driver machinery (hash cache, deduction counters) is
    exercised for real.
    """

    def __init__(self, n_queries: int, dangerous: Set[int]):
        self.n = n_queries
        self.dangerous = set(dangerous)
        self.tests = 0
        self.distinct: Set[tuple] = set()

    def test(self, seq: DecisionSequence) -> bool:
        bits = tuple(seq.bits[i] if i < len(seq.bits) else 1
                     for i in range(self.n))
        self.tests += 1
        self.distinct.add(bits)
        return all(bits[d] == 0 for d in self.dangerous)


def probe_chunked(oracle: SyntheticOracle) -> Set[int]:
    """The driver's chunked strategy against the synthetic oracle."""
    decided: List[int] = []
    while True:
        if oracle.test(DecisionSequence(decided)):
            return {i for i, b in enumerate(decided) if b == 0}
        span = oracle.n - len(decided)

        def g(k: int) -> bool:
            bits = decided + [1] * k + [0] * (span - k)
            return oracle.test(DecisionSequence(bits))

        if g(span):
            decided.extend([1] * span)
            continue
        lo, hi = 0, span
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if g(mid):
                lo = mid
            else:
                hi = mid
        decided.extend([1] * lo)
        decided.append(0)


def probe_frequency(oracle: SyntheticOracle) -> Set[int]:
    accepted: Set[int] = set()
    dangerous: Set[int] = set()
    # consumed from the left thousands of times on clustered layouts:
    # a deque's popleft is O(1) where list.pop(0) made the worklist
    # O(n²) (the same fix the real driver's _probe_frequency got)
    work: Deque[Tuple[int, int]] = deque([(1, 0)])
    while work:
        mod, res = work.popleft()
        idxs = [i for i in range(res, oracle.n, mod)
                if i not in accepted and i not in dangerous]
        if not idxs:
            continue
        opt = accepted | set(idxs)
        bits = [1 if i in opt else 0 for i in range(oracle.n)]
        if oracle.test(DecisionSequence(bits)):
            accepted |= set(idxs)
            continue
        if len(idxs) == 1:
            dangerous.add(idxs[0])
            continue
        work.append((mod * 2, res))
        work.append((mod * 2, res + mod))
    return dangerous


@dataclass
class Fig2Row:
    layout: str
    n: int
    k: int
    chunked_tests: int
    frequency_tests: int

    def cells(self) -> List:
        return [self.layout, self.n, self.k, self.chunked_tests,
                self.frequency_tests,
                f"{self.frequency_tests / max(1, self.chunked_tests):.2f}x"]


def _probe_layout(item) -> Fig2Row:
    """One Fig. 2 row: both strategies against one dangerous layout.
    Module level so the parallel sweep can ship it to worker processes."""
    name, n, dangerous = item
    oc = SyntheticOracle(n, set(dangerous))
    found_c = probe_chunked(oc)
    assert found_c == set(dangerous), (name, found_c)
    of = SyntheticOracle(n, set(dangerous))
    found_f = probe_frequency(of)
    assert found_f == set(dangerous), (name, found_f)
    return Fig2Row(name, n, len(dangerous), oc.tests, of.tests)


def run_fig2(n: int = 256, jobs: int = 1) -> List[Fig2Row]:
    layouts = {
        "clustered (8 adjacent)": {n // 2 + i for i in range(8)},
        "two clusters (2 x 4)": {n // 6 + i for i in range(4)}
                                | {3 * n // 4 + i for i in range(4)},
        "scattered (8 uniform)": {(n // 9) * k + 3 for k in range(8)},
        "single": {n // 2 + 9},
        "none": set(),
    }
    items = [(name, n, frozenset(dangerous))
             for name, dangerous in layouts.items()]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as ex:
            return list(ex.map(_probe_layout, items))
    return [_probe_layout(item) for item in items]


HEADERS = ["dangerous layout", "#queries", "#dangerous",
           "chunked tests", "frequency tests", "freq/chunked"]


def render_fig2(rows: List[Fig2Row]) -> str:
    return render_table(
        HEADERS, [r.cells() for r in rows],
        title="Fig. 2 — probing strategies on synthetic dangerous sets")
