"""Fig. 6: selected LLVM-statistics deltas between the original and the
ORAQL compilation.

The paper picks one interesting (pass, statistic) pair per benchmark row
— loads hoisted by LICM, stores deleted by DSE, vectorized loops,
machine instructions from the asm printer, register spills, ... — and
reports original vs. ORAQL values.  We regenerate the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..oraql import Compiler, ProbingDriver
from ..workloads.base import get_config
from .tables import pct, render_table

#: the rows of Fig. 6: (config row, pass display name, statistic)
FIG6_ROWS: List[Tuple[str, str, str]] = [
    ("XSBench-seq", "asm printer", "# machine instructions generated"),
    ("XSBench-cuda-thrust", "Early CSE", "# instructions eliminated"),
    ("TestSNAP-kokkos-cuda", "asm printer", "# machine instructions generated"),
    ("TestSNAP-fortran", "asm printer", "# machine instructions generated"),
    ("TestSNAP-kokkos-cuda", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("TestSNAP-fortran", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("GridMini-offload", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("Quicksilver-openmp", "Delete dead loops", "# deleted loops"),
    ("Quicksilver-openmp", "Dead Store Elimination", "# stores deleted"),
    ("Quicksilver-openmp", "Global Value Numbering", "# loads deleted"),
    ("Quicksilver-openmp", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("Quicksilver-openmp", "register allocation",
     "# register spills inserted"),
    ("MiniFE-openmp", "SLP Vectorizer", "# vector instructions generated"),
    ("MiniGMG-ompif", "Loop Vectorizer", "# vectorized loops"),
    ("MiniGMG-omptask", "Loop Vectorizer", "# vectorized loops"),
    ("MiniGMG-sse", "Loop Vectorizer", "# vectorized loops"),
    ("MiniGMG-omptask", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("MiniGMG-ompif", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
    ("MiniGMG-sse", "Loop Invariant Code Motion",
     "# loads hoisted or sunk"),
]

#: paper values per row index: (original, oraql, delta string)
PAPER_VALUES = [
    (1763, 1688, "-4.2%"), (1482, 1538, "+3.8%"), (8573, 8309, "-3%"),
    (57020, 53487, "-6.1%"), (728, 931, "+27.8%"), (70, 961, "+1272%"),
    (4, 10, "+150%"), (2, 55, "+2650%"), (6, 98, "+1533.3%"),
    (45, 245, "+444.4%"), (5, 21, "+320%"), (780, 757, "-2.9%"),
    (139, 185, "+33%"), (9, 12, "+33%"), (9, 11, "+22%"), (11, 13, "+18%"),
    (208, 366, "+75.9%"), (215, 394, "+83.2%"), (202, 368, "+82%"),
]


@dataclass
class Fig6Row:
    config: str
    pass_name: str
    stat: str
    original: int
    oraql: int
    paper: Tuple[int, int, str]

    def cells(self) -> List:
        return [self.config, self.pass_name, self.stat,
                self.original, self.oraql, pct(self.oraql, self.original),
                f"{self.paper[0]} -> {self.paper[1]} ({self.paper[2]})"]


def _final_sequences(configs: List[str], strategy: str = "chunked"
                     ) -> Dict[str, object]:
    """Probe each distinct config once; reuse across Fig. 6 rows."""
    seqs: Dict[str, object] = {}
    for name in configs:
        if name in seqs:
            continue
        report = ProbingDriver(get_config(name), strategy=strategy).run()
        seqs[name] = report
    return seqs


def run_fig6(rows=FIG6_ROWS, paper=PAPER_VALUES) -> List[Fig6Row]:
    reports = _final_sequences(sorted({r[0] for r in rows}))
    out: List[Fig6Row] = []
    for (config, pass_name, stat), pval in zip(rows, paper):
        rep = reports[config]
        original = rep.baseline_program.stats.get(pass_name, stat)
        oraql = rep.final_program.stats.get(pass_name, stat)
        out.append(Fig6Row(config, pass_name, stat, original, oraql, pval))
    return out


HEADERS = ["Benchmark", "Pass", "Property", "Original", "ORAQL", "Δ",
           "paper (orig -> ORAQL)"]


def render_fig6(rows: List[Fig6Row]) -> str:
    return render_table(HEADERS, [r.cells() for r in rows],
                        title="Fig. 6 — LLVM statistics, original vs. ORAQL")
