"""Table rendering helpers for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    cols = len(headers)
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    out: List[str] = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def pct(new: float, old: float) -> str:
    if old == 0:
        return "n/a"
    return f"{100.0 * (new - old) / old:+.1f}%"
