"""Fig. 3: the ORAQL debug dump of pessimistic queries.

The paper shows the four pessimistically-answered non-cached queries of
the TestSNAP OpenMP build, printed with
``-opt-aa-dump-{first,pessimistic}`` and preceded by the issuing pass
(``-debug-pass=Executions``).  We regenerate the same dump for our
TestSNAP OpenMP configuration: each entry shows the response kind, the
cache status, the two locations with their LocationSize, the scope
(the outlined ``compute_deidrj`` region), and the source lines.
"""

from __future__ import annotations

from typing import List

from ..oraql import Compiler, DumpFlags, ProbingDriver, render_pessimistic_dump
from ..oraql.sequence import sequence_from_pessimistic_set
from ..workloads.base import get_config


def run_fig3(config_row: str = "TestSNAP-openmp",
             strategy: str = "chunked") -> str:
    """Probe the config, then re-compile with the final sequence and the
    dump flags enabled, returning the Fig. 3-style text."""
    cfg = get_config(config_row)
    report = ProbingDriver(cfg, strategy=strategy).run()
    # re-compile with dumping on to produce the debug output for real
    prog = Compiler().compile(
        cfg, sequence=sequence_from_pessimistic_set(
            set(report.pessimistic_indices)),
        oraql_enabled=True,
        dump=DumpFlags(first=True, cached=False, optimistic=False,
                       pessimistic=True),
        debug_pass_executions=True)
    # the interleaved debug log contains "Executing Pass ..." lines and
    # the [ORAQL] blocks — extract the ORAQL-relevant portion
    lines: List[str] = []
    log = prog.ctx.debug_log
    for i, line in enumerate(log):
        if line.startswith("[ORAQL]"):
            # attach the most recent pass-execution line once
            for j in range(i - 1, -1, -1):
                if log[j].startswith("Executing Pass"):
                    if not lines or lines[-1] != log[j]:
                        if log[j] not in lines:
                            lines.append(log[j])
                    break
            lines.append(line)
    return "\n".join(lines) if lines else render_pessimistic_dump(report)
