"""Section V text: runtime / instruction-count comparisons.

The paper's per-benchmark narratives report executed-instruction and
wall-clock deltas between the original and (almost-)optimal compilation:

* TestSNAP seq: −1.2% instructions, +3.6% performance;
* TestSNAP OpenMP: −8% instructions, ≈flat performance;
* TestSNAP Kokkos/CUDA: no kernel-time impact;
* GridMini: ~7% *slowdown* of the device kernel;
* LULESH: runtime barely affected in all variants;
* MiniGMG: ompif ~8% faster, sse/omptask ≈flat;
* XSBench / MiniFE: no significant difference.

We regenerate the deltas from the VM's instruction counter ("perf") and
cycle cost model (wall clock), plus per-kernel GPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..oraql import ProbingDriver
from ..workloads.base import get_config
from .tables import pct, render_table


@dataclass
class RuntimeRow:
    config: str
    insts_orig: int
    insts_oraql: int
    cycles_orig: float
    cycles_oraql: float
    kernel_cycles_orig: float
    kernel_cycles_oraql: float
    paper_note: str

    def cells(self) -> List:
        cells = [self.config, self.insts_orig, self.insts_oraql,
                 pct(self.insts_oraql, self.insts_orig),
                 f"{self.cycles_orig:.0f}", f"{self.cycles_oraql:.0f}",
                 pct(self.cycles_oraql, self.cycles_orig)]
        if self.kernel_cycles_orig:
            cells.append(pct(self.kernel_cycles_oraql,
                             self.kernel_cycles_orig))
        else:
            cells.append("-")
        cells.append(self.paper_note)
        return cells


PAPER_NOTES: Dict[str, str] = {
    "TestSNAP-seq": "insns -1.2%, perf +3.6%",
    "TestSNAP-openmp": "insns -8%, perf ~flat",
    "TestSNAP-kokkos-cuda": "kernel time unchanged",
    "TestSNAP-fortran": "+5% end-to-end (setup stage)",
    "XSBench-seq": "no significant difference",
    "XSBench-openmp": "no significant difference",
    "XSBench-cuda-thrust": "no significant difference",
    "GridMini-offload": "~7% kernel slowdown",
    "Quicksilver-openmp": "withheld (measurement hazards)",
    "LULESH-seq": "18.66s vs 18.51s (~flat)",
    "LULESH-openmp": "4.18s vs 4.12s (~flat)",
    "LULESH-mpi": "47.6s vs 47.7s (~flat)",
    "MiniFE-openmp": "not impacted",
    "MiniGMG-ompif": "1.299s -> 1.199s (~8% faster)",
    "MiniGMG-omptask": "1.155s -> 1.144s (~1%)",
    "MiniGMG-sse": "1.161s vs 1.157s (~flat)",
}


def run_runtimes(rows: Optional[List[str]] = None,
                 strategy: str = "chunked") -> List[RuntimeRow]:
    out: List[RuntimeRow] = []
    for name in (rows or list(PAPER_NOTES)):
        report = ProbingDriver(get_config(name), strategy=strategy).run()
        r0 = report.baseline_program.run()
        r1 = report.final_program.run()
        out.append(RuntimeRow(
            name, r0.instructions, r1.instructions, r0.cycles, r1.cycles,
            sum(r0.kernel_cycles.values()), sum(r1.kernel_cycles.values()),
            PAPER_NOTES.get(name, "")))
    return out


HEADERS = ["Benchmark", "insts orig", "insts ORAQL", "Δ insts",
           "cycles orig", "cycles ORAQL", "Δ cycles", "Δ kernel", "paper"]


def render_runtimes(rows: List[RuntimeRow]) -> str:
    return render_table(
        HEADERS, [r.cells() for r in rows],
        title="§V text — executed instructions and modelled run time")
