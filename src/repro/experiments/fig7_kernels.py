"""Fig. 7: static properties of TestSNAP Kokkos/CUDA kernels.

The paper reports, for the 7 (of 44) kernels whose static properties
change under ORAQL, the register count and stack-frame size of the
original vs. the optimistic device compilation.  We regenerate the same
two columns for every kernel of our TestSNAP CUDA configuration and
highlight the changed ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..oraql import Compiler, ProbingDriver
from ..workloads.base import get_config
from .tables import pct, render_table


@dataclass
class Fig7Row:
    kernel: str
    regs_orig: int
    stack_orig: int
    regs_oraql: int
    stack_oraql: int

    @property
    def changed(self) -> bool:
        return (self.regs_orig != self.regs_oraql
                or self.stack_orig != self.stack_oraql)

    def cells(self) -> List:
        return [self.kernel, self.regs_orig, self.stack_orig,
                self.regs_oraql, self.stack_oraql,
                pct(self.regs_oraql, self.regs_orig),
                pct(self.stack_oraql, self.stack_orig),
                "*" if self.changed else ""]


def run_fig7(config_row: str = "TestSNAP-kokkos-cuda",
             strategy: str = "chunked") -> List[Fig7Row]:
    report = ProbingDriver(get_config(config_row), strategy=strategy).run()
    orig = report.baseline_program.kernel_info
    final = report.final_program.kernel_info
    rows: List[Fig7Row] = []
    for name in sorted(orig):
        o = orig[name]
        f = final.get(name, o)
        rows.append(Fig7Row(name, o.registers, o.stack_bytes,
                            f.registers, f.stack_bytes))
    return rows


HEADERS = ["Kernel", "regs orig", "stack orig", "regs ORAQL",
           "stack ORAQL", "Δ regs", "Δ stack", "changed"]


def render_fig7(rows: List[Fig7Row]) -> str:
    n_changed = sum(1 for r in rows if r.changed)
    return render_table(
        HEADERS, [r.cells() for r in rows],
        title=(f"Fig. 7 — TestSNAP Kokkos/CUDA kernel static properties "
               f"({n_changed} of {len(rows)} kernels changed; "
               f"paper: 7 of 44)"))
