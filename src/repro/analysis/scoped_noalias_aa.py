"""Scoped-noalias AA over ``!alias.scope`` / ``!noalias`` metadata.

The frontend attaches a fresh scope to each ``restrict`` pointer's
accesses and lists that scope in the ``noalias`` set of every access not
based on it; this pass turns those certificates into no-alias answers.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from .aliasing import AliasAnalysisPass, AliasResult
from .memloc import MemoryLocation


class ScopedNoAliasAA(AliasAnalysisPass):
    name = "scoped-noalias-aa"

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        sa, sb = a.scoped, b.scoped
        if sa is None or sb is None:
            return AliasResult.MAY
        # a is provably outside every scope b belongs to (or vice versa)
        if sb.alias_scopes and set(sb.alias_scopes) <= set(sa.noalias_scopes):
            return AliasResult.NO
        if sa.alias_scopes and set(sa.alias_scopes) <= set(sb.noalias_scopes):
            return AliasResult.NO
        return AliasResult.MAY
