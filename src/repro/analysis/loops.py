"""Natural-loop detection (back edges on the dominator tree) and LoopInfo."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import BranchInst, ICmpInst, Instruction, PhiInst
from ..ir.values import ConstantInt, Value
from .cfg import predecessor_map
from .dominators import DominatorTree


class Loop:
    """A natural loop: header + body blocks, nested sub-loops."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.subloops: List["Loop"] = []

    # -- shape queries ---------------------------------------------------
    def contains(self, bb: BasicBlock) -> bool:
        return bb in self.blocks

    def contains_inst(self, inst: Instruction) -> bool:
        return inst.parent in self.blocks

    @property
    def depth(self) -> int:
        d, l = 1, self.parent
        while l is not None:
            d += 1
            l = l.parent
        return d

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header whose only
        successor is the header, if any (loop-simplify form)."""
        outside = [p for p in self.header.predecessors if p not in self.blocks]
        if len(outside) == 1 and outside[0].successors == [self.header]:
            return outside[0]
        return None

    def latches(self) -> List[BasicBlock]:
        return [p for p in self.header.predecessors if p in self.blocks]

    def exit_blocks(self) -> List[BasicBlock]:
        exits = []
        for bb in self.body_in_layout_order():  # deterministic order
            for s in bb.successors:
                if s not in self.blocks and s not in exits:
                    exits.append(s)
        return exits

    def exiting_blocks(self) -> List[BasicBlock]:
        return [bb for bb in self.body_in_layout_order()
                if any(s not in self.blocks for s in bb.successors)]

    def body_in_layout_order(self) -> List[BasicBlock]:
        fn = self.header.parent
        return [bb for bb in fn.blocks if bb in self.blocks]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of a function, with the nesting forest."""

    def __init__(self, fn: Function, dt: Optional[DominatorTree] = None):
        self.function = fn
        self.dt = dt or DominatorTree(fn)
        self.loops: List[Loop] = []
        self.loop_of_block: Dict[BasicBlock, Loop] = {}
        self._discover()

    def _discover(self) -> None:
        preds = predecessor_map(self.function)
        headers: Dict[BasicBlock, Loop] = {}
        # find back edges: tail -> header where header dominates tail
        for bb in self.dt.rpo:
            for succ in bb.successors:
                if self.dt.is_reachable(succ) and self.dt.dominates_block(succ, bb):
                    loop = headers.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        headers[succ] = loop
                        self.loops.append(loop)
                    # collect the natural loop body by walking preds from tail
                    work = [bb]
                    while work:
                        node = work.pop()
                        if node in loop.blocks:
                            continue
                        loop.blocks.add(node)
                        for p in preds.get(node, []):
                            if self.dt.is_reachable(p):
                                work.append(p)

        # nesting: loop A is inside B if A's header is in B and A is not B
        for a in self.loops:
            best: Optional[Loop] = None
            for b in self.loops:
                if a is b or a.header not in b.blocks:
                    continue
                if best is None or len(b.blocks) < len(best.blocks):
                    best = b
            a.parent = best
            if best is not None:
                best.subloops.append(a)

        # innermost loop per block
        for loop in sorted(self.loops, key=lambda l: -len(l.blocks)):
            for bb in loop.blocks:
                self.loop_of_block[bb] = loop

    def loop_for(self, bb: BasicBlock) -> Optional[Loop]:
        return self.loop_of_block.get(bb)

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost(self) -> List[Loop]:
        return [l for l in self.loops if not l.subloops]


def loop_trip_count(loop: Loop) -> Optional[int]:
    """Constant trip count for canonical ``for (i = c0; i < c1; i += c2)``
    loops, else None.  Used by the vectorizers' legality/cost checks."""
    header = loop.header
    term = header.terminator
    if not isinstance(term, BranchInst) or not term.is_conditional:
        # try a single exiting latch instead
        exiting = loop.exiting_blocks()
        if len(exiting) != 1:
            return None
        term = exiting[0].terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return None
    cond = term.condition
    if not isinstance(cond, ICmpInst):
        return None
    lhs, rhs = cond.operands
    if not isinstance(rhs, ConstantInt):
        return None
    # find the canonical induction phi
    if not isinstance(lhs, PhiInst):
        return None
    start = None
    step = None
    from ..ir.instructions import BinaryInst
    for v, b in lhs.incoming:
        if b in loop.blocks:
            if (isinstance(v, BinaryInst) and v.op == "add"
                    and v.lhs is lhs and isinstance(v.rhs, ConstantInt)):
                step = v.rhs.value
        else:
            if isinstance(v, ConstantInt):
                start = v.value
    if start is None or step is None or step == 0:
        return None
    bound = rhs.value
    if cond.pred in ("slt", "ult") and step > 0 and bound > start:
        return max(0, -(-(bound - start) // step))
    if cond.pred in ("sle", "ule") and step > 0 and bound >= start:
        return max(0, -(-(bound - start + 1) // step))
    return None
