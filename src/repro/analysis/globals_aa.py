"""GlobalsAA: module-level reasoning about non-address-taken globals.

A global whose address is only ever used directly in loads, stores (as
the *pointer*), and GEPs cannot be the target of any pointer that flows
through memory, arguments, or calls — so such pointers never alias it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    CastInst,
    GEPInst,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, Value
from .aliasing import AliasAnalysisPass, AliasResult, underlying_object
from .memloc import MemoryLocation


def global_is_address_taken(gv: GlobalVariable, budget: int = 128) -> bool:
    work = [gv]
    seen: Set[Value] = set()
    while work:
        v = work.pop()
        if v in seen:
            continue
        seen.add(v)
        for user in v.users:
            budget -= 1
            if budget <= 0:
                return True
            if isinstance(user, (GEPInst,)):
                work.append(user)
            elif isinstance(user, CastInst):
                if user.op == "ptrtoint":
                    return True
                work.append(user)
            elif isinstance(user, LoadInst):
                continue
            elif isinstance(user, StoreInst):
                if user.value is v:
                    return True
            elif isinstance(user, (CallInst, ReturnInst, PhiInst, SelectInst)):
                return True
    return False


class GlobalsAA(AliasAnalysisPass):
    """Caches the address-taken verdict per global for the module run."""

    name = "globals-aa"
    requires_module = True
    invalidation_scope = "module"

    def __init__(self, module: Optional[Module] = None):
        self.module = module
        self._cache: Dict[int, bool] = {}

    def _address_taken(self, gv: GlobalVariable) -> bool:
        hit = self._cache.get(gv.id)
        if hit is None:
            hit = global_is_address_taken(gv)
            self._cache[gv.id] = hit
        return hit

    def invalidate(self) -> None:
        self._cache.clear()

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        ua = underlying_object(a.ptr)
        ub = underlying_object(b.ptr)
        for g, other in ((ua, ub), (ub, ua)):
            if isinstance(g, GlobalVariable) and not self._address_taken(g):
                if isinstance(other, (Argument, LoadInst, CallInst)):
                    return AliasResult.NO
        return AliasResult.MAY
