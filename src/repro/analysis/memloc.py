"""Memory locations and location sizes (LLVM's MemoryLocation equivalent).

An alias query is about two *locations*: a pointer plus a location size
describing how much memory around the pointer is in question.  ORAQL's
query cache deliberately ignores the sizes and keys only on the pointer
pair (paper §IV-A); the dump format prints them (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.instructions import (
    CallInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    StoreInst,
)
from ..ir.metadata import ScopedAliasMD, TBAANode
from ..ir.values import ConstantInt, Value


@dataclass(frozen=True)
class LocationSize:
    """Size of a memory access: precise, an upper bound, or unknown.

    ``beforeOrAfterPointer`` means the access may span memory both before
    and after the pointer (the most conservative option, used e.g. for
    whole-object queries like the ``%this`` query in Fig. 3).
    """

    value: Optional[int]  # bytes; None = unknown
    precise: bool = True

    @staticmethod
    def precise_(n: int) -> "LocationSize":
        return LocationSize(n, True)

    @staticmethod
    def upper_bound(n: int) -> "LocationSize":
        return LocationSize(n, False)

    @staticmethod
    def before_or_after_pointer() -> "LocationSize":
        return LocationSize(None, False)

    @property
    def has_value(self) -> bool:
        return self.value is not None

    def __str__(self) -> str:
        if self.value is None:
            return "LocationSize::beforeOrAfterPointer"
        kind = "precise" if self.precise else "upperBound"
        return f"LocationSize::{kind}({self.value})"


BEFORE_OR_AFTER = LocationSize.before_or_after_pointer()


@dataclass(frozen=True)
class MemoryLocation:
    """A (pointer, size) pair plus the metadata AA implementations consume."""

    ptr: Value
    size: LocationSize
    tbaa: Optional[TBAANode] = None
    scoped: Optional[ScopedAliasMD] = None

    # -- factories ----------------------------------------------------------
    @staticmethod
    def get(inst: Instruction) -> "MemoryLocation":
        """The location accessed by a memory instruction."""
        if isinstance(inst, LoadInst):
            return MemoryLocation(
                inst.pointer, LocationSize.precise_(inst.type.size()),
                inst.tbaa, inst.scoped)
        if isinstance(inst, StoreInst):
            return MemoryLocation(
                inst.pointer, LocationSize.precise_(inst.value.type.size()),
                inst.tbaa, inst.scoped)
        if isinstance(inst, MemSetInst):
            return MemoryLocation.for_dst(inst)
        raise TypeError(f"no single location for {inst.opcode}")

    @staticmethod
    def for_size_operand(ptr: Value, size: Value, inst: Instruction) -> "MemoryLocation":
        if isinstance(size, ConstantInt):
            ls = LocationSize.precise_(size.value)
        else:
            ls = BEFORE_OR_AFTER
        return MemoryLocation(ptr, ls, inst.tbaa, inst.scoped)

    @staticmethod
    def for_src(inst: MemCpyInst) -> "MemoryLocation":
        return MemoryLocation.for_size_operand(inst.src, inst.size, inst)

    @staticmethod
    def for_dst(inst) -> "MemoryLocation":
        return MemoryLocation.for_size_operand(inst.dst, inst.size, inst)

    @staticmethod
    def whole_object(ptr: Value) -> "MemoryLocation":
        """A query about the entire object behind ``ptr`` (e.g. ``%this``)."""
        return MemoryLocation(ptr, BEFORE_OR_AFTER)

    def with_size(self, size: LocationSize) -> "MemoryLocation":
        return MemoryLocation(self.ptr, size, self.tbaa, self.scoped)

    def __str__(self) -> str:
        return f"{self.ptr.short()} [{self.size}]"
