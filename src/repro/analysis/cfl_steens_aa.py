"""CFL-Steensgaard-style unification-based points-to alias analysis.

Flow-insensitive, intraprocedural, field-insensitive, almost-linear via
union-find — the classic Steensgaard trade-off [33].  Off by default in
the chain (as in LLVM 14); enabled by the ``cfl-steens`` pipeline flag.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    GEPInst,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Argument, GlobalVariable, Value
from .aliasing import AliasAnalysisPass, AliasResult, underlying_object
from .memloc import MemoryLocation

EXTERNAL = "<external>"


class _UnionFind:
    def __init__(self):
        self.parent: Dict[object, object] = {}

    def find(self, x):
        p = self.parent.setdefault(x, x)
        if p is x:
            return x
        root = self.find(p)
        self.parent[x] = root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self.parent[ra] = rb
        return self.find(a)


class _SteensSummary:
    """Per-function unification result.

    Each equivalence class has one "pointee" class; loads/stores unify
    through it.  ``external`` is the class of everything escaping.
    """

    def __init__(self, fn: Function):
        self.uf = _UnionFind()
        self.pointee: Dict[object, object] = {}
        self._fresh = 0
        self.external_class = self._node(EXTERNAL)
        # external's pointee is external itself (top)
        self.pointee[self.external_class] = self.external_class
        self._build(fn)

    def _node(self, key):
        return self.uf.find(key)

    def _pointee_of(self, cls):
        cls = self.uf.find(cls)
        p = self.pointee.get(cls)
        if p is None:
            self._fresh += 1
            p = self.uf.find(("obj", self._fresh))
            self.pointee[cls] = p
        return self.uf.find(p)

    def _unify(self, a, b):
        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra is rb:
            return ra
        pa, pb = self.pointee.get(ra), self.pointee.get(rb)
        r = self.uf.union(ra, rb)
        if pa is not None and pb is not None:
            self.pointee[r] = self._unify(pa, pb)
        elif pa is not None or pb is not None:
            self.pointee[r] = self.uf.find(pa if pa is not None else pb)
        return r

    def _ptr_class(self, v: Value):
        """Class of the *pointer value* v (what object it may denote)."""
        if isinstance(v, (GEPInst,)):
            return self._ptr_class(v.pointer)
        if isinstance(v, CastInst) and v.op == "bitcast":
            return self._ptr_class(v.value)
        return self._node(v)

    def _build(self, fn: Function) -> None:
        for arg in fn.args:
            if arg.type.is_pointer and not arg.is_noalias:
                self._unify(self._node(arg), self.external_class)
        for inst in fn.instructions():
            if isinstance(inst, LoadInst):
                if inst.type.is_pointer:
                    pcls = self._ptr_class(inst.pointer)
                    self._unify(self._node(inst), self._pointee_of(pcls))
            elif isinstance(inst, StoreInst):
                if inst.value.type.is_pointer:
                    pcls = self._ptr_class(inst.pointer)
                    self._unify(self._pointee_of(pcls),
                                self._ptr_class(inst.value))
            elif isinstance(inst, (PhiInst, SelectInst)):
                if inst.type.is_pointer:
                    srcs = (inst.operands if isinstance(inst, PhiInst)
                            else inst.operands[1:])
                    for s in srcs:
                        if s.type.is_pointer:
                            self._unify(self._node(inst), self._ptr_class(s))
            elif isinstance(inst, CallInst):
                # arguments escape; results come from anywhere
                for a in inst.args:
                    if a.type.is_pointer and not inst.is_pure():
                        self._unify(self._ptr_class(a), self.external_class)
                if inst.type.is_pointer:
                    self._unify(self._node(inst), self.external_class)

    def object_class(self, v: Value):
        base = underlying_object(v)
        if isinstance(base, (AllocaInst, GlobalVariable)):
            return self.uf.find(base)
        if isinstance(base, Argument) and base.is_noalias:
            return self.uf.find(base)
        return self.uf.find(self._ptr_class(base))


class CFLSteensAA(AliasAnalysisPass):
    name = "cfl-steens-aa"
    invalidation_scope = "function"

    def __init__(self):
        self._summaries: Dict[int, _SteensSummary] = {}

    def invalidate(self) -> None:
        self._summaries.clear()

    def invalidate_function(self, fn: Function) -> None:
        """Summaries are built from one function's IR alone, so a
        function-local change only stales that function's entry."""
        self._summaries.pop(fn.id, None)

    def _summary(self, fn: Function) -> _SteensSummary:
        s = self._summaries.get(fn.id)
        if s is None:
            s = _SteensSummary(fn)
            self._summaries[fn.id] = s
        return s

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        if fn is None:
            return AliasResult.MAY
        s = self._summary(fn)
        ca, cb = s.object_class(a.ptr), s.object_class(b.ptr)
        ext = s.uf.find(s.external_class)
        if ca is ext or cb is ext:
            return AliasResult.MAY
        if ca is not cb:
            return AliasResult.NO
        return AliasResult.MAY
