"""CFL-Andersen-style inclusion-based points-to alias analysis.

Flow-insensitive, intraprocedural, field-insensitive, solved with the
classic worklist over subset constraints [35, 36].  More precise and more
expensive than Steensgaard; off by default (as in LLVM 14).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    GEPInst,
    LoadInst,
    PhiInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Argument, GlobalVariable, Value
from .aliasing import AliasAnalysisPass, AliasResult, underlying_object
from .memloc import MemoryLocation

EXTERNAL = "<external>"


class _AndersSummary:
    """Constraint graph + fixed-point points-to sets for one function."""

    def __init__(self, fn: Function):
        # pts: node -> set of objects; objects are Value ids or EXTERNAL
        self.pts: Dict[object, Set[object]] = {}
        self.copy_edges: Dict[object, Set[object]] = {}  # src -> dsts
        self.load_edges: Dict[object, Set[object]] = {}  # p -> dsts (dst ⊇ *p)
        self.store_edges: Dict[object, Set[object]] = {}  # p -> srcs (*p ⊇ src)
        self.content: Dict[object, Set[object]] = {}  # object -> contents
        self.escaped: Set[object] = set()
        self._build(fn)
        self._solve()

    # -- graph construction -------------------------------------------------
    def _key(self, v: Value):
        if isinstance(v, GEPInst):
            return self._key(v.pointer)
        if isinstance(v, CastInst) and v.op == "bitcast":
            return self._key(v.value)
        return v

    def _seed(self, v: Value) -> object:
        k = self._key(v)
        if k not in self.pts:
            self.pts[k] = set()
            if isinstance(k, (AllocaInst, GlobalVariable)):
                self.pts[k].add(k)
            elif isinstance(k, Argument):
                if k.is_noalias:
                    self.pts[k].add(k)  # its own private object
                else:
                    self.pts[k].add(EXTERNAL)
            elif isinstance(k, CallInst):
                self.pts[k].add(EXTERNAL)
        return k

    def _copy(self, src: Value, dst: Value) -> None:
        self.copy_edges.setdefault(self._seed(src), set()).add(self._seed(dst))

    def _build(self, fn: Function) -> None:
        for inst in fn.instructions():
            if isinstance(inst, LoadInst) and inst.type.is_pointer:
                self.load_edges.setdefault(
                    self._seed(inst.pointer), set()).add(self._seed(inst))
            elif isinstance(inst, StoreInst) and inst.value.type.is_pointer:
                self.store_edges.setdefault(
                    self._seed(inst.pointer), set()).add(self._seed(inst.value))
            elif isinstance(inst, PhiInst) and inst.type.is_pointer:
                for v in inst.operands:
                    if v.type.is_pointer:
                        self._copy(v, inst)
            elif isinstance(inst, SelectInst) and inst.type.is_pointer:
                for v in inst.operands[1:]:
                    self._copy(v, inst)
            elif isinstance(inst, CallInst) and not inst.is_pure():
                # every object reachable from a pointer passed to an opaque
                # call escapes; the escape worklist in _solve propagates
                for a in inst.args:
                    if a.type.is_pointer:
                        k = self._seed(a)
                        self._escapes_from = getattr(self, "_escapes_from", [])
                        self._escapes_from.append(k)

    # -- fixed point -------------------------------------------------------
    def _solve(self) -> None:
        changed = True
        escapes_from: List[object] = getattr(self, "_escapes_from", [])
        # bound iterations defensively; graphs are tiny per function
        for _ in range(10_000):
            changed = False
            # copy edges
            for src, dsts in self.copy_edges.items():
                s = self.pts.get(src, set())
                for d in dsts:
                    t = self.pts.setdefault(d, set())
                    if not s <= t:
                        t |= s
                        changed = True
            # load edges: dst ⊇ content(o) for o in pts(p)
            for p, dsts in self.load_edges.items():
                for o in list(self.pts.get(p, ())):
                    c = (self.content.setdefault(o, {EXTERNAL})
                         if o == EXTERNAL else self.content.setdefault(o, set()))
                    for d in dsts:
                        t = self.pts.setdefault(d, set())
                        if not c <= t:
                            t |= c
                            changed = True
            # store edges: content(o) ⊇ pts(src) for o in pts(p)
            for p, srcs in self.store_edges.items():
                for o in list(self.pts.get(p, ())):
                    c = self.content.setdefault(o, set())
                    for src in srcs:
                        s = self.pts.get(src, set())
                        if not s <= c:
                            c |= s
                            changed = True
            # escapes: objects reachable from escaping pointers
            for k in escapes_from:
                for o in list(self.pts.get(k, ())):
                    if o != EXTERNAL and o not in self.escaped:
                        self.escaped.add(o)
                        self.content.setdefault(o, set()).add(EXTERNAL)
                        changed = True
            # escaped objects may be written through external pointers
            for o in list(self.escaped):
                c = self.content.setdefault(o, set())
                if EXTERNAL not in c:
                    c.add(EXTERNAL)
                    changed = True
            if not changed:
                break

    # -- queries ------------------------------------------------------------
    def points_to(self, v: Value) -> Set[object]:
        base = underlying_object(v)
        k = self._key(base)
        if k in self.pts:
            return self.pts[k]
        if isinstance(k, (AllocaInst, GlobalVariable)):
            return {k}
        return {EXTERNAL}

    def may_alias(self, a: Value, b: Value) -> bool:
        pa, pb = self.points_to(a), self.points_to(b)
        if pa & pb:
            return True
        if EXTERNAL in pa and (EXTERNAL in pb or any(
                o in self.escaped for o in pb)):
            return True
        if EXTERNAL in pb and any(o in self.escaped for o in pa):
            return True
        return False


class CFLAndersAA(AliasAnalysisPass):
    name = "cfl-anders-aa"
    invalidation_scope = "function"

    def __init__(self):
        self._summaries: Dict[int, _AndersSummary] = {}

    def invalidate(self) -> None:
        self._summaries.clear()

    def invalidate_function(self, fn: Function) -> None:
        """Summaries are built from one function's IR alone, so a
        function-local change only stales that function's entry."""
        self._summaries.pop(fn.id, None)

    def _summary(self, fn: Function) -> _AndersSummary:
        s = self._summaries.get(fn.id)
        if s is None:
            s = _AndersSummary(fn)
            self._summaries[fn.id] = s
        return s

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        if fn is None:
            return AliasResult.MAY
        s = self._summary(fn)
        if not s.may_alias(a.ptr, b.ptr):
            return AliasResult.NO
        return AliasResult.MAY
