"""MemorySSA: an SSA form over memory state [2].

Stores (and other writers) become MemoryDefs, loads become MemoryUses,
and CFG joins get MemoryPhis.  The *walker* answers "what is the nearest
access that may clobber this location?" by issuing alias queries — in the
paper's Quicksilver run, 61% of all optimistic ORAQL queries originate
here (§V-D).

As in LLVM, uses can be *optimized* at construction time (each MemoryUse
caches its clobbering def), which is when the bulk of the queries fire
under the "MemorySSA" pass name.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple, Union

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    StoreInst,
)
from .aliasing import AAResults, ModRefInfo
from .cfg import predecessor_map, reverse_postorder
from .memloc import MemoryLocation

_ids = itertools.count()


class MemoryAccess:
    __slots__ = ("id",)

    def __init__(self):
        self.id = next(_ids)


class LiveOnEntry(MemoryAccess):
    def __repr__(self) -> str:  # pragma: no cover
        return "liveOnEntry"


class MemoryDef(MemoryAccess):
    __slots__ = ("inst", "defining")

    def __init__(self, inst: Instruction, defining: MemoryAccess):
        super().__init__()
        self.inst = inst
        self.defining = defining

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryDef({self.inst.opcode}#{self.inst.id})"


class MemoryUse(MemoryAccess):
    __slots__ = ("inst", "defining", "optimized")

    def __init__(self, inst: Instruction, defining: MemoryAccess):
        super().__init__()
        self.inst = inst
        self.defining = defining
        self.optimized: Optional[MemoryAccess] = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryUse({self.inst.opcode}#{self.inst.id})"


class MemoryPhi(MemoryAccess):
    __slots__ = ("block", "incoming")

    def __init__(self, block: BasicBlock):
        super().__init__()
        self.block = block
        self.incoming: Dict[BasicBlock, MemoryAccess] = {}

    def __repr__(self) -> str:  # pragma: no cover
        return f"MemoryPhi({self.block.name})"


def _writes(inst: Instruction) -> bool:
    if isinstance(inst, (StoreInst, MemCpyInst, MemSetInst)):
        return True
    if isinstance(inst, CallInst):
        return inst.may_write_memory()
    return False


def _reads(inst: Instruction) -> bool:
    if isinstance(inst, LoadInst):
        return True
    if isinstance(inst, MemCpyInst):
        return True
    if isinstance(inst, CallInst):
        return inst.may_read_memory() and not inst.may_write_memory()
    return False


class MemorySSA:
    """Builds the memory SSA graph for one function.

    ``optimize_uses=True`` resolves every MemoryUse's clobber eagerly
    (LLVM's behaviour for the pipeline positions that matter here).
    """

    WALK_BUDGET = 64

    def __init__(self, fn: Function, aa: AAResults, optimize_uses: bool = True):
        self.function = fn
        self.aa = aa
        self.live_on_entry = LiveOnEntry()
        self.access_of: Dict[Instruction, MemoryAccess] = {}
        self.block_entry: Dict[BasicBlock, MemoryAccess] = {}
        self.block_exit: Dict[BasicBlock, MemoryAccess] = {}
        self.phis: Dict[BasicBlock, MemoryPhi] = {}
        self._build()
        if optimize_uses:
            self._optimize_uses()

    # -- construction ---------------------------------------------------------
    def _build(self) -> None:
        fn = self.function
        rpo = reverse_postorder(fn)
        preds = predecessor_map(fn)
        # place phis at all multi-predecessor blocks (unpruned form)
        for bb in rpo:
            if len(preds[bb]) >= 2:
                self.phis[bb] = MemoryPhi(bb)

        for bb in rpo:
            if bb in self.phis:
                entry: MemoryAccess = self.phis[bb]
            elif preds[bb]:
                entry = self.block_exit.get(preds[bb][0], self.live_on_entry)
            else:
                entry = self.live_on_entry
            self.block_entry[bb] = entry
            current = entry
            for inst in bb.instructions:
                if _writes(inst):
                    acc = MemoryDef(inst, current)
                    self.access_of[inst] = acc
                    current = acc
                elif _reads(inst):
                    acc = MemoryUse(inst, current)
                    self.access_of[inst] = acc
            self.block_exit[bb] = current

        # fill phi operands now that all exits exist
        for bb, phi in self.phis.items():
            for p in preds[bb]:
                phi.incoming[p] = self.block_exit.get(p, self.live_on_entry)

    def _optimize_uses(self) -> None:
        for inst, acc in self.access_of.items():
            if isinstance(acc, MemoryUse) and isinstance(inst, LoadInst):
                loc = MemoryLocation.get(inst)
                acc.optimized = self.walk(acc.defining, loc)

    # -- the walker ------------------------------------------------------------
    def walk(self, start: MemoryAccess, loc: MemoryLocation) -> MemoryAccess:
        """Nearest access (from ``start`` upwards) that may clobber ``loc``.

        Returns a MemoryDef that Mods the location, a MemoryPhi whose arms
        disagree, or liveOnEntry.
        """
        budget = self.WALK_BUDGET
        current = start
        while budget > 0:
            budget -= 1
            if isinstance(current, LiveOnEntry):
                return current
            if isinstance(current, MemoryDef):
                mr = self.aa.get_mod_ref(current.inst, loc)
                if mr & ModRefInfo.MOD:
                    return current
                current = current.defining
                continue
            if isinstance(current, MemoryPhi):
                results = set()
                for arm in current.incoming.values():
                    if arm is current:
                        continue
                    # avoid deep recursion through nested phis: walk each
                    # arm with the remaining budget
                    r = self._walk_bounded(arm, loc, budget, {current})
                    results.add(r)
                    if len(results) > 1:
                        return current
                if len(results) == 1:
                    return results.pop()
                return current
            if isinstance(current, MemoryUse):  # pragma: no cover
                current = current.defining
                continue
            return current
        return current

    def _walk_bounded(self, start: MemoryAccess, loc: MemoryLocation,
                      budget: int, visiting: Set[MemoryAccess]) -> MemoryAccess:
        current = start
        while budget > 0:
            budget -= 1
            if isinstance(current, LiveOnEntry):
                return current
            if isinstance(current, MemoryDef):
                mr = self.aa.get_mod_ref(current.inst, loc)
                if mr & ModRefInfo.MOD:
                    return current
                current = current.defining
                continue
            if isinstance(current, MemoryPhi):
                if current in visiting:
                    # cycle (loop backedge): treat the phi as the clobber
                    return current
                results = set()
                for arm in current.incoming.values():
                    r = self._walk_bounded(arm, loc, budget // 2 + 1,
                                           visiting | {current})
                    results.add(r)
                    if len(results) > 1:
                        return current
                return results.pop() if results else current
            current = getattr(current, "defining", current)
        return current

    # -- queries ------------------------------------------------------------
    def clobbering_access(self, load: LoadInst) -> MemoryAccess:
        acc = self.access_of.get(load)
        if acc is None:
            raise KeyError(f"no memory access for {load!r}")
        assert isinstance(acc, MemoryUse)
        if acc.optimized is not None:
            return acc.optimized
        loc = MemoryLocation.get(load)
        acc.optimized = self.walk(acc.defining, loc)
        return acc.optimized

    def num_accesses(self) -> int:
        return len(self.access_of) + len(self.phis)
