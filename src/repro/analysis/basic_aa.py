"""BasicAA: stateless, local reasoning about identified objects and GEPs.

This is the first and most important analysis in the chain, mirroring
LLVM's ``BasicAliasAnalysis``: distinct stack/global objects cannot
alias, ``noalias`` arguments alias nothing not based on them, and
same-base GEPs are disambiguated by constant-offset arithmetic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    CallInst,
    CastInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Argument, ConstantNull, GlobalVariable, Value
from .aliasing import AliasAnalysisPass, AliasResult, underlying_object
from .memloc import LocationSize, MemoryLocation


#: runtime functions returning a fresh, noalias allocation
ALLOCATION_FNS = {"malloc", "calloc", "aligned_alloc"}


def is_noalias_call(v: Value) -> bool:
    return isinstance(v, CallInst) and v.callee_name in ALLOCATION_FNS


def is_identified_object(v: Value) -> bool:
    """Allocas, globals, and noalias calls (malloc) are distinct,
    identifiable allocations."""
    return isinstance(v, (AllocaInst, GlobalVariable)) or is_noalias_call(v)


def is_identified_function_local(v: Value) -> bool:
    return isinstance(v, AllocaInst) or (
        isinstance(v, Argument) and v.is_noalias)


def alloca_is_captured(alloca: AllocaInst, max_uses: int = 64) -> bool:
    """Conservative capture check: does the alloca's address escape?

    The address escapes if it is stored somewhere, passed to a call,
    returned, or converted to an integer.  GEP/bitcast chains are
    followed.
    """
    work: List[Value] = [alloca]
    seen = set()
    budget = max_uses
    while work:
        v = work.pop()
        if v in seen:
            continue
        seen.add(v)
        for user in v.users:
            budget -= 1
            if budget <= 0:
                return True
            if isinstance(user, (GEPInst,)):
                work.append(user)
            elif isinstance(user, CastInst):
                if user.op in ("ptrtoint",):
                    return True
                work.append(user)
            elif isinstance(user, LoadInst):
                continue  # loading *from* the pointer doesn't capture it
            elif isinstance(user, StoreInst):
                if user.value is v:
                    return True  # address stored to memory
            elif isinstance(user, (CallInst, ReturnInst, PhiInst, SelectInst)):
                return True
            else:
                # comparisons etc. don't capture
                continue
    return False


Decomposed = Tuple[Value, int, Tuple[Tuple[Value, int], ...]]


def _linearize(index: Value, scale: int,
               depth: int = 4) -> Tuple[int, List[Tuple[Value, int]]]:
    """LLVM's GetLinearExpression in miniature: decompose an index into
    constant + sum of scaled variables, looking through add/sub/mul."""
    from ..ir.instructions import BinaryInst
    from ..ir.values import ConstantInt

    if isinstance(index, ConstantInt):
        return index.value * scale, []
    if depth > 0 and isinstance(index, BinaryInst):
        if index.op == "add":
            c1, v1 = _linearize(index.lhs, scale, depth - 1)
            c2, v2 = _linearize(index.rhs, scale, depth - 1)
            return c1 + c2, v1 + v2
        if index.op == "sub" and isinstance(index.rhs, ConstantInt):
            c1, v1 = _linearize(index.lhs, scale, depth - 1)
            return c1 - index.rhs.value * scale, v1
        if index.op == "mul":
            if isinstance(index.rhs, ConstantInt):
                return _linearize(index.lhs, scale * index.rhs.value,
                                  depth - 1)
            if isinstance(index.lhs, ConstantInt):
                return _linearize(index.rhs, scale * index.lhs.value,
                                  depth - 1)
        if index.op == "shl" and isinstance(index.rhs, ConstantInt) \
                and 0 <= index.rhs.value < 32:
            return _linearize(index.lhs, scale << index.rhs.value,
                              depth - 1)
    return 0, [(index, scale)]


def decompose_pointer(ptr: Value, max_depth: int = 12) -> Decomposed:
    """Walk GEP/bitcast chains: (base, const_byte_offset, var_parts).

    Variable indices are linearized (``i + 3`` becomes var ``i`` plus a
    constant byte offset) so structurally-related accesses cancel."""
    offset = 0
    var_parts: List[Tuple[Value, int]] = []
    v = ptr
    for _ in range(max_depth):
        if isinstance(v, GEPInst):
            try:
                base, c, vparts = v.decomposed()
            except TypeError:
                return v, offset, tuple(var_parts)
            offset += c
            for var, scale in vparts:
                lc, lv = _linearize(var, scale)
                offset += lc
                var_parts.extend(lv)
            v = base
        elif isinstance(v, CastInst) and v.op == "bitcast":
            v = v.value
        else:
            break
    # canonicalize variable parts so structurally equal sets cancel
    var_parts.sort(key=lambda p: (p[0].id, p[1]))
    return v, offset, tuple(var_parts)


def _cancel_common(a: Tuple, b: Tuple) -> Tuple[List, List]:
    la, lb = list(a), list(b)
    for item in list(la):
        if item in lb:
            la.remove(item)
            lb.remove(item)
    return la, lb


class BasicAA(AliasAnalysisPass):
    name = "basic-aa"

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        pa, pb = a.ptr, b.ptr
        if isinstance(pa, ConstantNull) or isinstance(pb, ConstantNull):
            return AliasResult.NO

        if pa is pb:
            if (a.size.has_value and b.size.has_value
                    and a.size.value == b.size.value and a.size.precise
                    and b.size.precise):
                return AliasResult.MUST
            return AliasResult.MUST  # same pointer: at least must-overlap

        base_a, off_a, var_a = decompose_pointer(pa)
        base_b, off_b, var_b = decompose_pointer(pb)

        if base_a is base_b:
            return self._alias_same_base(a, b, off_a, var_a, off_b, var_b)

        # Distinct identified objects never alias.
        if is_identified_object(base_a) and is_identified_object(base_b):
            return AliasResult.NO

        # noalias argument vs anything based on a different object.
        for x, other in ((base_a, base_b), (base_b, base_a)):
            if isinstance(x, Argument) and x.is_noalias:
                if other is not x:
                    # 'other' may still be *based on* x only via decompose,
                    # which we already handled (same base).  Different base
                    # implies not-based-on under our decomposition depth.
                    if isinstance(other, Argument) and not other.is_noalias:
                        return AliasResult.NO
                    if is_identified_object(other) or isinstance(
                            other, (Argument, LoadInst, CallInst)):
                        return AliasResult.NO

        # A non-captured local allocation (alloca or malloc-like call)
        # cannot alias pointers from outside (arguments, loaded pointers,
        # other call results).
        for x, other in ((base_a, base_b), (base_b, base_a)):
            if (isinstance(x, AllocaInst) or is_noalias_call(x)) \
                    and isinstance(other, (Argument, LoadInst, CallInst)):
                if other is x:
                    continue
                if not alloca_is_captured(x):
                    return AliasResult.NO

        # Alloca vs global never alias (handled above via identified
        # objects); everything else is unknown to local reasoning.
        return AliasResult.MAY

    def _alias_same_base(self, a: MemoryLocation, b: MemoryLocation,
                         off_a: int, var_a: Tuple, off_b: int,
                         var_b: Tuple) -> AliasResult:
        ra, rb = _cancel_common(var_a, var_b)
        if ra or rb:
            # A residual variable index could take any value: but if the
            # GCD of the residual scales cannot bridge the offset delta
            # modulo-wise, the accesses are disjoint (LLVM's GCD trick).
            delta = off_a - off_b
            scales = [s for _, s in ra + rb]
            if scales and a.size.has_value and b.size.has_value:
                import math
                g = 0
                for s in scales:
                    g = math.gcd(g, abs(s))
                if g > 0:
                    rem = delta % g
                    # access [rem, rem+size_a) vs [0, size_b) modulo g
                    if rem != 0:
                        if rem >= b.size.value and g - rem >= a.size.value:
                            return AliasResult.NO
            return AliasResult.MAY
        delta = off_a - off_b
        if delta == 0:
            if (a.size.has_value and b.size.has_value
                    and a.size.value == b.size.value
                    and a.size.precise and b.size.precise):
                return AliasResult.MUST
            if a.size.has_value or b.size.has_value:
                return AliasResult.PARTIAL
            return AliasResult.MUST
        if delta > 0:
            # a starts delta bytes above b
            if b.size.has_value and b.size.value <= delta:
                return AliasResult.NO
            if not b.size.has_value:
                return AliasResult.MAY
            return AliasResult.PARTIAL
        # b starts above a
        if a.size.has_value and a.size.value <= -delta:
            return AliasResult.NO
        if not a.size.has_value:
            return AliasResult.MAY
        return AliasResult.PARTIAL
