"""Dominator tree (Cooper–Harvey–Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree over the reachable CFG of a function."""

    def __init__(self, fn: Function):
        self.function = fn
        self.rpo = reverse_postorder(fn)
        self._rpo_index: Dict[BasicBlock, int] = {
            bb: i for i, bb in enumerate(self.rpo)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        entry = self.function.entry
        index = self._rpo_index
        preds = predecessor_map(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for bb in self.rpo:
                if bb is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for p in preds[bb]:
                    if p not in index:  # unreachable predecessor
                        continue
                    if p in idom:
                        new_idom = p if new_idom is None else intersect(p, new_idom)
                if new_idom is not None and idom.get(bb) is not new_idom:
                    idom[bb] = new_idom
                    changed = True
        self.idom = idom
        self.idom[entry] = None  # canonical: entry has no idom

    # -- queries --------------------------------------------------------------
    def is_reachable(self, bb: BasicBlock) -> bool:
        return bb in self._rpo_index

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does block ``a`` dominate block ``b``?  (reflexive)"""
        if a is b:
            return True
        runner: Optional[BasicBlock] = self.idom.get(b)
        while runner is not None:
            if runner is a:
                return True
            runner = self.idom.get(runner)
        return False

    def dominates(self, a: Instruction, b: Instruction) -> bool:
        """Does instruction ``a`` strictly dominate instruction ``b``?"""
        ba, bb_ = a.parent, b.parent
        if ba is bb_:
            insts = ba.instructions
            return insts.index(a) < insts.index(b)
        return self.dominates_block(ba, bb_)

    def children(self, bb: BasicBlock) -> List[BasicBlock]:
        return [b for b, i in self.idom.items() if i is bb]

    def depth(self, bb: BasicBlock) -> int:
        d = 0
        runner = self.idom.get(bb)
        while runner is not None:
            d += 1
            runner = self.idom.get(runner)
        return d
