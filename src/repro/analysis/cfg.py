"""CFG utilities: cached predecessor/successor maps and orderings."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


def successor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    return {bb: bb.successors for bb in fn.blocks}


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in fn.blocks}
    for bb in fn.blocks:
        for s in bb.successors:
            preds[s].append(bb)
    return preds


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder over reachable blocks, entry first."""
    seen: Set[BasicBlock] = set()
    post: List[BasicBlock] = []
    # iterative DFS to avoid recursion limits on long CFG chains
    stack: List[tuple] = [(fn.entry, iter(fn.entry.successors))]
    seen.add(fn.entry)
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, iter(succ.successors)))
                advanced = True
                break
        if not advanced:
            post.append(node)
            stack.pop()
    return post[::-1]


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    return set(reverse_postorder(fn))
