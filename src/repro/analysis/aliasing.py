"""The alias-analysis framework: results, the chain, and mod/ref info.

Semantics mirror LLVM's ``AAResults`` aggregation (paper §III): analyses
are consulted in a fixed order; the first definite answer (``no`` /
``must`` / ``partial``) wins; if every analysis answers ``may``, the
aggregate result is ``may`` — unless an ORAQL pass is appended, in which
case the residual query is delegated to it.

The chain also keeps the counters the evaluation reports (Fig. 4):
the total number of ``no-alias`` responses across *all* analyses, and
per-pass attribution of who issued each query.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, List, Optional, Protocol, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    StoreInst,
)
from ..ir.values import Value
from .memloc import MemoryLocation


class AliasResult(enum.Enum):
    """The four-valued answer of an alias query."""

    NO = "NoAlias"
    MAY = "MayAlias"
    PARTIAL = "PartialAlias"
    MUST = "MustAlias"

    def __str__(self) -> str:
        return self.value


class ModRefInfo(enum.Flag):
    """Whether an instruction may read (Ref) / write (Mod) a location."""

    NO = 0
    REF = enum.auto()
    MOD = enum.auto()
    MODREF = REF | MOD


class AliasAnalysisPass:
    """Base class for one analysis in the chain."""

    name: str = "aa"

    #: True when the constructor takes the module (e.g. GlobalsAA).  The
    #: context dispatches on this explicitly instead of the old
    #: ``try: cls(module) except TypeError: cls()`` probe, which
    #: swallowed genuine TypeErrors raised *inside* a constructor.
    requires_module: bool = False

    #: Granularity of any cached state, driving fine-grained
    #: invalidation:
    #:
    #: * ``"none"`` — stateless, never needs invalidation;
    #: * ``"function"`` — per-function summaries: implement
    #:   ``invalidate_function(fn)`` (and ``invalidate()`` for module-
    #:   scope changes);
    #: * ``"module"`` — whole-module state: implement ``invalidate()``,
    #:   called on module-scope changes (and on every change under
    #:   coarse invalidation).
    invalidation_scope: str = "none"

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AA {self.name}>"


class AAResults:
    """The per-module AA chain with counters and pass attribution.

    ``current_pass`` is maintained by the pass manager (the way LLVM's
    ``-debug-pass=Executions`` identifies the issuing pass for ORAQL's
    dump, paper §IV-D).
    """

    def __init__(self, analyses: List[AliasAnalysisPass],
                 oraql: Optional["object"] = None,
                 override: Optional["object"] = None):
        self.analyses = list(analyses)
        self.oraql = oraql  # OraqlAAPass | None; consulted last
        #: OraqlOverridePass | None; consulted FIRST — may hide the
        #: chain's answers entirely (the paper's §VIII design)
        self.override = override
        self.current_pass: str = "<none>"
        self.current_function: Optional[Function] = None
        #: pipeline ordinal of the pass currently executing (set by the
        #: pass manager); keys the per-scope tallies below
        self.current_ordinal: int = 0
        #: optional QueryTrace sink (repro.trace); None = tracing off.
        #: Strictly observational: no emission influences any answer.
        self.trace = None
        #: set by the analysis manager around a *phantom* rebuild — an
        #: analysis a mirrored full compile would serve from cache
        #: without issuing a single query.  Answers flow unchanged;
        #: nothing is tallied, so a resumed incremental compile's
        #: counters stay bit-identical to the full compile's.
        self.suppress_counters = False
        # counters (Fig. 4 columns)
        self.no_alias_count = 0
        self.must_alias_count = 0
        self.total_queries = 0
        self.no_alias_by_pass: Counter = Counter()
        self.queries_by_issuer: Counter = Counter()
        #: the same counters attributed to (scope, pipeline ordinal) —
        #: what lets an incremental compile seed the aggregate numbers
        #: for work it spliced instead of re-running.  Each value is
        #: ``[no_alias, must_alias, total, Counter(by pass),
        #: Counter(by issuer)]``.
        self.scope_counts: Dict[Tuple[str, int], list] = {}

    def _tally(self, scope: str) -> list:
        key = (scope, self.current_ordinal)
        t = self.scope_counts.get(key)
        if t is None:
            t = [0, 0, 0, Counter(), Counter()]
            self.scope_counts[key] = t
        return t

    # -- the core query -------------------------------------------------------
    def alias(self, a: MemoryLocation, b: MemoryLocation) -> AliasResult:
        suppress = self.suppress_counters
        fn = self.current_function
        fn_name = fn.name if fn is not None else "<module>"
        tally: Optional[list] = None
        if not suppress:
            self.total_queries += 1
            self.queries_by_issuer[self.current_pass] += 1
            tally = self._tally(fn_name)
            tally[2] += 1
            tally[4][self.current_pass] += 1
        if self.override is not None and \
                self.override.should_force_may(a, b, fn):
            if self.trace is not None:
                from ..trace.events import RESPONDER_OVERRIDE
                self.trace.chain_query(fn_name, a, b, RESPONDER_OVERRIDE,
                                       str(AliasResult.MAY))
            return AliasResult.MAY
        for analysis in self.analyses:
            r = analysis.alias(a, b, fn)
            if r is not AliasResult.MAY:
                if not suppress:
                    self._record(r, analysis.name, tally)
                if self.trace is not None:
                    self.trace.chain_query(fn_name, a, b, analysis.name,
                                           str(r))
                return r
        if self.oraql is not None:
            # the ORAQL pass emits its own trace event (it alone knows
            # cache-hit status and the unique-query index — and its
            # pessimistic answers return MAY, indistinguishable here
            # from "not applicable")
            r = self.oraql.answer(a, b, fn, self.current_pass)
            if r is not AliasResult.MAY:
                if not suppress:
                    self._record(r, self.oraql.name, tally)
                return r
            return AliasResult.MAY
        if self.trace is not None:
            from ..trace.events import RESPONDER_NONE
            self.trace.chain_query(fn_name, a, b, RESPONDER_NONE,
                                   str(AliasResult.MAY))
        return AliasResult.MAY

    def _record(self, r: AliasResult, source: str, tally: list) -> None:
        if r is AliasResult.NO:
            self.no_alias_count += 1
            self.no_alias_by_pass[source] += 1
            tally[0] += 1
            tally[3][source] += 1
        elif r is AliasResult.MUST:
            self.must_alias_count += 1
            tally[1] += 1

    # -- convenience forms ------------------------------------------------
    def is_no_alias(self, a: MemoryLocation, b: MemoryLocation) -> bool:
        return self.alias(a, b) is AliasResult.NO

    def is_must_alias(self, a: MemoryLocation, b: MemoryLocation) -> bool:
        return self.alias(a, b) is AliasResult.MUST

    def alias_insts(self, ia: Instruction, ib: Instruction) -> AliasResult:
        return self.alias(MemoryLocation.get(ia), MemoryLocation.get(ib))

    # -- mod/ref ---------------------------------------------------------
    def get_mod_ref(self, inst: Instruction, loc: MemoryLocation) -> ModRefInfo:
        """May ``inst`` read/write the memory at ``loc``?"""
        if isinstance(inst, LoadInst):
            if self.alias(MemoryLocation.get(inst), loc) is AliasResult.NO:
                return ModRefInfo.NO
            return ModRefInfo.REF
        if isinstance(inst, StoreInst):
            if self.alias(MemoryLocation.get(inst), loc) is AliasResult.NO:
                return ModRefInfo.NO
            return ModRefInfo.MOD
        if isinstance(inst, MemCpyInst):
            mr = ModRefInfo.NO
            if self.alias(MemoryLocation.for_dst(inst), loc) is not AliasResult.NO:
                mr |= ModRefInfo.MOD
            if self.alias(MemoryLocation.for_src(inst), loc) is not AliasResult.NO:
                mr |= ModRefInfo.REF
            return mr
        if isinstance(inst, MemSetInst):
            if self.alias(MemoryLocation.for_dst(inst), loc) is AliasResult.NO:
                return ModRefInfo.NO
            return ModRefInfo.MOD
        if isinstance(inst, CallInst):
            if inst.is_pure():
                return ModRefInfo.NO
            if inst.only_reads_memory():
                return ModRefInfo.REF
            return ModRefInfo.MODREF
        if inst.may_write_memory():
            return ModRefInfo.MODREF
        if inst.may_read_memory():
            return ModRefInfo.REF
        return ModRefInfo.NO

    def snapshot_counters(self) -> Dict[str, int]:
        return {
            "no_alias": self.no_alias_count,
            "must_alias": self.must_alias_count,
            "total": self.total_queries,
        }

    def merge(self, other: "AAResults") -> None:
        """Fold another chain's counters into this one (per-TU compiles
        report through a single context; the audited merge lives here
        instead of being re-implemented at each call site)."""
        if other is self:
            return
        self.no_alias_count += other.no_alias_count
        self.must_alias_count += other.must_alias_count
        self.total_queries += other.total_queries
        self.no_alias_by_pass.update(other.no_alias_by_pass)
        self.queries_by_issuer.update(other.queries_by_issuer)
        # the other chain's aggregates already include its per-scope
        # tallies, so fold the tallies without re-bumping aggregates
        for key, t in other.scope_counts.items():
            self._fold_tally(key, t)

    def _fold_tally(self, key: "Tuple[str, int]", t: list) -> None:
        mine = self.scope_counts.get(key)
        if mine is None:
            mine = [0, 0, 0, Counter(), Counter()]
            self.scope_counts[key] = mine
        mine[0] += t[0]
        mine[1] += t[1]
        mine[2] += t[2]
        mine[3].update(t[3])
        mine[4].update(t[4])

    def seed_tally(self, key: "Tuple[str, int]", t: list) -> None:
        """Fold one (scope, ordinal) tally into the per-scope *and*
        aggregate counters — how an incremental compile accounts for
        the chain queries a spliced (or not-yet-resumed) function would
        have issued."""
        self._fold_tally(key, t)
        self.no_alias_count += t[0]
        self.must_alias_count += t[1]
        self.total_queries += t[2]
        self.no_alias_by_pass.update(t[3])
        self.queries_by_issuer.update(t[4])


def underlying_object(ptr: Value, max_lookup: int = 12) -> Value:
    """Strip GEPs / bitcasts / pointer-select-with-same-base to the base
    object (LLVM's ``getUnderlyingObject``)."""
    from ..ir.instructions import CastInst, GEPInst, PhiInst, SelectInst

    seen = 0
    v = ptr
    while seen < max_lookup:
        seen += 1
        if isinstance(v, GEPInst):
            v = v.pointer
        elif isinstance(v, CastInst) and v.op == "bitcast":
            v = v.value
        elif isinstance(v, SelectInst):
            t, f = v.operands[1], v.operands[2]
            ut, uf = underlying_object(t, max_lookup - seen), underlying_object(
                f, max_lookup - seen)
            if ut is uf:
                return ut
            return v
        else:
            return v
    return v
