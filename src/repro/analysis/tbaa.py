"""Type-based alias analysis over ``!tbaa`` access tags (strict aliasing)."""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.metadata import tbaa_alias
from .aliasing import AliasAnalysisPass, AliasResult
from .memloc import MemoryLocation


class TypeBasedAA(AliasAnalysisPass):
    """Answers ``no-alias`` when the two access tags live in disjoint
    branches of the TBAA tree; never answers ``must``."""

    name = "tbaa"

    def alias(self, a: MemoryLocation, b: MemoryLocation,
              fn: Optional[Function]) -> AliasResult:
        if a.tbaa is None or b.tbaa is None:
            return AliasResult.MAY
        if not tbaa_alias(a.tbaa, b.tbaa):
            return AliasResult.NO
        return AliasResult.MAY
