"""repro.analysis — CFG, dominators, loops, and the alias-analysis stack."""

from .aliasing import (
    AAResults,
    AliasAnalysisPass,
    AliasResult,
    ModRefInfo,
    underlying_object,
)
from .basic_aa import BasicAA, alloca_is_captured, decompose_pointer, is_identified_object
from .cfg import predecessor_map, reachable_blocks, reverse_postorder, successor_map
from .cfl_anders_aa import CFLAndersAA
from .cfl_steens_aa import CFLSteensAA
from .dominators import DominatorTree
from .globals_aa import GlobalsAA, global_is_address_taken
from .loops import Loop, LoopInfo, loop_trip_count
from .memloc import BEFORE_OR_AFTER, LocationSize, MemoryLocation
from .memory_ssa import (
    LiveOnEntry,
    MemoryAccess,
    MemoryDef,
    MemoryPhi,
    MemorySSA,
    MemoryUse,
)
from .scoped_noalias_aa import ScopedNoAliasAA
from .tbaa import TypeBasedAA

#: The default chain order, mirroring LLVM's -O pipelines: BasicAA first,
#: then metadata-based analyses, then module-level GlobalsAA.  The CFL
#: analyses exist but are not enabled by default (paper §I lists all seven).
DEFAULT_AA_CHAIN = ("basic-aa", "scoped-noalias-aa", "tbaa", "globals-aa")

ALL_AA_PASSES = {
    "basic-aa": BasicAA,
    "scoped-noalias-aa": ScopedNoAliasAA,
    "tbaa": TypeBasedAA,
    "globals-aa": GlobalsAA,
    "cfl-steens-aa": CFLSteensAA,
    "cfl-anders-aa": CFLAndersAA,
}


def build_aa_chain(names=DEFAULT_AA_CHAIN, oraql=None) -> AAResults:
    """Construct an AAResults with the named analyses, in order, and an
    optional ORAQL pass appended last (paper §III)."""
    return AAResults([ALL_AA_PASSES[n]() for n in names], oraql=oraql)


__all__ = [name for name in dir() if not name.startswith("_")]
