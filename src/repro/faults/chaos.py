"""Chaos mode: seeded fault-injection campaigns over probing sessions.

``python -m repro.fuzz --chaos`` proves the resilient probing runtime's
contract: **every injected fault is either recovered from or reported
with correct triage, and final reports under injection match fault-free
runs.**

Each injection is an independent, fully deterministic experiment:

1. pick a chaos workload and a bisection strategy (seeded);
2. run the session fault-free once per (workload, strategy) pair to
   learn the reference report *and* how many times each fault site is
   consulted (an empty :class:`~repro.faults.injector.FaultInjector`
   is a pure site counter);
3. plant one fault of the scheduled kind at a seeded site index that is
   guaranteed reachable, and run the session again — with a journal,
   resuming after injected session kills;
4. classify the experiment:

   * ``recovered`` — the session completed and its final report
     (pessimistic set, final executable hash, optimism flag) is
     identical to the fault-free reference;
   * ``reported``  — the session was correctly quarantined: the
     nondeterminism probe caught a verdict-flipping injection and the
     raised :class:`~repro.oraql.errors.FlakyConfigError` carries the
     triage class matching the injected fault;
   * ``failed``    — anything else (wrong final report, wrong triage,
     unrecovered crash).  A single failure fails the campaign.

Durability faults additionally assert that the torn file is still
*loadable* afterwards (corrupt records quarantined, not fatal).
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..oraql.cache import VerdictCache
from ..oraql.config import BenchmarkConfig, SourceFile
from ..oraql.driver import ProbingDriver, ProbingReport
from ..oraql.errors import FlakyConfigError, ProbingError
from ..oraql.executor import ExecutorPolicy
from ..oraql.journal import SessionJournal
from .injector import SITE_OF, FaultInjector, FaultSpec, SessionKilled

#: fault kinds a chaos campaign cycles through (``worker-kill`` is
#: exercised by the parallel-engine tests instead — it would take the
#: in-process chaos worker down with it)
DEFAULT_CHAOS_KINDS = (
    "compiler-error",
    "hang",
    "trap",
    "deadlock",
    "wrong-output",
    "session-kill",
    "cache-truncate",
    "journal-truncate",
)

#: injected run-fault kind -> triage class a correct report must carry
EXPECTED_TRIAGE = {
    "hang": "step-limit",
    "trap": "trapped",
    "deadlock": "deadlock",
    "wrong-output": "wrong-output",
}

#: small workloads with genuinely dangerous aliasing, so every session
#: performs a non-trivial bisection with probes to inject into
CHAOS_WORKLOADS: Dict[str, str] = {
    "overlap-pair": """
void scale_shift(double* dst, double* src, int n) {
  for (int i = 0; i < n; i++) { dst[i] = src[i] * 0.5 + 1.0; }
}
void combine(double* out, double* a, double* b, int n) {
  for (int i = 0; i < n; i++) { out[i] = a[i] * b[i]; }
}
int main() {
  double buf[64];
  double x[32]; double y[32]; double z[32];
  for (int i = 0; i < 64; i++) { buf[i] = i + 1.0; }
  for (int i = 0; i < 32; i++) { x[i] = i; y[i] = 32.0 - i; z[i] = 0.0; }
  combine(z, x, y, 32);
  scale_shift(buf + 1, buf, 60);
  double s1 = 0.0; double s2 = 0.0;
  for (int i = 0; i < 32; i++) { s1 = s1 + z[i]; }
  for (int i = 0; i < 64; i++) { s2 = s2 + buf[i] * i; }
  printf("z = %.6f\\nbuf = %.6f\\n", s1, s2);
  return 0;
}
""",
    "cell-pump": """
void pump(double* cell, double* arr, int n) {
  for (int i = 0; i < n; i++) { arr[i] = cell[0] + i; }
}
void touch(double* a, double* b) {
  double before = a[0];
  b[0] = before * 2.0;
  double after = a[0];
  a[1] = after - before;
}
int main() {
  double a[8]; double m[4];
  for (int i = 0; i < 8; i++) { a[i] = 1.0; }
  m[0] = 3.0; m[1] = 0.0;
  pump(a + 3, a, 8);
  touch(m, m);
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s = s + a[i] * (i + 1); }
  printf("%.2f %.1f\\n", s, m[1]);
  return 0;
}
""",
}

STRATEGIES = ("chunked", "frequency")

#: a session may be killed and resumed at most this many times before
#: the experiment counts as failed (one planted kill fires once, so
#: anything above 1 resume would be a resume-determinism bug)
MAX_RESUMES = 3


@dataclass
class ChaosOptions:
    injections: int = 64
    seed_start: int = 0
    jobs: int = 1
    kinds: Tuple[str, ...] = DEFAULT_CHAOS_KINDS
    time_budget: Optional[float] = None


@dataclass
class InjectionResult:
    seed: int
    workload: str
    strategy: str
    kind: str
    at: int
    #: "recovered" | "reported" | "failed"
    outcome: str
    detail: str = ""
    resumes: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome in ("recovered", "reported")


@dataclass
class ChaosReport:
    options: ChaosOptions
    results: List[InjectionResult] = field(default_factory=list)
    budget_exhausted: bool = False
    elapsed: float = 0.0

    @property
    def failures(self) -> List[InjectionResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and bool(self.results)

    def render(self) -> str:
        o = self.options
        out = [f"== chaos campaign: {len(self.results)}/{o.injections} "
               f"injections (start {o.seed_start}, jobs {o.jobs}) "
               f"in {self.elapsed:.1f}s =="]
        if self.budget_exhausted:
            out.append("TIME BUDGET EXHAUSTED — partial campaign")
        by_kind: Dict[str, Dict[str, int]] = {}
        for r in self.results:
            counts = by_kind.setdefault(r.kind, {})
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        for kind in sorted(by_kind):
            counts = by_kind[kind]
            line = ", ".join(f"{n} {outcome}" for outcome, n in
                             sorted(counts.items()))
            out.append(f"  {kind:<18} {line}")
        resumes = sum(r.resumes for r in self.results)
        if resumes:
            out.append(f"journal resumes    : {resumes} killed sessions "
                       f"resumed bit-identically")
        out.append(f"unrecovered        : {len(self.failures)} injections")
        for r in self.failures:
            out.append(f"  seed {r.seed}: {r.kind}@{r.at} on "
                       f"{r.workload}/{r.strategy}: {r.detail}")
        return "\n".join(out)


def _workload_config(name: str) -> BenchmarkConfig:
    return BenchmarkConfig(name=f"chaos-{name}",
                           sources=[SourceFile("t.c",
                                               CHAOS_WORKLOADS[name])])


#: per-process cache of fault-free reference sessions:
#: (workload, strategy) -> (report, site counters)
_REFERENCE_CACHE: Dict[Tuple[str, str],
                       Tuple[ProbingReport, Dict[str, int]]] = {}


def _reference(workload: str, strategy: str
               ) -> Tuple[ProbingReport, Dict[str, int]]:
    key = (workload, strategy)
    if key not in _REFERENCE_CACHE:
        counter = FaultInjector()  # empty plan: pure site counter
        report = ProbingDriver(_workload_config(workload),
                               strategy=strategy,
                               policy=ExecutorPolicy(backoff=0.0),
                               injector=counter).run()
        _REFERENCE_CACHE[key] = (report, dict(counter.counters))
    return _REFERENCE_CACHE[key]


def _reports_match(ref: ProbingReport, got: ProbingReport) -> Optional[str]:
    """None when the injected session's final report matches the
    fault-free reference; otherwise a human-readable mismatch."""
    if got.fully_optimistic != ref.fully_optimistic:
        return (f"fully_optimistic {got.fully_optimistic} != "
                f"{ref.fully_optimistic}")
    if got.pessimistic_indices != ref.pessimistic_indices:
        return (f"pessimistic set {got.pessimistic_indices} != "
                f"{ref.pessimistic_indices}")
    ref_hash = ref.final_program.exe_hash if ref.final_program else None
    got_hash = got.final_program.exe_hash if got.final_program else None
    if ref_hash != got_hash:
        return f"final exe hash {got_hash} != {ref_hash}"
    return None


def run_injection(seed: int, opts: ChaosOptions) -> InjectionResult:
    """One deterministic chaos experiment (worker-side entry point)."""
    t0 = time.monotonic()
    rng = random.Random(seed)
    workload = rng.choice(sorted(CHAOS_WORKLOADS))
    strategy = rng.choice(STRATEGIES)
    kind = opts.kinds[(seed - opts.seed_start) % len(opts.kinds)]
    ref, spans = _reference(workload, strategy)
    at = rng.randrange(max(1, spans.get(SITE_OF[kind], 1)))
    result = InjectionResult(seed=seed, workload=workload,
                             strategy=strategy, kind=kind, at=at,
                             outcome="failed")

    cfg = _workload_config(workload)
    spec = FaultSpec(kind=kind, at=at)
    injector = FaultInjector([spec])
    policy = ExecutorPolicy(backoff=0.0, nondet_probe="always", retries=2)
    with tempfile.TemporaryDirectory(prefix="oraql-chaos-") as tmp:
        cache = (VerdictCache(os.path.join(tmp, "cache"))
                 if kind == "cache-truncate" else None)
        resumes = 0
        while True:
            journal = SessionJournal.for_config(
                os.path.join(tmp, "journal"), cfg, strategy,
                resume=resumes > 0)
            driver = ProbingDriver(cfg, strategy=strategy,
                                   verdict_cache=cache, journal=journal,
                                   injector=injector, policy=policy)
            try:
                report = driver.run()
            except SessionKilled:
                resumes += 1
                if resumes > MAX_RESUMES:
                    result.detail = (f"session killed {resumes} times — "
                                     f"resume did not converge")
                    break
                continue
            except FlakyConfigError as e:
                expected = EXPECTED_TRIAGE.get(kind)
                if expected is not None and e.triage == expected:
                    result.outcome = "reported"
                    result.detail = (f"quarantined with triage "
                                     f"{e.triage}")
                else:
                    result.detail = (f"quarantined with triage "
                                     f"{e.triage}, expected {expected}")
                break
            except ProbingError as e:
                result.detail = f"unexpected ProbingError: {e}"
                break
            mismatch = _reports_match(ref, report)
            if mismatch is not None:
                result.detail = f"report mismatch: {mismatch}"
                break
            if not spec.fired:
                result.detail = (f"planned fault never fired "
                                 f"(site span changed?)")
                break
            # durability faults: the torn file must still be loadable,
            # with the damage quarantined rather than fatal
            if kind == "journal-truncate":
                reload = SessionJournal.for_config(
                    os.path.join(tmp, "journal"), cfg, strategy,
                    resume=True)
                result.detail = (f"journal reloads with "
                                 f"{reload.corrupt_records} quarantined "
                                 f"record(s)")
            elif kind == "cache-truncate":
                reload_cache = VerdictCache(os.path.join(tmp, "cache"))
                result.detail = (f"cache reloads with "
                                 f"{reload_cache.corrupt_records} "
                                 f"quarantined record(s)")
            result.outcome = "recovered"
            break
        result.resumes = resumes
    result.elapsed = time.monotonic() - t0
    return result


def _chaos_worker(seed: int, opts: ChaosOptions) -> InjectionResult:
    return run_injection(seed, opts)


def run_chaos(opts: ChaosOptions, progress=None) -> ChaosReport:
    """Run the campaign, optionally fanning injections out to workers."""
    t0 = time.monotonic()
    report = ChaosReport(options=opts)
    seeds = list(range(opts.seed_start, opts.seed_start + opts.injections))
    deadline = (t0 + opts.time_budget) if opts.time_budget else None

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    if opts.jobs <= 1:
        for seed in seeds:
            if out_of_time():
                report.budget_exhausted = True
                break
            r = run_injection(seed, opts)
            report.results.append(r)
            if progress:
                progress(r)
    else:
        jobs = min(opts.jobs, len(seeds), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            pending = {executor.submit(_chaos_worker, s, opts)
                       for s in seeds}
            try:
                while pending:
                    timeout = None if deadline is None \
                        else max(0.0, deadline - time.monotonic())
                    done, pending = wait(pending, timeout=timeout,
                                         return_when=FIRST_COMPLETED)
                    for fut in done:
                        r = fut.result()
                        report.results.append(r)
                        if progress:
                            progress(r)
                    if out_of_time() and pending:
                        report.budget_exhausted = True
                        for fut in pending:
                            fut.cancel()
                        break
            finally:
                for fut in pending:
                    fut.cancel()
        report.results.sort(key=lambda r: r.seed)
    report.elapsed = time.monotonic() - t0
    return report
