"""repro.faults — deterministic fault injection for the probing runtime.

The injector (:mod:`repro.faults.injector`) plants seeded faults at
exact probe indices; the chaos harness (:mod:`repro.faults.chaos`,
``python -m repro.fuzz --chaos``) asserts every injected fault is either
recovered from or reported with correct triage, and that final probing
reports under injection match fault-free runs.

:mod:`repro.faults.chaos` is imported lazily (it depends on
``repro.oraql``, which itself consults the injector) — reach it as
``from repro.faults import chaos``.
"""

from .injector import (
    FAULT_KINDS,
    SITE_OF,
    FaultInjector,
    FaultSpec,
    InjectedCompilerError,
    SessionKilled,
)

__all__ = [
    "FAULT_KINDS",
    "SITE_OF",
    "FaultInjector",
    "FaultSpec",
    "InjectedCompilerError",
    "SessionKilled",
]
