"""Deterministic, seed-driven fault injection.

The resilient probing runtime claims it survives compiler exceptions,
hung or trapping binaries, killed workers, interrupted sessions, and
torn durability files.  This module is the *proof machinery*: a
:class:`FaultInjector` is threaded through the
:class:`~repro.oraql.executor.TestExecutor` (and through the parallel
engine's worker entry points) and fires planned faults at exact,
reproducible points of a probing session.

Sites and kinds
---------------
Every consultation point is a **site** with its own monotonically
increasing counter:

* ``compile`` — polled once per compiler invocation;
* ``run``     — polled once per VM execution of a candidate binary;
* ``test``    — polled once per probe (one compile+verdict round-trip).

A :class:`FaultSpec` names a fault ``kind``, the site index ``at`` at
which it fires, and (for the parallel engine) the worker ``attempt`` it
is armed for.  Kinds:

=================  ======  ==============================================
kind               site    effect
=================  ======  ==============================================
``compiler-error`` compile raise :class:`InjectedCompilerError` (a
                           transient infrastructure fault; the executor
                           retries with backoff)
``hang``           run     run the binary with a tiny fuel budget so it
                           genuinely hits the VM's step limit
``trap``           run     replace the run result with a memory trap
``deadlock``       run     replace the run result with a deadlock
``wrong-output``   run     corrupt the observed stdout
``session-kill``   test    raise :class:`SessionKilled` — models the
                           driver process dying mid-session (the chaos
                           harness resumes from the journal)
``worker-kill``    test    ``os._exit`` the current process — models a
                           crashed pool worker (parent must requeue)
``cache-truncate`` test    chop bytes off the shared verdict cache file
``journal-truncate`` test  chop bytes off the session journal file
=================  ======  ==============================================

Determinism: the plan is a pure function of its seed
(:meth:`FaultInjector.plan_from_seed`), the site counters advance
identically on identical probing sessions, and each spec fires at most
once.  No wall clocks, no global randomness.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

FAULT_KINDS = (
    "compiler-error",
    "hang",
    "trap",
    "deadlock",
    "wrong-output",
    "session-kill",
    "worker-kill",
    "cache-truncate",
    "journal-truncate",
)

#: which site each fault kind is polled at
SITE_OF = {
    "compiler-error": "compile",
    "hang": "run",
    "trap": "run",
    "deadlock": "run",
    "wrong-output": "run",
    "session-kill": "test",
    "worker-kill": "test",
    "cache-truncate": "test",
    "journal-truncate": "test",
}

#: fuel handed to a run the ``hang`` fault fires on — small enough that
#: every real workload trips the step limit, so the *genuine* VM budget
#: path is exercised rather than a fabricated result
HANG_FUEL = 64


class InjectedCompilerError(RuntimeError):
    """A planned, transient compiler crash."""


class SessionKilled(RuntimeError):
    """A planned mid-session death of the probing driver.

    Deliberately *not* a :class:`~repro.oraql.errors.ProbingError`: the
    driver must not convert it into a verdict — it unwinds to whoever
    owns the session (the chaos harness, or a real crash)."""


@dataclass
class FaultSpec:
    kind: str
    #: fire at the ``at``-th consultation of this kind's site (0-based)
    at: int
    #: parallel engine only: arm on this worker attempt (a killed worker
    #: is requeued; the retry must not die at the same index forever)
    attempt: int = 0
    fired: bool = False

    def __post_init__(self) -> None:
        if self.kind not in SITE_OF:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def site(self) -> str:
        return SITE_OF[self.kind]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "at": self.at, "attempt": self.attempt}

    @staticmethod
    def from_dict(d: dict) -> "FaultSpec":
        return FaultSpec(kind=d["kind"], at=int(d["at"]),
                         attempt=int(d.get("attempt", 0)))


class FaultInjector:
    """Polls a fault plan at deterministic sites.

    ``attempt`` selects which specs are armed (see
    :attr:`FaultSpec.attempt`); an injector with an empty plan is a
    pure site-counter, which the chaos harness uses to measure how many
    consultations a fault-free session performs.
    """

    def __init__(self, plan: Sequence[FaultSpec] = (), attempt: int = 0):
        self.plan: List[FaultSpec] = list(plan)
        self.attempt = attempt
        self.counters: Dict[str, int] = {"compile": 0, "run": 0, "test": 0}
        #: specs that actually fired, in firing order
        self.fired: List[FaultSpec] = []
        #: file paths the durability faults operate on (bound late by
        #: the session owner; unbound faults fire as no-ops)
        self.cache_path: Optional[str] = None
        self.journal_path: Optional[str] = None

    # -- plan construction ------------------------------------------------
    @staticmethod
    def plan_from_seed(seed: int, kinds: Sequence[str],
                       site_spans: Dict[str, int]) -> List[FaultSpec]:
        """One spec per requested kind, with the firing index drawn
        uniformly from ``[0, site_spans[site])`` — the span is the
        number of consultations a fault-free session performs, so every
        planned fault is reachable."""
        rng = random.Random(seed)
        plan: List[FaultSpec] = []
        for kind in kinds:
            span = max(1, site_spans.get(SITE_OF[kind], 1))
            plan.append(FaultSpec(kind=kind, at=rng.randrange(span)))
        return plan

    def to_json_plan(self) -> List[dict]:
        return [s.to_dict() for s in self.plan]

    @staticmethod
    def from_json_plan(plan: Optional[Sequence[dict]],
                       attempt: int = 0) -> Optional["FaultInjector"]:
        if not plan:
            return None
        return FaultInjector([FaultSpec.from_dict(d) for d in plan],
                             attempt=attempt)

    # -- polling -----------------------------------------------------------
    def poll(self, site: str) -> Optional[FaultSpec]:
        """Advance the site counter; return the spec planned for this
        exact consultation, if any (and mark it fired)."""
        index = self.counters[site]
        self.counters[site] = index + 1
        for spec in self.plan:
            if (not spec.fired and spec.site == site
                    and spec.at == index and spec.attempt == self.attempt):
                spec.fired = True
                self.fired.append(spec)
                return spec
        return None

    # -- effects owned by the injector (durability + process faults) -------
    def apply_process_fault(self, spec: FaultSpec) -> None:
        """Fire a ``test``-site fault.  Raises, exits, or truncates."""
        if spec.kind == "session-kill":
            raise SessionKilled(
                f"injected session kill at test #{spec.at}")
        if spec.kind == "worker-kill":
            os._exit(39)
        if spec.kind == "cache-truncate":
            _truncate_tail(self.cache_path)
        elif spec.kind == "journal-truncate":
            _truncate_tail(self.journal_path)


def _truncate_tail(path: Optional[str], chop: int = 7) -> None:
    """Chop ``chop`` bytes off the end of ``path``, tearing the final
    record mid-line the way a crash mid-append would."""
    if path is None or not os.path.exists(path):
        return
    size = os.path.getsize(path)
    if size == 0:
        return
    with open(path, "r+b") as f:
        f.truncate(max(0, size - chop))
