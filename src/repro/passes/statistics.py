"""Compilation statistics registry (LLVM's ``-mllvm -stats`` equivalent).

Every pass reports named counters here; the Fig. 6 experiment compares
original-vs-ORAQL values of selected counters (loads hoisted, stores
deleted, vectorized loops, machine instructions, register spills, ...).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple


class Statistics:
    """Counter registry keyed by (pass name, statistic name)."""

    def __init__(self):
        self.counters: Counter = Counter()

    def add(self, pass_name: str, stat: str, n: int = 1) -> None:
        if n:
            self.counters[(pass_name, stat)] += n

    def get(self, pass_name: str, stat: str) -> int:
        return self.counters.get((pass_name, stat), 0)

    def by_pass(self, pass_name: str) -> Dict[str, int]:
        return {stat: v for (p, stat), v in self.counters.items()
                if p == pass_name}

    def rows(self) -> List[Tuple[str, str, int]]:
        return sorted((p, s, v) for (p, s), v in self.counters.items())

    def report(self) -> str:
        """Render like LLVM's ``-stats`` block."""
        lines = ["===--- Statistics Collected ---==="]
        for p, s, v in self.rows():
            lines.append(f"{v:>8} {p} - {s}")
        return "\n".join(lines)

    def merge(self, other: "Statistics") -> None:
        if other is self:
            # self-merge would double every counter; repeated-driver
            # scenarios reuse reporting contexts, so guard it here
            return
        self.counters.update(other.counters)
