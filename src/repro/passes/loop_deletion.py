"""Loop deletion: remove provably-finite loops with no observable effects.

After optimistic GVN/LICM/DSE strip a loop's memory traffic, the loop
often computes nothing anyone reads — deleting it is where Quicksilver's
"# deleted loops 2 → 55" comes from (Fig. 6).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.loops import Loop, LoopInfo, loop_trip_count
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    ICmpInst,
    Instruction,
    PhiInst,
)
from ..ir.values import ConstantInt, UndefValue
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


def _loop_is_finite(loop: Loop) -> bool:
    """Conservative finiteness: a constant trip count, or the canonical
    ``i = phi; ...; i2 = i + c; br (i2 <cmp> bound)`` shape with positive
    step and an upper-bound comparison against a loop-invariant bound."""
    if loop_trip_count(loop) is not None:
        return True
    exiting = loop.exiting_blocks()
    if len(exiting) != 1:
        return False
    term = exiting[0].terminator
    if not isinstance(term, BranchInst) or not term.is_conditional:
        return False
    cond = term.condition
    if not isinstance(cond, ICmpInst):
        return False
    lhs, rhs = cond.operands
    # bound must be loop-invariant
    if isinstance(rhs, Instruction) and rhs.parent in loop.blocks:
        return False
    # the continue-condition must be an upper bound on an incrementing IV
    iv = lhs
    if isinstance(iv, BinaryInst) and iv.op == "add" \
            and isinstance(iv.rhs, ConstantInt) and iv.rhs.value > 0:
        iv = iv.lhs
    if not isinstance(iv, PhiInst) or iv.parent is not loop.header:
        return False
    steps_ok = False
    for v, b in iv.incoming:
        if b in loop.blocks:
            if isinstance(v, BinaryInst) and v.op == "add" \
                    and v.lhs is iv and isinstance(v.rhs, ConstantInt) \
                    and v.rhs.value > 0:
                steps_ok = True
    if not steps_ok:
        return False
    # taking the loop again requires cond (slt/sle) to hold
    taken_in_loop = term.targets[0] in loop.blocks
    pred = cond.pred
    if taken_in_loop and pred in ("slt", "sle", "ult", "ule"):
        return True
    if not taken_in_loop and pred in ("sge", "sgt", "uge", "ugt"):
        return True
    return False


class LoopDeletion(Pass):
    name = "loop-deletion"
    display_name = "Delete dead loops"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        # repeat: deleting an inner loop can make the outer one dead
        while True:
            li = ctx.analyses(fn).li
            deleted = False
            for loop in sorted(li.loops, key=lambda l: -l.depth):
                if self._try_delete(fn, loop, ctx):
                    ctx.stats.add(self.display_name, "# deleted loops")
                    # mid-run refresh: the next iteration needs LoopInfo
                    # over the mutated CFG
                    ctx.invalidate(fn)
                    changed = deleted = True
                    break
            if not deleted:
                return PreservedAnalyses.from_changed(changed)

    def _try_delete(self, fn: Function, loop: Loop,
                    ctx: CompilationContext) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        exits = loop.exit_blocks()
        if len(exits) != 1:
            return False
        exit_bb = exits[0]
        # dedicated exit so re-pointing the preheader branch is sound
        if any(p not in loop.blocks and p is not preheader
               for p in exit_bb.predecessors):
            return False
        if not _loop_is_finite(loop):
            return False
        # no observable effects inside
        for bb in loop.blocks:
            for inst in bb.instructions:
                if inst.is_terminator:
                    continue
                if inst.may_write_memory() or inst.has_side_effects():
                    return False
        # no out-of-loop uses of in-loop values
        for bb in loop.blocks:
            for inst in bb.instructions:
                for user in inst.users:
                    ub = getattr(user, "parent", None)
                    if ub is not None and ub not in loop.blocks:
                        return False
        # exit block phis: re-point header edge to preheader; incoming
        # values must be loop-invariant (guaranteed by the check above)
        for phi in exit_bb.phis():
            for i, b in enumerate(phi.incoming_blocks):
                if b in loop.blocks:
                    phi.incoming_blocks[i] = preheader
        # re-point the preheader into the exit
        term = preheader.terminator
        assert isinstance(term, BranchInst) and not term.is_conditional
        term.targets[0] = exit_bb
        # delete the loop body
        for bb in list(loop.blocks):
            for inst in list(bb.instructions):
                if inst.users:
                    inst.replace_all_uses_with(UndefValue(inst.type))
                inst.erase_from_parent()
            bb.erase_from_parent()
        return True
