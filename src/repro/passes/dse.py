"""DSE: dead-store elimination.

A store is dead when a later store must-overwrite the same location and
nothing in between may *read* it — the "may read?" checks are alias
queries, so optimistic answers directly grow the deleted-store count
(Fig. 6: Quicksilver "# stores deleted" +1533%).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.aliasing import AliasResult, ModRefInfo
from ..analysis.memloc import MemoryLocation
from ..ir.function import Function
from ..ir.instructions import (
    CallInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    StoreInst,
)
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


def _may_read(inst: Instruction, loc: MemoryLocation, aa) -> bool:
    mr = aa.get_mod_ref(inst, loc)
    return bool(mr & ModRefInfo.REF)


def _must_overwrite(later: Instruction, loc: MemoryLocation, aa) -> bool:
    """Does ``later`` certainly write all of ``loc``?"""
    if isinstance(later, StoreInst):
        lloc = MemoryLocation.get(later)
        if aa.alias(lloc, loc) is AliasResult.MUST:
            return (lloc.size.has_value and loc.size.has_value
                    and lloc.size.value >= loc.size.value)
    if isinstance(later, (MemSetInst, MemCpyInst)):
        lloc = MemoryLocation.for_dst(later)
        if aa.alias(lloc, loc) is AliasResult.MUST:
            return (lloc.size.has_value and loc.size.has_value
                    and lloc.size.value >= loc.size.value)
    return False


class DSE(Pass):
    name = "dse"
    display_name = "Dead Store Elimination"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        aa = ctx.aa
        changed = self._drop_stores_to_dead_locals(fn, ctx)
        for bb in fn.blocks:
            insts = bb.instructions
            i = 0
            while i < len(insts):
                inst = insts[i]
                if not isinstance(inst, StoreInst) or inst.is_volatile:
                    i += 1
                    continue
                loc = MemoryLocation.get(inst)
                mark = ctx.trace.mark() if ctx.trace is not None else None
                dead = False
                for j in range(i + 1, len(insts)):
                    later = insts[j]
                    if _must_overwrite(later, loc, aa):
                        dead = True
                        break
                    if later.may_read_memory() and _may_read(later, loc, aa):
                        break
                    if isinstance(later, CallInst) and later.may_write_memory():
                        break  # opaque call: could read through anything
                    if later.is_terminator:
                        break
                if dead:
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name, "# stores deleted")
                    if ctx.trace is not None:
                        ctx.trace.remark(
                            self.display_name, fn.name,
                            f"deleted dead store to "
                            f"{inst.pointer.short()}", since=mark)
                    changed = True
                    # do not advance: insts[i] is now the next instruction
                else:
                    i += 1
        # only erases stores; the CFG is untouched
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    def _drop_stores_to_dead_locals(self, fn: Function,
                                    ctx: CompilationContext) -> bool:
        """Stores into a non-escaping alloca that is never loaded are
        dead (classic end-of-function DSE).  This is what lets a whole
        scratch computation die once GVN has forwarded all its reads."""
        from ..analysis.basic_aa import alloca_is_captured
        from ..analysis.aliasing import underlying_object
        from ..ir.instructions import AllocaInst, GEPInst, CastInst

        changed = False
        for bb in list(fn.blocks):
            for inst in bb.instructions:
                if not isinstance(inst, AllocaInst):
                    continue
                if alloca_is_captured(inst):
                    continue
                stores: List[StoreInst] = []
                loaded = False
                work = [inst]
                seen = set()
                while work and not loaded:
                    v = work.pop()
                    if v in seen:
                        continue
                    seen.add(v)
                    for user in v.users:
                        if isinstance(user, LoadInst):
                            loaded = True
                            break
                        if isinstance(user, (GEPInst, CastInst)):
                            work.append(user)
                        elif isinstance(user, StoreInst) \
                                and user.pointer is v:
                            stores.append(user)
                        elif isinstance(user, (MemCpyInst, MemSetInst)):
                            if getattr(user, "src", None) is v:
                                loaded = True
                                break
                            stores.append(user)
                        else:
                            loaded = True  # unknown use: be conservative
                            break
                if not loaded:
                    for st in stores:
                        st.erase_from_parent()
                        ctx.stats.add(self.display_name, "# stores deleted")
                        changed = True
        return changed
