"""SLP vectorizer: roll 4 isomorphic scalar lanes into vector code.

Finds groups of 4 stores to consecutive addresses whose stored values
are isomorphic expression trees over consecutive loads / shared scalars,
and rewrites the group as vector loads + vector ops + one vector store.

Legality needs alias queries: any write interleaved between the lanes'
loads and the vector insertion point must be NoAlias with every lane
location (MiniFE: "# vector instructions generated" +33%, Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import AliasResult
from ..analysis.basic_aa import decompose_pointer
from ..analysis.memloc import MemoryLocation
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    GEPInst,
    Instruction,
    LoadInst,
    StoreInst,
)
from ..ir.types import VectorType, ptr
from ..ir.values import ConstantFloat, ConstantInt, Value
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass

LANES = 4
MAX_TREE_DEPTH = 5


class _Lanes:
    """An isomorphic tree node across the four lanes."""

    def __init__(self, kind: str, values: List[Value]):
        self.kind = kind  # "load" | "binop" | "splat"
        self.values = values
        self.children: List["_Lanes"] = []


class SLPVectorize(Pass):
    name = "slp-vectorizer"
    display_name = "SLP Vectorizer"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        for bb in list(fn.blocks):
            while self._vectorize_block(fn, bb, ctx):
                changed = True
        # rewrites straight-line groups inside blocks; the CFG is untouched
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    # -- one group per call -----------------------------------------------
    def _vectorize_block(self, fn: Function, bb: BasicBlock,
                         ctx: CompilationContext) -> bool:
        groups = self._find_store_groups(bb)
        for stores in groups:
            tree = self._build_tree([s.value for s in stores], bb, 0)
            if tree is None:
                continue
            mark = ctx.trace.mark() if ctx.trace is not None else None
            if not self._legal(bb, stores, tree, ctx):
                continue
            self._emit(fn, bb, stores, tree, ctx)
            if ctx.trace is not None:
                ctx.trace.remark(
                    self.display_name, fn.name,
                    f"vectorized store group at "
                    f"{stores[0].pointer.short()} (lanes={len(stores)})",
                    since=mark)
            return True
        return False

    def _find_store_groups(self, bb: BasicBlock) -> List[List[StoreInst]]:
        """Runs of 4 stores to base + (k, k+1, k+2, k+3) elements."""
        by_base: Dict[int, List[Tuple[int, StoreInst]]] = {}
        for inst in bb.instructions:
            if not isinstance(inst, StoreInst) or inst.is_volatile:
                continue
            if isinstance(inst.value.type, VectorType):
                continue
            base, off, varp = decompose_pointer(inst.pointer)
            if varp:
                continue
            by_base.setdefault(base.id, []).append((off, inst))
        groups = []
        for entries in by_base.values():
            entries.sort(key=lambda e: e[0])
            i = 0
            while i + LANES <= len(entries):
                cand = entries[i:i + LANES]
                esz = cand[0][1].value.type.size()
                offs = [c[0] for c in cand]
                tys = {c[1].value.type for c in cand}
                if len(tys) == 1 and all(
                        offs[k] == offs[0] + k * esz for k in range(LANES)):
                    groups.append([c[1] for c in cand])
                    i += LANES
                else:
                    i += 1
        return groups

    # -- isomorphic trees -----------------------------------------------------
    def _build_tree(self, values: List[Value], bb: BasicBlock,
                    depth: int) -> Optional[_Lanes]:
        if depth > MAX_TREE_DEPTH:
            return None
        first = values[0]
        # splat: all lanes are the same value (or equal constants)
        if all(v is first for v in values):
            return _Lanes("splat", values)
        if all(isinstance(v, ConstantInt) for v in values) and len(
                {v.value for v in values}) == 1:
            return _Lanes("splat", values)
        if all(isinstance(v, ConstantFloat) for v in values) and len(
                {v.value for v in values}) == 1:
            return _Lanes("splat", values)
        if all(isinstance(v, LoadInst) and v.parent is bb
               and not v.is_volatile and len(v.users) == 1 for v in values):
            bases = [decompose_pointer(v.pointer) for v in values]
            b0, o0, varp0 = bases[0]
            esz = first.type.size()
            if all(not vp for _, _, vp in bases) and all(
                    b.id == b0.id and o == o0 + k * esz
                    for k, (b, o, vp) in enumerate(bases)) and len(
                        {v.type for v in values}) == 1:
                return _Lanes("load", values)
            return None
        if all(isinstance(v, BinaryInst) and v.parent is bb
               and len(v.users) == 1 for v in values):
            ops = {v.op for v in values}
            if len(ops) != 1:
                return None
            left = self._build_tree([v.lhs for v in values], bb, depth + 1)
            if left is None:
                return None
            right = self._build_tree([v.rhs for v in values], bb, depth + 1)
            if right is None:
                return None
            node = _Lanes("binop", values)
            node.children = [left, right]
            return node
        return None

    # -- legality -----------------------------------------------------------
    def _collect_loads(self, tree: _Lanes, out: List[LoadInst]) -> None:
        if tree.kind == "load":
            out.extend(tree.values)
        for c in tree.children:
            self._collect_loads(c, out)

    def _legal(self, bb: BasicBlock, stores: List[StoreInst], tree: _Lanes,
               ctx: CompilationContext) -> bool:
        aa = ctx.aa
        loads: List[LoadInst] = []
        self._collect_loads(tree, loads)
        group = set(stores) | set(loads)
        insts = bb.instructions
        positions = [insts.index(s) for s in stores] + [
            insts.index(l) for l in loads]
        lo, hi = min(positions), max(positions)
        insertion = max(insts.index(s) for s in stores)
        # every non-group write inside the region must not touch any lane
        lane_locs = [MemoryLocation.get(x) for x in loads + stores]
        for k in range(lo, hi + 1):
            mid = insts[k]
            if mid in group:
                continue
            if not mid.may_write_memory():
                continue
            if not isinstance(mid, StoreInst):
                return False  # opaque writer (call/memcpy): give up
            mloc = MemoryLocation.get(mid)
            for loc in lane_locs:
                if aa.alias(mloc, loc) is not AliasResult.NO:
                    return False
        # group stores must not clobber group loads that are moved past them
        for l in loads:
            lpos = insts.index(l)
            lloc = MemoryLocation.get(l)
            for s in stores:
                spos = insts.index(s)
                if spos < lpos:
                    continue  # load happens first anyway
                if lpos < spos <= insertion:
                    if aa.alias(MemoryLocation.get(s), lloc) \
                            is not AliasResult.NO:
                        return False
        return True

    # -- emission ----------------------------------------------------------
    def _emit(self, fn: Function, bb: BasicBlock, stores: List[StoreInst],
              tree: _Lanes, ctx: CompilationContext) -> None:
        from ..ir.builder import IRBuilder

        anchor = max(stores, key=lambda s: bb.instructions.index(s))
        new_insts: List[Instruction] = []

        def insert(inst: Instruction) -> Instruction:
            bb.insert_before(inst, anchor)
            new_insts.append(inst)
            return inst

        def emit_tree(node: _Lanes) -> Value:
            first = node.values[0]
            if node.kind == "splat":
                from ..ir.instructions import ShuffleSplatInst
                return insert(ShuffleSplatInst(first, LANES,
                                               fn.unique_name("slp.splat")))
            if node.kind == "load":
                vty = VectorType(first.type, LANES)
                from ..ir.instructions import CastInst, LoadInst as LI
                cast = insert(CastInst("bitcast", first.pointer, ptr(vty),
                                       fn.unique_name("slp.cast")))
                vl = insert(LI(cast, fn.unique_name("slp.load")))
                vl.tbaa = first.tbaa
                vl.scoped = first.scoped
                ctx.stats.add(self.display_name,
                              "# vector instructions generated")
                return vl
            left = emit_tree(node.children[0])
            right = emit_tree(node.children[1])
            v = insert(BinaryInst(first.op, left, right,
                                  fn.unique_name("slp.bin")))
            ctx.stats.add(self.display_name, "# vector instructions generated")
            return v

        vec_value = emit_tree(tree)
        vty = VectorType(stores[0].value.type, LANES)
        from ..ir.instructions import CastInst
        cast = insert(CastInst("bitcast", stores[0].pointer, ptr(vty),
                               fn.unique_name("slp.cast")))
        st = insert(StoreInst(vec_value, cast))
        st.tbaa = stores[0].tbaa
        st.scoped = stores[0].scoped
        ctx.stats.add(self.display_name, "# vector instructions generated")
        ctx.stats.add(self.display_name, "# store groups vectorized")
        for s in stores:
            s.erase_from_parent()
        # scalar lanes left without users get cleaned by DCE
