"""Optimization pipelines (O0–O3), mirroring LLVM's pass ordering at the
granularity that matters for alias-analysis consumers."""

from __future__ import annotations

from typing import List

from .dse import DSE
from .early_cse import EarlyCSE
from .gvn import GVN
from .inliner import Inliner
from .licm import LICM
from .loop_deletion import LoopDeletion
from .loop_load_elim import LoopLoadElim
from .loop_vectorize import LoopVectorize
from .machine_sink import MachineSink
from .mem2reg import Mem2Reg
from .memcpy_opt import MemCpyOpt
from .pass_manager import Pass
from .simplify import DeadCodeElim, InstCombine, SimplifyCFG
from .slp_vectorize import SLPVectorize


def build_pipeline(level: int = 3, vectorize: bool = True) -> List[Pass]:
    """The pass sequence for ``-O<level>``.

    O0 performs no transformation at all; O1 cleans up and does simple
    scalar optimization; O2 adds the heavier AA consumers; O3 adds
    vectorization and a second LICM/cleanup round.
    """
    if level <= 0:
        return []
    pipeline: List[Pass] = [
        SimplifyCFG(),
        Mem2Reg(),
        InstCombine(),
        SimplifyCFG(),
        EarlyCSE(),
    ]
    if level >= 2:
        pipeline += [
            LICM(),
            GVN(),
            MemCpyOpt(),
            DSE(),
            LoopLoadElim(),
            InstCombine(),
            DeadCodeElim(),
            LICM(),
            LoopDeletion(),
        ]
    if level >= 3 and vectorize:
        pipeline += [
            LoopVectorize(),
            SLPVectorize(),
        ]
    pipeline += [
        InstCombine(),
        DeadCodeElim(),
        MachineSink(),
        SimplifyCFG(),
        DeadCodeElim(),
    ]
    return pipeline


#: The Inliner is available but not part of the default pipelines: the
#: paper's workflow scopes probing to chosen files/functions, and
#: inlining dissolves exactly those boundaries.  Enable it explicitly
#: with parse_pipeline("...,inline,...").
PASS_NAMES = {
    "simplifycfg": SimplifyCFG,
    "inline": Inliner,
    "mem2reg": Mem2Reg,
    "instcombine": InstCombine,
    "early-cse": EarlyCSE,
    "licm": LICM,
    "gvn": GVN,
    "memcpyopt": MemCpyOpt,
    "dse": DSE,
    "loop-load-elim": LoopLoadElim,
    "loop-deletion": LoopDeletion,
    "loop-vectorize": LoopVectorize,
    "slp-vectorizer": SLPVectorize,
    "machine-sink": MachineSink,
    "dce": DeadCodeElim,
}


def parse_pipeline(spec: str) -> List[Pass]:
    """Build a pipeline from a comma-separated pass list (for tests)."""
    return [PASS_NAMES[name.strip()]() for name in spec.split(",") if name.strip()]
