"""Loop vectorizer (VF = 4) for canonical counted loops.

Legality follows LLVM's LoopAccessAnalysis in miniature:

* innermost loop of the canonical header/body[/latch] shape with a
  unit-step integer induction and an invariant upper bound;
* every memory access has a unit-stride affine address ``base[i + c]``
  with an invariant base;
* accesses with *distinct* bases must be proven NoAlias (these are the
  queries ORAQL receives; a wrong no-alias here vectorizes a genuinely
  dependent loop and corrupts lanes);
* same-base accesses must target the same element when a store is
  involved (dependence distance 0);
* no FP reductions (bit-exact verification forbids reassociation; LLVM
  likewise requires fast-math) — integer reductions are allowed.

Transform: a vector main loop over the VF-divisible prefix, reusing the
original loop as the scalar epilogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import AliasResult
from ..analysis.loops import Loop
from ..analysis.memloc import BEFORE_OR_AFTER, LocationSize, MemoryLocation
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
)
from ..ir.types import IntType, VectorType, I64, ptr
from ..ir.values import ConstantFloat, ConstantInt, Value
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass

VF = 4


@dataclass
class _Shape:
    preheader: BasicBlock
    header: BasicBlock
    body_blocks: List[BasicBlock]
    exit: BasicBlock
    iv: PhiInst
    iv_next: BinaryInst
    bound: Value
    cmp: ICmpInst
    int_reductions: List[Tuple[PhiInst, BinaryInst]]


def _affine_index(idx: Value, iv: PhiInst) -> Optional[Tuple[int, Value]]:
    """Recognize ``i``, ``i + c`` / ``c + i`` / ``i - c``; returns
    (const, None) marker? -> (offset, base_is_iv).  Returns the constant
    offset when the index is iv-affine with coefficient 1, else None."""
    if idx is iv:
        return (0, iv)
    if isinstance(idx, BinaryInst):
        if idx.op == "add":
            if idx.lhs is iv and isinstance(idx.rhs, ConstantInt):
                return (idx.rhs.value, iv)
            if idx.rhs is iv and isinstance(idx.lhs, ConstantInt):
                return (idx.lhs.value, iv)
        if idx.op == "sub" and idx.lhs is iv and isinstance(
                idx.rhs, ConstantInt):
            return (-idx.rhs.value, iv)
    return None


class LoopVectorize(Pass):
    name = "loop-vectorize"
    display_name = "Loop Vectorizer"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        li = ctx.analyses(fn).li
        changed = False
        for loop in li.innermost():
            shape = self._match_shape(loop)
            if shape is None:
                continue
            mark = ctx.trace.mark() if ctx.trace is not None else None
            plan = self._check_legal(fn, loop, shape, ctx)
            if plan is None:
                continue
            self._transform(fn, loop, shape, plan, ctx)
            ctx.stats.add(self.display_name, "# vectorized loops")
            if ctx.trace is not None:
                ctx.trace.remark(
                    self.display_name, fn.name,
                    f"vectorized loop at {shape.header.name} (VF={VF})",
                    since=mark)
            # mid-run refresh: later iterations walk the rebuilt CFG
            ctx.invalidate(fn)
            changed = True
        return PreservedAnalyses.from_changed(changed)

    # -- shape matching ------------------------------------------------------
    def _match_shape(self, loop: Loop) -> Optional[_Shape]:
        preheader = loop.preheader()
        if preheader is None:
            return None
        header = loop.header
        if len(loop.blocks) > 3:
            return None
        latches = loop.latches()
        if len(latches) != 1:
            return None
        exits = loop.exit_blocks()
        if len(exits) != 1 or loop.exiting_blocks() != [header]:
            return None
        exit_bb = exits[0]
        if exit_bb.phis():
            return None
        if any(p not in loop.blocks and p is not preheader
               for p in exit_bb.predecessors):
            return None
        term = header.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            return None
        cond = term.condition
        if not isinstance(cond, ICmpInst) or cond.pred != "slt":
            return None
        if term.targets[1] is not exit_bb:
            return None
        iv_cand, bound = cond.operands
        if not isinstance(iv_cand, PhiInst) or iv_cand.parent is not header:
            return None
        if isinstance(bound, Instruction) and bound.parent in loop.blocks:
            return None
        # induction: i = phi [start, pre], [i+1, latch]
        iv = iv_cand
        iv_next = None
        for v, b in iv.incoming:
            if b in loop.blocks:
                if isinstance(v, BinaryInst) and v.op == "add" \
                        and v.lhs is iv and isinstance(v.rhs, ConstantInt) \
                        and v.rhs.value == 1:
                    iv_next = v
        if iv_next is None:
            return None
        # other header phis must be integer reductions (add with const-0
        # friendly init is not required; any invariant init works)
        int_reductions = []
        for phi in header.phis():
            if phi is iv:
                continue
            if not isinstance(phi.type, IntType):
                return None
            upd = phi.incoming_for_block(latches[0])
            init = None
            for v, b in phi.incoming:
                if b not in loop.blocks:
                    init = v
            if not isinstance(upd, BinaryInst) or upd.op not in ("add",):
                return None
            if upd.lhs is not phi and upd.rhs is not phi:
                return None
            if upd is iv_next:
                return None
            int_reductions.append((phi, upd))
        body_blocks = [bb for bb in loop.body_in_layout_order()
                       if bb is not header]
        return _Shape(preheader, header, body_blocks, exit_bb, iv, iv_next,
                      bound, cond, int_reductions)

    # -- legality -----------------------------------------------------------
    def _check_legal(self, fn: Function, loop: Loop, shape: _Shape,
                     ctx: CompilationContext) -> Optional[Dict]:
        aa = ctx.aa
        iv = shape.iv
        reads: List[Tuple[LoadInst, Value, int]] = []   # (inst, base, off)
        writes: List[Tuple[StoreInst, Value, int]] = []
        body_insts: List[Instruction] = []
        reduction_updates = {upd for _, upd in shape.int_reductions}

        # the vector body is formed from all non-header loop instructions
        # plus nothing from the header except phis handled separately
        for bb in shape.body_blocks:
            if len(shape.body_blocks) > 1 and bb is not shape.body_blocks[0]:
                # second block may only contain the iv increment + branch
                for i in bb.instructions:
                    if i is shape.iv_next or i.is_terminator:
                        continue
                    return None
                continue
            for i in bb.instructions:
                body_insts.append(i)

        for i in body_insts:
            if i.is_terminator or i is shape.iv_next or i in reduction_updates:
                continue
            if isinstance(i, LoadInst):
                aff = self._address(i.pointer, iv, loop)
                if aff is None:
                    return None
                reads.append((i, aff[0], aff[1]))
            elif isinstance(i, StoreInst):
                aff = self._address(i.pointer, iv, loop)
                if aff is None:
                    return None
                writes.append((i, aff[0], aff[1]))
            elif isinstance(i, BinaryInst):
                if i.op in ("sdiv", "udiv", "srem", "urem", "frem"):
                    return None
            elif isinstance(i, (ICmpInst, FCmpInst, SelectInst, CastInst)):
                pass
            elif isinstance(i, GEPInst):
                pass
            elif isinstance(i, CallInst):
                return None
            elif isinstance(i, PhiInst):
                return None
            else:
                return None
            # every user must stay inside the loop
            for u in i.users:
                ub = getattr(u, "parent", None)
                if ub is not None and ub not in loop.blocks:
                    return None

        if not writes:
            return None  # nothing to gain; reductions-only loops are rare

        # reduction updates must live in the widened body
        body_set = set(body_insts)
        for _, upd in shape.int_reductions:
            if upd not in body_set:
                return None

        # dependence checks
        def elem_size(inst):
            return (inst.type.size() if isinstance(inst, LoadInst)
                    else inst.value.type.size())

        for w, wbase, woff in writes:
            for r, rbase, roff in reads + [x for x in writes if x[0] is not w]:
                if wbase is rbase:
                    if woff != roff:
                        return None  # nonzero dependence distance
                    continue
                la = MemoryLocation(w.pointer, BEFORE_OR_AFTER, w.tbaa,
                                    w.scoped)
                lb = MemoryLocation(r.pointer, BEFORE_OR_AFTER, r.tbaa,
                                    r.scoped)
                if aa.alias(la, lb) is not AliasResult.NO:
                    return None
        return {"reads": reads, "writes": writes, "body": body_insts}

    def _address(self, pointer: Value, iv: PhiInst,
                 loop: Loop) -> Optional[Tuple[Value, int]]:
        """Match ``gep base, [i+c]`` / ``gep base, [0, i+c]`` with an
        invariant scalar-element base; returns (base, c)."""
        if not isinstance(pointer, GEPInst):
            return None
        base = pointer.pointer
        if isinstance(base, Instruction) and base.parent in loop.blocks:
            return None
        idx = pointer.indices
        if len(idx) == 1:
            aff = _affine_index(idx[0], iv)
        elif len(idx) == 2 and isinstance(idx[0], ConstantInt) \
                and idx[0].value == 0:
            aff = _affine_index(idx[1], iv)
        else:
            return None
        if aff is None:
            return None
        if pointer.type.pointee.is_aggregate or pointer.type.pointee.is_vector:
            return None
        return (base, aff[0])

    # -- transform ------------------------------------------------------------
    def _transform(self, fn: Function, loop: Loop, shape: _Shape,
                   plan: Dict, ctx: CompilationContext) -> None:
        from ..ir.builder import IRBuilder

        pre = shape.preheader
        header = shape.header
        iv = shape.iv

        # start value of the induction
        start = None
        for v, b in iv.incoming:
            if b not in loop.blocks:
                start = v
        assert start is not None

        vec_header = fn.add_block(fn.unique_name("vec.header"), after=pre)
        vec_body = fn.add_block(fn.unique_name("vec.body"), after=vec_header)
        mid = fn.add_block(fn.unique_name("vec.mid"), after=vec_body)

        # preheader: m = bound - ((bound - start) % VF), re-target branch
        pterm = pre.terminator
        b = IRBuilder()
        b.block = pre
        pterm.erase_from_parent()
        span = b.sub(shape.bound, start)
        rem = b.srem(span, b.i64(VF))
        m = b.sub(shape.bound, rem)
        b.br(vec_header)

        # vec.header: vi = phi [start, pre], [vi+VF, vec.body]
        b.position_at_end(vec_header)
        vi = b.phi(I64, "vi")
        vi.add_incoming(start, pre)
        vred: Dict[PhiInst, PhiInst] = {}
        for phi, upd in shape.int_reductions:
            init = None
            for v, bb_ in phi.incoming:
                if bb_ not in loop.blocks:
                    init = v
            vphi = b.phi(VectorType(phi.type, VF), fn.unique_name("vred"))
            # lane0 = init, other lanes = identity(0 for add)
            zero = ConstantInt(phi.type, 0)
            seed = b.splat(zero, VF)
            seed = b.insertelement(seed, init, 0)
            vphi.add_incoming(seed, pre)
            vred[phi] = vphi
        # the seed splat/insert were appended to vec_header after the phi —
        # relocate them to the preheader where they belong
        to_move = [i for i in vec_header.instructions
                   if not isinstance(i, PhiInst)]
        for i in to_move:
            vec_header.instructions.remove(i)
            i.parent = None
            pre.insert_before(i, pre.terminator)

        b.position_at_end(vec_header)
        vcmp = b.icmp("slt", vi, m)
        b.cond_br(vcmp, vec_body, mid)

        # vec.body: widen every body instruction
        b.position_at_end(vec_body)
        vmap: Dict[Value, Value] = {iv: None}  # filled lazily
        splats: Dict[int, Value] = {}
        reduction_updates = {upd: phi for phi, upd in shape.int_reductions}

        def iv_vector() -> Value:
            if vmap[iv] is None:
                lane = b.splat(vi, VF)
                steps = b.splat(b.i64(0), VF)
                for k in range(VF):
                    steps = b.insertelement(steps, b.i64(k), k)
                vmap[iv] = b.binop("add", lane, steps)
            return vmap[iv]

        def widen_operand(v: Value) -> Value:
            if v in vmap:
                got = vmap[v]
                if got is None:
                    return iv_vector()
                return got
            if v is iv:
                return iv_vector()
            # invariant: splat once
            got = splats.get(v.id)
            if got is None:
                got = b.splat(v, VF)
                splats[v.id] = got
            return got

        for phi, vphi in vred.items():
            vmap[phi] = vphi

        for inst in plan["body"]:
            if inst.is_terminator or inst is shape.iv_next:
                continue
            if isinstance(inst, GEPInst):
                continue  # folded into the vector load/store below
            if isinstance(inst, LoadInst):
                base, off = self._address(inst.pointer, iv, loop)
                addr_i = b.add(vi, b.i64(off)) if off else vi
                g = b.gep(base, [addr_i] if len(
                    inst.pointer.indices) == 1 else [0, addr_i])
                vty = VectorType(inst.type, VF)
                cast = b.cast("bitcast", g, ptr(vty))
                vl = b.load(cast, tbaa=inst.tbaa)
                vl.scoped = inst.scoped
                vmap[inst] = vl
            elif isinstance(inst, StoreInst):
                base, off = self._address(inst.pointer, iv, loop)
                addr_i = b.add(vi, b.i64(off)) if off else vi
                g = b.gep(base, [addr_i] if len(
                    inst.pointer.indices) == 1 else [0, addr_i])
                vty = VectorType(inst.value.type, VF)
                cast = b.cast("bitcast", g, ptr(vty))
                st = b.store(widen_operand(inst.value), cast, tbaa=inst.tbaa)
                st.scoped = inst.scoped
            elif isinstance(inst, BinaryInst):
                if inst in reduction_updates:
                    phi = reduction_updates[inst]
                    other = inst.rhs if inst.lhs is phi else inst.lhs
                    upd = b.binop(inst.op, vred[phi], widen_operand(other))
                    vmap[inst] = upd
                else:
                    vmap[inst] = b.binop(inst.op, widen_operand(inst.lhs),
                                         widen_operand(inst.rhs))
            elif isinstance(inst, ICmpInst):
                vmap[inst] = b.icmp(inst.pred, widen_operand(inst.operands[0]),
                                    widen_operand(inst.operands[1]))
            elif isinstance(inst, FCmpInst):
                vmap[inst] = b.fcmp(inst.pred, widen_operand(inst.operands[0]),
                                    widen_operand(inst.operands[1]))
            elif isinstance(inst, SelectInst):
                c, t, f = inst.operands
                vmap[inst] = b.select(widen_operand(c), widen_operand(t),
                                      widen_operand(f))
            elif isinstance(inst, CastInst):
                src = widen_operand(inst.value)
                vmap[inst] = b.cast(inst.op, src,
                                    VectorType(inst.type, VF))
        vi_next = b.add(vi, b.i64(VF))
        vi.add_incoming(vi_next, vec_body)
        for phi, vphi in vred.items():
            vphi.add_incoming(vmap[reduction_updates_inv(vred, phi,
                                                         shape)], vec_body)
        b.br(vec_header)

        # mid: reduce vector accumulators, then enter the scalar epilogue
        b.position_at_end(mid)
        red_fix: Dict[PhiInst, Value] = {}
        for phi, vphi in vred.items():
            red = b.call("llvm.vector.reduce.add", [vphi], phi.type)
            red_fix[phi] = red
        b.br(header)

        # re-point the original loop: preheader edge now comes from mid,
        # starting at vi == m with the reduced accumulator values
        for phi in header.phis():
            for i, blk in enumerate(phi.incoming_blocks):
                if blk is pre:
                    phi.incoming_blocks[i] = mid
                    if phi is iv:
                        phi.set_operand(i, vi)
                    elif phi in red_fix:
                        phi.set_operand(i, red_fix[phi])


def reduction_updates_inv(vred, phi, shape) -> BinaryInst:
    for p, upd in shape.int_reductions:
        if p is phi:
            return upd
    raise KeyError(phi)
