"""New-PM-style analysis manager: ``PreservedAnalyses`` + fine-grained
invalidation.

Mirrors LLVM's new pass manager at the granularity this reproduction
needs.  Transformation passes no longer report a boolean ``changed``;
they return a :class:`PreservedAnalyses` describing which analyses
survive the transformation.  The :class:`AnalysisManager` owns

* per-function analyses — :class:`DominatorTreeAnalysis`,
  :class:`LoopAnalysis`, :class:`MemorySSAAnalysis` — keyed by
  ``(function, analysis id)`` and invalidated individually, and
* the module-level alias-analysis chain (incl. GlobalsAA), whose
  entries declare their own invalidation granularity via
  ``AliasAnalysisPass.invalidation_scope``.

The payoff is the probing loop (paper §IV-B/C): hundreds of compiles
per run, each previously rebuilding DominatorTree/LoopInfo from scratch
whenever *any* pass changed *anything*.  CFG-preserving passes now
declare DT/LI preserved, so only MemorySSA rebuilds — the same
frame-inference discipline as Kogtenkov et al.'s change calculus
(PAPERS.md): reason about what a change *preserves*, not just that one
happened.

Invalidation is observable-behavior-neutral by construction:

* DT/LI are pure functions of the CFG, so preserving them across a
  non-CFG transformation cannot change any query answer;
* MemorySSA issues alias queries during construction (attributed to the
  'Memory SSA' pass in ORAQL dumps), so it is *never* preserved across
  a change — its rebuild schedule, and hence the query stream, is
  identical to the legacy invalidate-everything behavior;
* per-function AA summaries (the CFL analyses) are dropped only for the
  changed function — rebuilding an unchanged function's summary would
  reproduce it bit-for-bit, so skipping the rebuild is unobservable.

An opt-in ``verify_analyses`` mode recomputes DT/LI from scratch after
every pass that claims to preserve them and raises
:class:`AnalysisVerificationError` on any mismatch — catching passes
that lie about preservation.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..analysis import DominatorTree, LoopInfo, MemorySSA
from ..ir.function import Function

if TYPE_CHECKING:  # pragma: no cover
    from .pass_manager import CompilationContext


class AnalysisVerificationError(Exception):
    """A pass claimed to preserve an analysis it actually invalidated."""


# -- analysis IDs ------------------------------------------------------------
#
# The classes themselves are the keys (LLVM's AnalysisKey pattern): a
# ``name`` for counters/reports and a ``run`` that builds the result.

class DominatorTreeAnalysis:
    """Immediate-dominator tree over the function's CFG."""

    name = "DominatorTree"

    @staticmethod
    def run(fn: Function, am: "AnalysisManager") -> DominatorTree:
        return DominatorTree(fn)


class LoopAnalysis:
    """Natural-loop forest; depends on :class:`DominatorTreeAnalysis`."""

    name = "LoopInfo"

    @staticmethod
    def run(fn: Function, am: "AnalysisManager") -> LoopInfo:
        return LoopInfo(fn, am.get(DominatorTreeAnalysis, fn))


class MemorySSAAnalysis:
    """MemorySSA with eager use optimization.  Construction issues alias
    queries, attributed to the 'Memory SSA' pass (Fig. 3), so this
    analysis is never preserved across a change: its build schedule is
    part of the observable ORAQL query stream."""

    name = "MemorySSA"

    @staticmethod
    def run(fn: Function, am: "AnalysisManager") -> MemorySSA:
        ctx = am.ctx
        ctx.announce("Memory SSA", fn)
        ctx.push_pass("Memory SSA")
        try:
            with ctx.timed("Memory SSA"):
                return MemorySSA(fn, ctx.aa, optimize_uses=True)
        finally:
            ctx.pop_pass()


FUNCTION_ANALYSES = (DominatorTreeAnalysis, LoopAnalysis, MemorySSAAnalysis)

#: Analyses that are pure functions of the CFG's block structure.  A pass
#: that only adds/moves/erases non-terminator instructions preserves these.
CFG_ANALYSES: FrozenSet[type] = frozenset(
    {DominatorTreeAnalysis, LoopAnalysis})


# -- PreservedAnalyses -------------------------------------------------------

class PreservedAnalyses:
    """What a transformation kept intact (LLVM's ``PreservedAnalyses``).

    ``all()`` means the pass changed nothing observable; ``none()``
    abandons everything; ``cfg()`` is the common middle ground — the
    pass mutated instructions but not the block graph, so DT/LI survive.

    Module passes additionally report ``modified_functions``: the exact
    set of functions they touched, letting ``verify_each`` and
    invalidation scope to those functions instead of the whole module
    (``None`` means "unknown — assume everything").
    """

    __slots__ = ("_all", "_ids", "modified_functions")

    def __init__(self, all_preserved: bool = False,
                 ids: Iterable[type] = (),
                 modified_functions: Optional[Set[Function]] = None):
        self._all = all_preserved
        self._ids: FrozenSet[type] = frozenset(ids)
        self.modified_functions = modified_functions

    # -- factories -------------------------------------------------------
    @classmethod
    def all(cls) -> "PreservedAnalyses":
        """The pass made no observable change: everything survives."""
        return cls(all_preserved=True)

    @classmethod
    def none(cls, modified_functions: Optional[Set[Function]] = None
             ) -> "PreservedAnalyses":
        """The pass may have changed anything: abandon every analysis."""
        return cls(modified_functions=modified_functions)

    @classmethod
    def cfg(cls, modified_functions: Optional[Set[Function]] = None
            ) -> "PreservedAnalyses":
        """Instructions changed but the block graph did not: DT and LI
        survive, MemorySSA and AA state do not."""
        return cls(ids=CFG_ANALYSES, modified_functions=modified_functions)

    @classmethod
    def from_changed(cls, changed: bool, preserves_cfg: bool = False
                     ) -> "PreservedAnalyses":
        """Bridge for boolean-protocol code: ``changed=False`` preserves
        all; otherwise ``cfg()`` or ``none()`` per ``preserves_cfg``."""
        if not changed:
            return cls.all()
        return cls.cfg() if preserves_cfg else cls.none()

    # -- queries ---------------------------------------------------------
    def are_all_preserved(self) -> bool:
        return self._all

    def preserves(self, analysis_id: type) -> bool:
        return self._all or analysis_id in self._ids

    # -- composition -----------------------------------------------------
    def intersect(self, other: "PreservedAnalyses") -> "PreservedAnalyses":
        """The analyses preserved by *both* transformations, with the
        union of their modified-function sets."""
        if self._all and other._all:
            mods = self._merge_mods(other)
            return (PreservedAnalyses.all() if mods is None and
                    self.modified_functions is None and
                    other.modified_functions is None
                    else PreservedAnalyses(True, (), mods))
        a = self._ids if not self._all else other._ids
        b = other._ids if not other._all else self._ids
        return PreservedAnalyses(False, a & b, self._merge_mods(other))

    def _merge_mods(self, other: "PreservedAnalyses"
                    ) -> Optional[Set[Function]]:
        if self.modified_functions is None and \
                other.modified_functions is None:
            return None
        if self.modified_functions is None:
            # all() contributes no modifications; anything else unknown
            return (set(other.modified_functions)
                    if self._all else None)
        if other.modified_functions is None:
            return (set(self.modified_functions)
                    if other._all else None)
        return set(self.modified_functions) | set(other.modified_functions)

    def __repr__(self) -> str:  # pragma: no cover
        if self._all:
            return "PreservedAnalyses.all()"
        names = sorted(i.name for i in self._ids)
        return f"PreservedAnalyses({names})"

    def __bool__(self) -> bool:
        raise TypeError(
            "PreservedAnalyses has no truth value: passes no longer "
            "return a boolean 'changed' — test .are_all_preserved() "
            "(False means the pass changed the IR)")


# -- the manager -------------------------------------------------------------

class AnalysisManager:
    """Owns cached analyses, with per-analysis invalidation and the
    bookkeeping the benchmarks report: how often each analysis was
    built, how often a cached result was served, and how many rebuilds
    fine-grained invalidation avoided (a cache hit on a result that
    already survived at least one invalidation event)."""

    def __init__(self, ctx: "CompilationContext"):
        self.ctx = ctx
        #: (fn.id, analysis id) -> analysis result
        self._function: Dict[Tuple[int, type], object] = {}
        #: (fn.id, analysis id) -> epoch at which the entry was cached
        self._stamp: Dict[Tuple[int, type], int] = {}
        #: bumped on every invalidation event (any non-all() result)
        self.epoch = 0
        self.builds: Counter = Counter()
        self.cache_hits: Counter = Counter()
        self.preserved_hits: Counter = Counter()
        #: (fn.id, analysis id) entries a *full* compile would be
        #: holding in cache right now, which this (resumed incremental)
        #: run has not built yet.  A phantom build runs with the AA
        #: chain's counters suppressed — the full compile would have
        #: served the preserved result without issuing a single query —
        #: and is accounted as a preserved cache hit, not a build.
        #: Marks are discarded exactly when the mirrored full compile
        #: would invalidate the entry (same PreservedAnalyses stream).
        self._phantom: Set[Tuple[int, type]] = set()

    # -- access ----------------------------------------------------------
    def get(self, analysis_id: type, fn: Function):
        key = (fn.id, analysis_id)
        result = self._function.get(key)
        if result is None:
            if key in self._phantom:
                self._phantom.discard(key)
                aa = self.ctx.aa
                prev = aa.suppress_counters
                aa.suppress_counters = True
                try:
                    result = analysis_id.run(fn, self)
                finally:
                    aa.suppress_counters = prev
                self._function[key] = result
                self._stamp[key] = self.epoch
                self.cache_hits[analysis_id.name] += 1
                self.preserved_hits[analysis_id.name] += 1
                return result
            result = analysis_id.run(fn, self)
            self._function[key] = result
            self._stamp[key] = self.epoch
            self.builds[analysis_id.name] += 1
        else:
            self.cache_hits[analysis_id.name] += 1
            if self._stamp[key] < self.epoch:
                # the entry survived an invalidation event: this hit is
                # a rebuild the legacy protocol would have paid for
                self.preserved_hits[analysis_id.name] += 1
        return result

    def cached(self, analysis_id: type, fn: Function):
        """The cached result, or None — never builds."""
        return self._function.get((fn.id, analysis_id))

    # -- phantom entries (incremental resume) ----------------------------
    def valid_set(self, fn: Function) -> FrozenSet[str]:
        """Names of ``fn``'s analyses a full compile holds in cache at
        this point: really-cached entries plus live phantom marks (the
        marks stand in for full-compile entries not yet rebuilt)."""
        return frozenset(
            a.name for a in FUNCTION_ANALYSES
            if (fn.id, a) in self._function or (fn.id, a) in self._phantom)

    def mark_phantom(self, fn: Function, names: Iterable[str]) -> None:
        """Declare that a full compile would currently hold the named
        analyses for ``fn`` — the resumed run's cache starts cold, so
        their first (re)build is served phantom-cached instead."""
        wanted = set(names)
        for analysis_id in FUNCTION_ANALYSES:
            if analysis_id.name in wanted:
                self._phantom.add((fn.id, analysis_id))

    # -- invalidation ----------------------------------------------------
    def invalidate_function(self, fn: Function,
                            pa: Optional[PreservedAnalyses] = None) -> None:
        """A function-local change: drop ``fn``'s analyses that ``pa``
        does not preserve.  Module-level AA state is invalidated at its
        own declared granularity — per-function summaries drop only
        ``fn``'s entry; module-grained caches (GlobalsAA) drop entirely
        only under coarse invalidation or a module-scope change."""
        if pa is not None and pa.are_all_preserved():
            return
        self.epoch += 1
        coarse = self.ctx.invalidation == "coarse"
        for analysis_id in FUNCTION_ANALYSES:
            if not coarse and pa is not None and pa.preserves(analysis_id):
                continue
            self._function.pop((fn.id, analysis_id), None)
            self._phantom.discard((fn.id, analysis_id))
        if coarse:
            # legacy semantics: any change nukes this function's
            # analyses and every AA cache (pre-refactor pass_manager
            # behavior, kept for the differential benchmarks)
            for key in [k for k in self._function if k[0] == fn.id]:
                self._function.pop(key, None)
            self._phantom = {k for k in self._phantom if k[0] != fn.id}
            self._invalidate_aa_module()
            return
        self._invalidate_aa_function(fn)

    def invalidate_module(self, pa: Optional[PreservedAnalyses] = None
                          ) -> None:
        """A module-scope change (module pass, or unknown extent): drop
        everything not explicitly preserved."""
        if pa is not None and pa.are_all_preserved():
            return
        self.epoch += 1
        coarse_mode = self.ctx.invalidation == "coarse"
        fns = None if pa is None else pa.modified_functions
        if fns is not None and not coarse_mode:
            fn_ids = {f.id for f in fns}
            for key in list(self._function):
                if key[0] in fn_ids and not (
                        pa is not None and pa.preserves(key[1])):
                    self._function.pop(key, None)
            for key in list(self._phantom):
                if key[0] in fn_ids and not (
                        pa is not None and pa.preserves(key[1])):
                    self._phantom.discard(key)
            for fn in fns:
                self._invalidate_aa_function(fn)
            # interprocedural state (GlobalsAA address-taken verdicts)
            # can change whenever call/use structure changes
            self._invalidate_aa_module(module_scope_only=True)
            return
        for key in list(self._function):
            if not coarse_mode and pa is not None and pa.preserves(key[1]):
                continue
            self._function.pop(key, None)
        for key in list(self._phantom):
            if not coarse_mode and pa is not None and pa.preserves(key[1]):
                continue
            self._phantom.discard(key)
        self._invalidate_aa_module()

    def invalidate_interprocedural(self) -> None:
        """Call/use structure changed (e.g. inlining cloned instructions
        into a caller): module-grained AA caches such as GlobalsAA's
        address-taken verdicts must go, even under fine invalidation.
        Per-function summaries of *other* functions stay — their IR is
        untouched."""
        self._invalidate_aa_module(module_scope_only=True)

    def _invalidate_aa_function(self, fn: Function) -> None:
        for analysis in self.ctx.aa.analyses:
            scope = getattr(analysis, "invalidation_scope", "none")
            if scope == "function":
                inv = getattr(analysis, "invalidate_function", None)
                if inv is not None:
                    inv(fn)
                else:  # pragma: no cover - defensive fallback
                    analysis.invalidate()

    def _invalidate_aa_module(self, module_scope_only: bool = False) -> None:
        for analysis in self.ctx.aa.analyses:
            scope = getattr(analysis, "invalidation_scope", "none")
            if scope == "module" or (scope == "function"
                                     and not module_scope_only):
                inv = getattr(analysis, "invalidate", None)
                if inv is not None:
                    inv()

    # -- verification ----------------------------------------------------
    def verify_preserved(self, fn: Function, pass_name: str) -> None:
        """Recompute-and-compare every cached CFG analysis of ``fn``
        against a from-scratch build; raise if a preserved analysis is
        stale (the pass lied about preservation)."""
        dt = self.cached(DominatorTreeAnalysis, fn)
        if dt is not None:
            fresh = DominatorTree(fn)
            if not _same_domtree(dt, fresh):
                raise AnalysisVerificationError(
                    f"pass '{pass_name}' claimed to preserve DominatorTree "
                    f"of @{fn.name} but the CFG changed")
        li = self.cached(LoopAnalysis, fn)
        if li is not None:
            fresh_li = LoopInfo(fn, dt if dt is not None
                                else DominatorTree(fn))
            if not _same_loopinfo(li, fresh_li):
                raise AnalysisVerificationError(
                    f"pass '{pass_name}' claimed to preserve LoopInfo "
                    f"of @{fn.name} but the loop structure changed")

    # -- reporting -------------------------------------------------------
    def counters(self) -> Dict[str, Dict[str, int]]:
        return {
            "builds": dict(self.builds),
            "cache_hits": dict(self.cache_hits),
            "preserved_hits": dict(self.preserved_hits),
        }

    def merge_counters(self, other: "AnalysisManager") -> None:
        self.builds.update(other.builds)
        self.cache_hits.update(other.cache_hits)
        self.preserved_hits.update(other.preserved_hits)


def _same_domtree(a: DominatorTree, b: DominatorTree) -> bool:
    if a.rpo != b.rpo:
        return False
    if set(map(id, a.idom)) != set(map(id, b.idom)):
        return False
    return all(a.idom[bb] is b.idom[bb] for bb in a.idom)


def _same_loopinfo(a: LoopInfo, b: LoopInfo) -> bool:
    def shape(li: LoopInfo):
        return sorted((id(l.header), frozenset(map(id, l.blocks)))
                      for l in li.loops)
    return shape(a) == shape(b)
