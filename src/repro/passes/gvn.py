"""GVN: global value numbering with MemorySSA-driven load elimination.

The load elimination walk is the headline AA consumer: for each load we
ask MemorySSA for the clobbering access, which issues alias queries for
every intervening store — in TestSNAP-OpenMP, GVN is the pass issuing
the four pessimistic queries of Fig. 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.aliasing import AliasResult
from ..analysis.memloc import MemoryLocation
from ..analysis.memory_ssa import LiveOnEntry, MemoryAccess, MemoryDef, MemoryPhi
from ..ir.function import Function
from ..ir.instructions import LoadInst, StoreInst
from .analysis_manager import PreservedAnalyses
from .early_cse import _expr_key
from .pass_manager import CompilationContext, Pass


class GVN(Pass):
    name = "gvn"
    display_name = "Global Value Numbering"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        changed |= self._eliminate_loads(fn, ctx)
        changed |= self._number_expressions(fn, ctx)
        # deletes loads / pure expressions, never branches or blocks
        return PreservedAnalyses.from_changed(changed, preserves_cfg=True)

    # -- load elimination ------------------------------------------------
    def _eliminate_loads(self, fn: Function, ctx: CompilationContext) -> bool:
        analyses = ctx.analyses(fn)
        mssa = analyses.mssa
        dt = analyses.dt
        aa = ctx.aa
        changed = False
        # (clobbering access id, pointer value) -> earlier load
        seen_loads: Dict[Tuple[int, int], LoadInst] = {}
        erased = set()
        for bb in dt.rpo:
            for inst in list(bb.instructions):
                if not isinstance(inst, LoadInst) or inst.is_volatile:
                    continue
                if inst in erased:
                    continue
                if inst not in mssa.access_of:
                    continue
                mark = ctx.trace.mark() if ctx.trace is not None else None
                clobber = mssa.clobbering_access(inst)
                loc = MemoryLocation.get(inst)

                # 1) store-to-load forwarding
                if isinstance(clobber, MemoryDef) and isinstance(
                        clobber.inst, StoreInst):
                    store = clobber.inst
                    if store.value.type == inst.type and dt.dominates(
                            store, inst):
                        r = aa.alias(MemoryLocation.get(store), loc)
                        if r is AliasResult.MUST:
                            inst.replace_all_uses_with(store.value)
                            inst.erase_from_parent()
                            erased.add(inst)
                            ctx.stats.add(self.display_name, "# loads deleted")
                            if ctx.trace is not None:
                                ctx.trace.remark(
                                    self.display_name, fn.name,
                                    f"forwarded store to load "
                                    f"{inst.short()}", since=mark)
                            changed = True
                            continue

                # 2) redundant load elimination (same clobber, same address)
                key_candidates = [
                    k for k in seen_loads
                    if k[0] == clobber.id
                ]
                replaced = False
                for k in key_candidates:
                    prior = seen_loads[k]
                    if prior in erased or prior.type != inst.type:
                        continue
                    if prior.parent is None:
                        continue
                    if not dt.dominates(prior, inst):
                        continue
                    if prior.pointer is inst.pointer or aa.alias(
                            MemoryLocation.get(prior), loc) is AliasResult.MUST:
                        inst.replace_all_uses_with(prior)
                        inst.erase_from_parent()
                        erased.add(inst)
                        ctx.stats.add(self.display_name, "# loads deleted")
                        if ctx.trace is not None:
                            ctx.trace.remark(
                                self.display_name, fn.name,
                                f"eliminated redundant load "
                                f"{inst.short()}", since=mark)
                        changed = True
                        replaced = True
                        break
                if not replaced:
                    seen_loads[(clobber.id, inst.pointer.id)] = inst
        return changed

    # -- expression numbering ----------------------------------------------
    def _number_expressions(self, fn: Function, ctx: CompilationContext) -> bool:
        dt = ctx.analyses(fn).dt
        table: Dict[Tuple, object] = {}
        changed = False
        for bb in dt.rpo:
            for inst in list(bb.instructions):
                key = _expr_key(inst)
                if key is None:
                    continue
                prev = table.get(key)
                if prev is not None and prev.parent is not None \
                        and dt.dominates(prev, inst):
                    inst.replace_all_uses_with(prev)
                    inst.erase_from_parent()
                    ctx.stats.add(self.display_name, "# instructions GVN'd")
                    changed = True
                else:
                    table[key] = inst
        return changed
