"""Function inlining.

Small callees are cloned into their callers, the way LLVM's always/
early inliner runs before the scalar optimizations.  Two AA-relevant
consequences, both exercised by the test suite:

* inlining is what turns ``restrict``/``noalias`` *arguments* into
  scoped-alias metadata on the inlined accesses (clang does the same):
  the callee's noalias guarantees keep disambiguating after its
  argument SSA values are substituted away;
* inlined bodies expose callers' identified objects to BasicAA, so
  queries that were residual (arg vs. arg) become resolvable
  (alloca vs. alloca) — shrinking ORAQL's search space.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    Instruction,
    PhiInst,
    ReturnInst,
)
from ..ir.metadata import AliasScope, ScopedAliasMD
from ..ir.values import Argument, Value
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass

#: callee instruction budget; LLVM's threshold analog
INLINE_THRESHOLD = 40


def _inlinable(callee: Function, caller: Function) -> bool:
    if callee.is_declaration or callee is caller:
        return False
    if "noinline" in callee.attrs or "kernel" in callee.attrs:
        return False
    if callee.target != caller.target:
        return False
    if callee.num_instructions() > INLINE_THRESHOLD:
        return False
    # no recursion (direct or via the site we are inlining)
    for inst in callee.instructions():
        if isinstance(inst, CallInst) and inst.callee is callee:
            return False
    return True


class Inliner(Pass):
    name = "inline"
    display_name = "Function Integration/Inlining"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        changed = False
        budget = 16  # sites per function per run
        again = True
        while again and budget > 0:
            again = False
            for bb in list(fn.blocks):
                site = next(
                    (i for i in bb.instructions
                     if isinstance(i, CallInst)
                     and isinstance(i.callee, Function)
                     and _inlinable(i.callee, fn)), None)
                if site is not None:
                    self._inline_site(fn, bb, site, ctx)
                    ctx.stats.add(self.display_name, "# functions inlined")
                    budget -= 1
                    changed = again = True
                    break
        if changed:
            # cloned instructions add users to globals: the inter-
            # procedural (module-grained) AA caches must not survive
            # even under fine invalidation
            ctx.am.invalidate_interprocedural()
        return PreservedAnalyses.from_changed(changed)

    # -- the transplant ----------------------------------------------------
    def _inline_site(self, caller: Function, bb: BasicBlock,
                     site: CallInst, ctx: CompilationContext) -> None:
        callee: Function = site.callee

        # split the call block: bb = [... call ...] -> head + cont
        idx = bb.instructions.index(site)
        cont = caller.add_block(caller.unique_name(f"{callee.name}.exit"),
                                after=bb)
        tail = bb.instructions[idx + 1:]
        del bb.instructions[idx + 1:]
        for inst in tail:
            inst.parent = cont
            cont.instructions.append(inst)
        # successors' phis now flow from cont
        for succ in cont.successors:
            for phi in succ.phis():
                for i, blk in enumerate(phi.incoming_blocks):
                    if blk is bb:
                        phi.incoming_blocks[i] = cont

        # noalias arguments become fresh alias scopes (clang's inlining
        # behaviour): accesses derived from them get the scope, all other
        # inlined accesses get it in their noalias list
        scopes: Dict[Argument, AliasScope] = {
            a: AliasScope(f"{callee.name}.{a.name}", caller.name)
            for a in callee.args if a.is_noalias
        }

        # clone blocks and instructions
        vmap: Dict[Value, Value] = {}
        for arg, actual in zip(callee.args, site.operands):
            vmap[arg] = actual
        block_map: Dict[BasicBlock, BasicBlock] = {}
        for cb in callee.blocks:
            nb = caller.add_block(
                caller.unique_name(f"{callee.name}.{cb.name}"), after=bb)
            block_map[cb] = nb
        # keep original callee block order after bb
        ordered = [block_map[cb] for cb in callee.blocks]
        for nb in ordered:
            caller.blocks.remove(nb)
        pos = caller.blocks.index(bb) + 1
        caller.blocks[pos:pos] = ordered

        returns: List[tuple] = []  # (new block, return value or None)
        for cb in callee.blocks:
            nb = block_map[cb]
            for inst in cb.instructions:
                if isinstance(inst, ReturnInst):
                    returns.append(
                        (nb, vmap.get(inst.value, inst.value)
                         if inst.value is not None else None))
                    continue
                clone = inst.clone()
                # remap operands
                for i, op in enumerate(list(clone.operands)):
                    if op in vmap:
                        clone.set_operand(i, vmap[op])
                if isinstance(clone, BranchInst):
                    clone.targets = [block_map[t] for t in inst.targets]
                if isinstance(clone, PhiInst):
                    clone.incoming_blocks = [
                        block_map[b] for b in inst.incoming_blocks]
                self._apply_scopes(clone, scopes, vmap)
                nb.append(clone)
                vmap[inst] = clone

        # second pass: phi/operand references to callee values defined
        # later than their use order (back edges)
        for cb in callee.blocks:
            for inst in cb.instructions:
                clone = vmap.get(inst)
                if clone is None:
                    continue
                for i, op in enumerate(list(clone.operands)):
                    if op in vmap and vmap[op] is not clone.operands[i]:
                        clone.set_operand(i, vmap[op])

        # connect: bb -> entry clone; every return -> cont
        from ..ir.builder import IRBuilder
        b = IRBuilder(bb)
        b.br(block_map[callee.entry])
        if site.type.is_void or not returns:
            for nb, _ in returns:
                IRBuilder(nb).br(cont)
        elif len(returns) == 1:
            nb, rv = returns[0]
            IRBuilder(nb).br(cont)
            site.replace_all_uses_with(rv)
        else:
            phi = PhiInst(site.type, caller.unique_name("inl.ret"))
            phi.parent = cont
            cont.instructions.insert(0, phi)
            for nb, rv in returns:
                IRBuilder(nb).br(cont)
                phi.add_incoming(rv, nb)
            site.replace_all_uses_with(phi)
        site.erase_from_parent()

        # allocas of the inlined body migrate to the caller's entry
        for cb in callee.blocks:
            for inst in cb.instructions:
                clone = vmap.get(inst)
                if isinstance(clone, AllocaInst) and clone.parent is not None:
                    blk = clone.parent
                    blk.instructions.remove(clone)
                    clone.parent = None
                    caller.entry.insert_at_front(clone)

    @staticmethod
    def _apply_scopes(clone: Instruction,
                      scopes: Dict[Argument, AliasScope],
                      vmap: Dict[Value, Value]) -> None:
        """Attach the callee's noalias-argument scopes to the clone."""
        if not scopes or not (clone.may_read_memory()
                              or clone.may_write_memory()):
            return
        from ..analysis.aliasing import underlying_object

        ptr = getattr(clone, "pointer", None)
        based_on = None
        if ptr is not None:
            base = underlying_object(ptr)
            for arg in scopes:
                if base is arg or vmap.get(arg) is base:
                    based_on = arg
                    break
        own = (scopes[based_on],) if based_on is not None else ()
        others = tuple(s for a, s in scopes.items() if a is not based_on)
        md = ScopedAliasMD(own, others)
        clone.scoped = md if clone.scoped is None \
            else clone.scoped.merged_with(md)
