"""LICM: loop-invariant code motion and scalar promotion.

Load hoisting asks, for every candidate load, whether *any* store or
call in the loop may clobber it — a burst of alias queries per loop.
Scalar promotion (the "sunk" half of LLVM's "# loads hoisted or sunk")
rewrites an invariant location to a register across the whole loop; a
wrong optimistic no-alias here changes program output, which is one of
the main failure channels ORAQL's probing has to fence in.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..analysis.aliasing import AliasResult, ModRefInfo
from ..analysis.loops import Loop, LoopInfo
from ..analysis.memloc import MemoryLocation
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    MemCpyInst,
    MemSetInst,
    PhiInst,
    SelectInst,
    ShuffleSplatInst,
    StoreInst,
)
from ..ir.values import Value
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass

_SPECULATABLE_BINOPS = {"add", "sub", "mul", "and", "or", "xor", "shl",
                        "ashr", "lshr", "fadd", "fsub", "fmul", "fdiv"}


def _is_invariant(v: Value, loop: Loop, hoisted: Set[Value]) -> bool:
    if not isinstance(v, Instruction):
        return True  # constants, arguments, globals
    if v in hoisted:
        return True
    return v.parent not in loop.blocks


class LICM(Pass):
    name = "licm"
    display_name = "Loop Invariant Code Motion"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        li = ctx.analyses(fn).li
        changed = False
        # innermost first so invariants bubble outwards
        for loop in sorted(li.loops, key=lambda l: -l.depth):
            changed |= self._run_on_loop(fn, loop, ctx)
        # scalar promotion edits phis across loop boundaries; play it
        # safe and abandon everything when anything moved
        return PreservedAnalyses.from_changed(changed)

    # -- per-loop --------------------------------------------------------
    def _run_on_loop(self, fn: Function, loop: Loop,
                     ctx: CompilationContext) -> bool:
        preheader = loop.preheader()
        if preheader is None:
            return False
        dt = ctx.analyses(fn).dt
        aa = ctx.aa
        writers = [i for bb in loop.body_in_layout_order() for i in bb
                   if i.may_write_memory()]
        has_opaque_call = any(
            isinstance(i, CallInst) and i.may_write_memory() for i in writers)
        exits = loop.exit_blocks()
        changed = False
        hoisted: Set[Value] = set()

        def dominates_exits(bb: BasicBlock) -> bool:
            return all(dt.dominates_block(bb, e) for e in exits)

        insert_before = preheader.terminator
        again = True
        while again:
            again = False
            for bb in loop.body_in_layout_order():
                for inst in list(bb.instructions):
                    if inst in hoisted:
                        continue
                    if not all(_is_invariant(op, loop, hoisted)
                               for op in inst.operands):
                        continue
                    mark = (ctx.trace.mark() if ctx.trace is not None
                            else None)
                    if self._can_hoist(inst, bb, loop, writers,
                                       has_opaque_call, dominates_exits, aa):
                        bb.instructions.remove(inst)
                        inst.parent = None
                        preheader.insert_before(inst, insert_before)
                        hoisted.add(inst)
                        if isinstance(inst, LoadInst):
                            ctx.stats.add(self.display_name,
                                          "# loads hoisted or sunk")
                            if ctx.trace is not None:
                                ctx.trace.remark(
                                    self.display_name, fn.name,
                                    f"hoisted load {inst.short()} to "
                                    f"preheader", since=mark)
                        else:
                            ctx.stats.add(self.display_name,
                                          "# instructions hoisted")
                        changed = again = True

        changed |= self._promote_scalars(fn, loop, preheader, ctx)
        return changed

    def _can_hoist(self, inst: Instruction, bb: BasicBlock, loop: Loop,
                   writers: List[Instruction], has_opaque_call: bool,
                   dominates_exits, aa) -> bool:
        if isinstance(inst, (PhiInst, StoreInst, MemCpyInst, MemSetInst)):
            return False
        if inst.is_terminator or inst.has_side_effects():
            return False
        if isinstance(inst, LoadInst):
            if inst.is_volatile:
                return False
            # guaranteed to execute each iteration (dominates the latch),
            # or provably dereferenceable; header-check loops may run zero
            # iterations, so we additionally require the pointer to be
            # based on an identified allocation or an argument (assumed
            # dereferenceable, as LLVM does with dereferenceable attrs)
            if not (dominates_exits(bb) or self._deref_base(inst.pointer)):
                return False
            if has_opaque_call:
                return False
            loc = MemoryLocation.get(inst)
            for w in writers:
                if aa.get_mod_ref(w, loc) & ModRefInfo.MOD:
                    return False
            return True
        if isinstance(inst, CallInst):
            return inst.is_pure()
        if isinstance(inst, BinaryInst):
            if inst.op in _SPECULATABLE_BINOPS:
                return True
            return dominates_exits(bb)  # div/rem must not be speculated
        if isinstance(inst, (GEPInst, CastInst, ICmpInst, FCmpInst,
                             SelectInst, ShuffleSplatInst)):
            return True
        return False

    @staticmethod
    def _deref_base(pointer) -> bool:
        """Is the pointer based on something assumed dereferenceable
        (an identified allocation or a pointer argument)?"""
        from ..analysis.aliasing import underlying_object
        from ..analysis.basic_aa import is_identified_object
        from ..ir.values import Argument

        base = underlying_object(pointer)
        return is_identified_object(base) or isinstance(base, Argument)

    # -- scalar promotion --------------------------------------------------
    def _promote_scalars(self, fn: Function, loop: Loop,
                         preheader: BasicBlock,
                         ctx: CompilationContext) -> bool:
        """Promote an invariant memory location accessed by loads and
        stores in the loop to a register (load pre, phi carry, store post).

        Restricted to the safe shape: single latch; every access to the
        location sits in a block dominating the latch; every exit leaves
        from the header; no other may-aliasing access in the loop.
        """
        aa = ctx.aa
        dt = ctx.analyses(fn).dt
        latches = loop.latches()
        if len(latches) != 1:
            return False
        latch = latches[0]
        header = loop.header
        exits = loop.exit_blocks()
        # all exit edges must leave from the header, into dedicated exit
        # blocks (no out-of-loop predecessors), so the stores we insert at
        # the exits run exactly when the loop is left
        for bb in loop.exiting_blocks():
            if bb is not header:
                return False
        for e in exits:
            if any(p not in loop.blocks for p in e.predecessors):
                return False
        if any(isinstance(i, CallInst) and not i.is_pure()
               for bb in loop.blocks for i in bb):
            return False

        # candidate pointers: stored-to, loop-invariant address
        accesses: List[Tuple[Instruction, MemoryLocation]] = []
        for bb in loop.body_in_layout_order():
            for i in bb:
                if isinstance(i, LoadInst) and not i.is_volatile:
                    accesses.append((i, MemoryLocation.get(i)))
                elif isinstance(i, StoreInst) and not i.is_volatile:
                    accesses.append((i, MemoryLocation.get(i)))
                elif i.may_write_memory() or i.may_read_memory():
                    accesses.append((i, None))  # opaque access blocks all

        changed = False
        store_ptrs = []
        seen_ptr_ids = set()
        for i, loc in accesses:
            if isinstance(i, StoreInst) and loc is not None \
                    and _is_invariant(i.pointer, loop, set()) \
                    and i.pointer.id not in seen_ptr_ids:
                seen_ptr_ids.add(i.pointer.id)
                store_ptrs.append((i.pointer, loc))

        for ptr, ploc in store_ptrs:
            mark = ctx.trace.mark() if ctx.trace is not None else None
            group: List[Instruction] = []
            ok = True
            for i, loc in accesses:
                if loc is None:
                    ok = False
                    break
                r = aa.alias(loc, ploc)
                if i.pointer is ptr if isinstance(
                        i, (LoadInst, StoreInst)) else False:
                    same = True
                else:
                    same = r is AliasResult.MUST and (
                        loc.size == ploc.size)
                if same:
                    if not dt.dominates_block(i.parent, latch):
                        ok = False
                        break
                    group.append(i)
                elif r is not AliasResult.NO:
                    ok = False
                    break
            if not ok or not any(isinstance(g, StoreInst) for g in group):
                continue
            if any(g.type != group[0].type if isinstance(g, LoadInst)
                   else g.value.type != (
                       group[0].type if isinstance(group[0], LoadInst)
                       else group[0].value.type) for g in group):
                continue
            self._do_promote(fn, loop, preheader, header, latch, ptr,
                             group, ctx)
            ctx.stats.add(self.display_name, "# loads hoisted or sunk",
                          sum(1 for g in group))
            ctx.stats.add(self.display_name, "# scalars promoted")
            if ctx.trace is not None:
                ctx.trace.remark(
                    self.display_name, fn.name,
                    f"promoted {ptr.short()} to a register across the "
                    f"loop", since=mark)
            changed = True
            break  # analyses changed; promote one location per visit
        return changed

    def _do_promote(self, fn: Function, loop: Loop, preheader: BasicBlock,
                    header: BasicBlock, latch: BasicBlock, ptr: Value,
                    group: List[Instruction], ctx) -> None:
        vty = None
        for g in group:
            vty = g.type if isinstance(g, LoadInst) else g.value.type
            break
        # initial value in the preheader
        init = LoadInst(ptr, fn.unique_name("promoted"))
        preheader.insert_before(init, preheader.terminator)
        # carried value
        phi = PhiInst(vty, fn.unique_name("promo.phi"))
        phi.parent = header
        header.instructions.insert(0, phi)
        phi.add_incoming(init, preheader)

        # rewrite accesses in dominance order within the iteration
        order = sorted(group, key=lambda g: (
            ctx.analyses(fn).dt.depth(g.parent),
            g.parent.instructions.index(g)))
        current: Value = phi
        for g in order:
            if isinstance(g, LoadInst):
                g.replace_all_uses_with(current)
                g.erase_from_parent()
            else:
                current = g.value
                g.erase_from_parent()
        phi.add_incoming(current, latch)

        # store the final value at every exit; exits leave from the header,
        # so the carried value at the exit edge is the phi itself.
        for e in loop.exit_blocks():
            st = StoreInst(phi, ptr)
            # insert after the phis of the exit block
            idx = len(e.phis())
            st.parent = e
            e.instructions.insert(idx, st)
