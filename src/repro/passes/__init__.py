"""repro.passes — transformation passes, pass manager, statistics."""

from .analysis_manager import (
    AnalysisManager,
    AnalysisVerificationError,
    DominatorTreeAnalysis,
    LoopAnalysis,
    MemorySSAAnalysis,
    PreservedAnalyses,
)
from .dse import DSE
from .early_cse import EarlyCSE
from .gvn import GVN
from .licm import LICM
from .loop_deletion import LoopDeletion
from .loop_load_elim import LoopLoadElim
from .loop_vectorize import LoopVectorize, VF
from .machine_sink import MachineSink
from .mem2reg import Mem2Reg, dominance_frontiers
from .memcpy_opt import MemCpyOpt
from .pass_manager import (
    CompilationContext,
    FunctionAnalyses,
    ModulePass,
    Pass,
    PassManager,
)
from .pipelines import PASS_NAMES, build_pipeline, parse_pipeline
from .simplify import DeadCodeElim, InstCombine, SimplifyCFG
from .slp_vectorize import SLPVectorize
from .statistics import Statistics

__all__ = [name for name in dir() if not name.startswith("_")]
