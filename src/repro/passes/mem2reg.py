"""mem2reg: promote scalar allocas to SSA registers.

Standard SSA construction: phi insertion at iterated dominance frontiers
of the stores, then renaming along the dominator tree.  Promoting the
frontend's scalar temporaries first is what leaves the remaining loads
and stores about *real* memory (arrays, struct fields, pointer
indirections) — the queries that matter for alias analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import AllocaInst, Instruction, LoadInst, PhiInst, StoreInst
from ..ir.values import UndefValue, Value
from ..analysis.dominators import DominatorTree
from .analysis_manager import PreservedAnalyses
from .pass_manager import CompilationContext, Pass


def _promotable(alloca: AllocaInst) -> bool:
    if alloca.count != 1 or alloca.allocated_type.is_aggregate:
        return False
    for user in alloca.users:
        if isinstance(user, LoadInst):
            continue
        if isinstance(user, StoreInst) and user.pointer is alloca \
                and user.value is not alloca:
            continue
        return False
    return True


def dominance_frontiers(fn: Function, dt: DominatorTree
                        ) -> Dict[BasicBlock, Set[BasicBlock]]:
    df: Dict[BasicBlock, Set[BasicBlock]] = {bb: set() for bb in fn.blocks}
    preds: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in fn.blocks}
    for bb in fn.blocks:
        for s in bb.successors:
            preds[s].append(bb)
    for bb in fn.blocks:
        if len(preds[bb]) < 2 or not dt.is_reachable(bb):
            continue
        for p in preds[bb]:
            if not dt.is_reachable(p):
                continue
            runner = p
            while runner is not dt.idom.get(bb) and runner is not None:
                df[runner].add(bb)
                runner = dt.idom.get(runner)
    return df


class Mem2Reg(Pass):
    name = "mem2reg"
    display_name = "Promote Memory to Register"

    def run_on_function(self, fn: Function,
                        ctx: CompilationContext) -> PreservedAnalyses:
        allocas = [i for i in fn.entry.instructions
                   if isinstance(i, AllocaInst) and _promotable(i)]
        if not allocas:
            return PreservedAnalyses.all()
        dt = ctx.analyses(fn).dt
        df = dominance_frontiers(fn, dt)

        block_order = {bb: i for i, bb in enumerate(fn.blocks)}

        phi_for: Dict[PhiInst, AllocaInst] = {}
        for alloca in allocas:
            # blocks containing a store to this alloca (deterministic
            # order: users iterate in insertion order)
            def_blocks = list(dict.fromkeys(
                u.parent for u in alloca.users
                if isinstance(u, StoreInst) and u.parent is not None))
            # iterated dominance frontier
            work = list(def_blocks)
            def_block_set = set(def_blocks)
            placed: Set[BasicBlock] = set()
            while work:
                bb = work.pop()
                for y in sorted(df.get(bb, ()),
                                key=lambda blk: block_order[blk]):
                    if y in placed:
                        continue
                    placed.add(y)
                    phi = PhiInst(alloca.allocated_type,
                                  fn.unique_name(alloca.name or "m2r"))
                    phi.parent = y
                    y.instructions.insert(0, phi)
                    phi_for[phi] = alloca
                    if y not in def_block_set:
                        work.append(y)

        undef = {a: UndefValue(a.allocated_type) for a in allocas}
        incoming: Dict[AllocaInst, Value] = dict(undef)
        to_erase: List[Instruction] = []

        # rename along the dominator tree (iterative DFS with state restore)
        children: Dict[BasicBlock, List[BasicBlock]] = {}
        for bb in fn.blocks:
            if dt.is_reachable(bb):
                children.setdefault(dt.idom.get(bb), []).append(bb)

        stack: List[tuple] = [(fn.entry, dict(incoming))]
        while stack:
            bb, values = stack.pop()
            values = dict(values)
            for inst in list(bb.instructions):
                if isinstance(inst, PhiInst) and inst in phi_for:
                    values[phi_for[inst]] = inst
                elif isinstance(inst, LoadInst) and inst.pointer in values \
                        and isinstance(inst.pointer, AllocaInst):
                    inst.replace_all_uses_with(values[inst.pointer])
                    to_erase.append(inst)
                elif isinstance(inst, StoreInst) \
                        and isinstance(inst.pointer, AllocaInst) \
                        and inst.pointer in values:
                    values[inst.pointer] = inst.value
                    to_erase.append(inst)
            for succ in bb.successors:
                for phi in succ.phis():
                    a = phi_for.get(phi)
                    if a is not None and phi.incoming_for_block(bb) is None:
                        phi.add_incoming(values[a], bb)
            for child in children.get(bb, []):
                stack.append((child, values))

        for inst in to_erase:
            inst.erase_from_parent()
        for alloca in allocas:
            alloca.erase_from_parent()

        # prune dead or half-filled phis in unreachable-pred situations
        self._fixup_phis(fn, phi_for, undef)
        ctx.stats.add(self.display_name, "# allocas promoted", len(allocas))
        return PreservedAnalyses.none()

    @staticmethod
    def _fixup_phis(fn: Function, phi_for: Dict, undef: Dict) -> None:
        preds: Dict[BasicBlock, List[BasicBlock]] = {bb: [] for bb in fn.blocks}
        for bb in fn.blocks:
            for s in bb.successors:
                preds[s].append(bb)
        for bb in fn.blocks:
            for phi in bb.phis():
                a = phi_for.get(phi)
                if a is None:
                    continue
                have = set(id(b) for b in phi.incoming_blocks)
                for p in preds[bb]:
                    if id(p) not in have:
                        phi.add_incoming(undef[a], p)
